"""Network monitoring: correlating flows, alerts, and DNS activity.

A security-operations query joining three streams on shared keys:

    FLOWS(host, domain)  ⋈host  ALERTS(host)   — alerts on flow sources
    FLOWS(host, domain)  ⋈domain DNS(domain)   — fresh lookups of the
                                                  contacted domain

Each match ("an alerted host talking to a recently resolved domain") is
a correlation event a SOC would page on. DNS chatter is heavy relative to
alerts, and an incident makes the alert stream burst — the same shape as
the paper's Figure 12 — so the best cache placement changes mid-run and
A-Caching follows it.

Run:  python examples/network_monitoring.py
"""

import random

from repro import (
    ACaching,
    ACachingConfig,
    JoinGraph,
    ProfilerConfig,
    ReoptimizerConfig,
    Schema,
    Sign,
    Workload,
)
from repro.ordering.agreedy import OrderingConfig
from repro.streams.generators import StreamSpec, UniformValues


def build_workload(burst_after: int) -> Workload:
    graph = JoinGraph.parse(
        [
            Schema("ALERTS", ("host",)),
            Schema("FLOWS", ("host", "domain")),
            Schema("DNS", ("domain",)),
        ],
        ["ALERTS.host = FLOWS.host", "FLOWS.domain = DNS.domain"],
    )
    hosts, domains = 64, 64
    specs = {
        "ALERTS": StreamSpec(
            "ALERTS", ("host",), {"host": UniformValues(hosts, seed=1)}
        ),
        "FLOWS": StreamSpec(
            "FLOWS",
            ("host", "domain"),
            {
                "host": UniformValues(hosts, seed=2),
                "domain": UniformValues(domains, seed=3),
            },
        ),
        "DNS": StreamSpec(
            "DNS", ("domain",), {"domain": UniformValues(domains, seed=4)}
        ),
    }

    def rates(emitted):
        # The incident: alert volume jumps 20x.
        return {"ALERTS": 20.0} if emitted >= burst_after else {"ALERTS": 1.0}

    return Workload(
        name="network-monitoring",
        graph=graph,
        specs=specs,
        windows={"ALERTS": 96, "FLOWS": 96, "DNS": 480},
        rates={"ALERTS": 1.0, "FLOWS": 1.0, "DNS": 5.0},
        rate_function=rates,
    )


def main() -> None:
    total, burst_after = 40_000, 20_000
    workload = build_workload(burst_after)
    engine = ACaching.for_workload(
        workload,
        ACachingConfig(
            profiler=ProfilerConfig(window=5, bloom_window_tuples=256),
            reoptimizer=ReoptimizerConfig(
                reopt_interval_updates=3000, profiling_phase_updates=500,
                global_quota=6,
            ),
            ordering=OrderingConfig(interval_updates=1500),
        ),
    )

    correlations = 0
    samples = []
    last_updates, last_time = 0, 0.0
    for update in workload.updates(total):
        for delta in engine.process(update):
            if delta.sign is Sign.INSERT:
                correlations += 1
        processed = engine.ctx.metrics.updates_processed
        if processed - last_updates >= 8000:
            now = engine.ctx.clock.now_seconds
            samples.append(
                (
                    processed,
                    (processed - last_updates) / max(1e-9, now - last_time),
                    tuple(engine.used_caches()),
                )
            )
            last_updates, last_time = processed, now

    print("SOC correlation query: ALERTS ⋈ FLOWS ⋈ DNS")
    print(f"  correlation events      : {correlations:,}")
    print(f"  overall throughput      : {engine.throughput():,.0f} updates/sec")
    print(f"  plan re-optimizations   : {engine.ctx.metrics.reoptimizations}")
    print("\n  throughput over time (the alert burst hits mid-run):")
    for processed, rate, caches in samples:
        marker = "  <-- incident" if processed > burst_after * 1.5 else ""
        print(
            f"    after {processed:>7,} updates: {rate:>9,.0f}/sec, "
            f"caches={list(caches)}{marker}"
        )


if __name__ == "__main__":
    main()
