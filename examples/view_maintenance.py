"""Materialized view maintenance under a memory budget.

The paper's stream-join class also captures conventional maintenance of
materialized join views (Section 1): the update streams are the table
DML feeds rather than window churn. This example maintains the view

    ORDERS ⋈ CUSTOMERS ⋈ REGIONS       (orders.cust = customers.cust,
                                        customers.region = regions.region)

from hand-built insert/delete streams — no window operator involved —
while A-Caching places caches under a configurable memory budget
(Section 5) and the view contents are verified against a brute-force
recomputation.

Run:  python examples/view_maintenance.py
"""

import random

from repro import (
    ACaching,
    ACachingConfig,
    JoinGraph,
    ProfilerConfig,
    ReoptimizerConfig,
    RowFactory,
    Schema,
    Sign,
    Update,
)
from repro.ordering.agreedy import OrderingConfig


def dml_stream(rows: RowFactory, total: int, seed: int = 3):
    """A mixed insert/delete DML feed with bounded table sizes."""
    rng = random.Random(seed)
    live = {"ORDERS": [], "CUSTOMERS": [], "REGIONS": []}
    caps = {"ORDERS": 1500, "CUSTOMERS": 400, "REGIONS": 40}
    make = {
        "ORDERS": lambda: rows.make((rng.randrange(800), rng.randrange(50))),
        "CUSTOMERS": lambda: rows.make(
            (rng.randrange(800), rng.randrange(40))
        ),
        "REGIONS": lambda: rows.make((rng.randrange(40),)),
    }
    weights = [("ORDERS", 8), ("CUSTOMERS", 2), ("REGIONS", 1)]
    tables = [name for name, w in weights for _ in range(w)]
    seq = 0
    for _ in range(total):
        table = rng.choice(tables)
        # Deletes keep each table near its cap (steady-state churn).
        delete_probability = 0.5 if len(live[table]) >= caps[table] else 0.2
        if live[table] and rng.random() < delete_probability:
            row = live[table].pop(rng.randrange(len(live[table])))
            yield Update(table, row, Sign.DELETE, seq)
        else:
            row = make[table]()
            live[table].append(row)
            yield Update(table, row, Sign.INSERT, seq)
        seq += 1


def main() -> None:
    graph = JoinGraph.parse(
        [
            Schema("ORDERS", ("cust", "amount")),
            Schema("CUSTOMERS", ("cust", "region")),
            Schema("REGIONS", ("region",)),
        ],
        ["ORDERS.cust = CUSTOMERS.cust", "CUSTOMERS.region = REGIONS.region"],
    )
    budget_kb = 256
    engine = ACaching(
        graph,
        config=ACachingConfig(
            profiler=ProfilerConfig(window=5, bloom_window_tuples=192),
            reoptimizer=ReoptimizerConfig(
                reopt_interval_updates=4000,
                profiling_phase_updates=400,
                global_quota=6,
                memory_budget_bytes=budget_kb * 1024,
            ),
            ordering=OrderingConfig(interval_updates=2000),
        ),
    )

    rows = RowFactory()
    view_size = 0
    for update in dml_stream(rows, total=30_000):
        for delta in engine.process(update):
            view_size += int(delta.sign)

    # Verify the incrementally maintained view against brute force.
    orders = engine.executor.relations["ORDERS"]
    customers = engine.executor.relations["CUSTOMERS"]
    regions = engine.executor.relations["REGIONS"]
    expected = 0
    for customer in customers.rows():
        expected += orders.match_count(
            "cust", customer.values[0]
        ) * regions.match_count("region", customer.values[1])

    print("Materialized view: ORDERS ⋈ CUSTOMERS ⋈ REGIONS")
    print(f"  DML updates applied   : {engine.ctx.metrics.updates_processed:,}")
    print(f"  view rows (deltas)    : {view_size:,}")
    print(f"  view rows (recompute) : {expected:,}")
    print(f"  maintenance rate      : {engine.throughput():,.0f} updates/sec")
    print(f"  memory budget         : {budget_kb} KB")
    print(f"  cache memory in use   : {engine.memory_in_use() / 1024:.1f} KB")
    print(f"  caches in use         : {engine.used_caches()}")
    assert view_size == expected, "incremental view diverged from recompute!"
    print("  incremental maintenance verified against brute force ✓")


if __name__ == "__main__":
    main()
