"""Auction analytics: choosing a plan across the MJoin-XJoin spectrum.

An online-auction feed joins four streams on the auction id:

    BIDS ⋈ AUCTIONS ⋈ SELLERS ⋈ WATCHERS      (all on attribute `auction`)

Bids dominate the traffic, so the ideal plan caches the subresult the bid
pipeline probes. This example measures the paper's four plan classes —
best MJoin (M), best XJoin (X), prefix-invariant caching (P), and
globally-consistent caching (G) — on the same workload, the Figure 11
methodology applied to a concrete scenario.

Run:  python examples/auction_analytics.py
"""

from repro import (
    JoinGraph,
    Schema,
    Workload,
    best_xjoin,
    run_acaching,
    run_mjoin,
)
from repro.streams.generators import StreamSpec, UniformValues


def build_workload() -> Workload:
    names = ("BIDS", "AUCTIONS", "SELLERS", "WATCHERS")
    graph = JoinGraph.parse(
        [Schema(name, ("auction",)) for name in names],
        [
            "BIDS.auction = AUCTIONS.auction",
            "AUCTIONS.auction = SELLERS.auction",
            "SELLERS.auction = WATCHERS.auction",
        ],
    )
    live_auctions = 300
    rates = {"BIDS": 8.0, "AUCTIONS": 1.0, "SELLERS": 1.0, "WATCHERS": 2.0}
    specs = {
        name: StreamSpec(
            name,
            ("auction",),
            {"auction": UniformValues(live_auctions, seed=i)},
        )
        for i, name in enumerate(names)
    }
    windows = {
        name: max(60, int(240 * rate)) for name, rate in rates.items()
    }
    return Workload(
        name="auction-analytics",
        graph=graph,
        specs=specs,
        windows=windows,
        rates=rates,
    )


def main() -> None:
    arrivals = 20_000
    print("Auction analytics: BIDS ⋈ AUCTIONS ⋈ SELLERS ⋈ WATCHERS")
    print(f"  measuring four plan classes over {arrivals:,} arrivals ...\n")

    m = run_mjoin(build_workload, arrivals)
    x = best_xjoin(build_workload, arrivals)
    p = run_acaching(
        build_workload, arrivals, global_quota=0, stat_window=5,
        reopt_interval_updates=4000,
    )
    g = run_acaching(
        build_workload, arrivals, global_quota=6, stat_window=5,
        reopt_interval_updates=4000,
    )

    print(f"  {'plan':<28} {'tuples/sec':>12}   notes")
    print(f"  {'-' * 70}")
    print(f"  {'M  best MJoin (A-Greedy)':<28} {m.throughput:>12,.0f}   "
          f"orders={m.detail['orders']['BIDS']}")
    print(f"  {'X  best XJoin':<28} {x.throughput:>12,.0f}   "
          f"tree={x.detail['tree']}, "
          f"subresults={x.memory_peak_bytes / 1024:.1f} KB")
    print(f"  {'P  prefix-invariant caches':<28} {p.throughput:>12,.0f}   "
          f"uses {p.detail['used_caches']}")
    print(f"  {'G  + globally-consistent':<28} {g.throughput:>12,.0f}   "
          f"uses {g.detail['used_caches']}")

    best_cached = max(p.throughput, g.throughput)
    print(
        f"\n  caching vs MJoin : {best_cached / m.throughput:.2f}x"
        f"\n  caching vs XJoin : {best_cached / x.throughput:.2f}x"
        "   (plus zero up-front subresult memory: caches fill lazily)"
    )


if __name__ == "__main__":
    main()
