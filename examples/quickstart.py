"""Quickstart: adaptive caching for a three-way stream join.

Registers the continuous query  R(A) ⋈ S(A,B) ⋈ T(B)  over three sliding
windows, feeds it a synthetic update stream, and lets A-Caching discover
the profitable join-subresult cache on its own.

Run:  python examples/quickstart.py
"""

from repro import (
    ACaching,
    ACachingConfig,
    MJoinExecutor,
    ProfilerConfig,
    ReoptimizerConfig,
    Sign,
    three_way_chain,
)


def main() -> None:
    # A ready-made workload: the paper's default Section 7.2 setup.
    # T.B values repeat 5 times (multiplicity 5), so ∆T probes repeat —
    # caching R ⋈ S for ∆T's pipeline should pay off.
    workload = three_way_chain(t_multiplicity=5.0, window_r=96, window_s=96)

    # --- adaptive engine ------------------------------------------------
    # The library default re-optimization interval is the paper's I = 2
    # (virtual) seconds — roughly 100k updates at these rates. This demo
    # is shorter, so re-optimize every 5000 updates instead.
    config = ACachingConfig(
        profiler=ProfilerConfig(window=5, bloom_window_tuples=128),
        reoptimizer=ReoptimizerConfig(
            reopt_interval_updates=5000, profiling_phase_updates=400
        ),
    )
    engine = ACaching.for_workload(workload, config)
    inserted = deleted = 0
    for update in workload.updates(30_000):
        for delta in engine.process(update):
            if delta.sign is Sign.INSERT:
                inserted += 1
            else:
                deleted += 1

    print("Adaptive A-Caching run")
    print(f"  updates processed : {engine.ctx.metrics.updates_processed:,}")
    print(f"  result deltas     : +{inserted:,} / -{deleted:,}")
    print(f"  throughput        : {engine.throughput():,.0f} tuples/sec")
    print(f"  caches in use     : {engine.used_caches()}")
    print(f"  cache hit rate    : {engine.ctx.metrics.hit_rate:.2%}")
    print(f"  pipeline orders   : {engine.executor.orders()}")

    # --- plain MJoin baseline -------------------------------------------
    baseline_workload = three_way_chain(
        t_multiplicity=5.0, window_r=96, window_s=96
    )
    baseline = MJoinExecutor(baseline_workload.graph)
    baseline.run(baseline_workload.updates(30_000))
    rate = baseline.ctx.metrics.throughput(baseline.ctx.clock.now_seconds)
    print("\nCache-free MJoin baseline")
    print(f"  throughput        : {rate:,.0f} tuples/sec")
    print(
        f"\nA-Caching speedup   : {engine.throughput() / rate:.2f}x "
        "(virtual-clock cost model; see DESIGN.md)"
    )


if __name__ == "__main__":
    main()
