"""Exception hierarchy for the A-Caching reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema was malformed or an attribute reference did not resolve."""


class PlanError(ReproError):
    """A join plan (ordering, tree, or cache placement) was invalid."""


class PrefixInvariantError(PlanError):
    """A cache was placed on a segment that violates the prefix invariant."""


class CacheConsistencyError(ReproError):
    """A cache operation would have violated its consistency invariant."""


class MemoryBudgetError(ReproError):
    """A memory allocation request could not be satisfied."""


class WorkloadError(ReproError):
    """A synthetic workload specification was inconsistent."""


class ScenarioError(WorkloadError):
    """A scenario file, trace file, or campaign matrix spec was invalid."""


class ConfigError(ReproError, ValueError):
    """A construction-time tunable was out of range.

    Subclasses ``ValueError`` as well, so callers that predate the
    :class:`ReproError` hierarchy (and the tests that pin their
    behavior) keep working, while the CLI's uniform ReproError ->
    ``exit 1`` mapping applies. Messages always name the offending
    field.
    """


class ResilienceError(ReproError):
    """A fault-injection or degradation configuration was invalid."""


class RecoveryError(ReproError):
    """A checkpoint, WAL, or restore operation could not proceed."""


class ParallelError(ReproError):
    """A sharded-execution configuration or merge invariant was invalid."""


class CLIError(ReproError):
    """A command-line argument was out of range or named nothing known."""


class ServiceError(ReproError):
    """The streaming service could not bind, start, or serve a request."""
