"""The chaos campaign matrix: scenarios x fault plans x execution modes.

``repro chaos matrix`` sweeps every requested scenario through every
fault plan on every execution mode and verifies the stack's standing
invariants per cell:

* **byte identity** — the cell's output chronology digest equals the
  *serial* run of the same scenario under the same fault plan (for the
  ``none`` plan that serial run *is* the clean replay);
* **zero acked loss** — the run completed and shed nothing;
* **dead-letter conservation** — faulted runs quarantine at least every
  injected corrupt/orphan event (a broadcast corrupt event is counted
  once per shard that saw it), clean runs quarantine nothing;
* **recovery convergence** — crash cells must recover to the clean
  answer (``RECOVERED``), via the PR-5 crash harness on serial runs and
  supervisor restarts on sharded runs.

Fault-hardened cells run a guard-only :class:`ResilienceConfig` —
shedding triggers on virtual time, which batching and sharding change,
so enabling it would (legitimately) break cross-mode byte identity and
tell us nothing about regressions. The guard quarantines by value, so
it is deterministic in every mode.

The sweep itself is deterministic: no wall-clock anywhere in the
payload, so re-running the matrix with the same seed must reproduce
``CHAOS_matrix.json`` byte-for-byte (a property test pins this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api import EngineConfig, MultiSession
from repro.errors import ScenarioError
from repro.faults.chaos import _build_workload, _chaos_config, resolve_experiment
from repro.faults.crashes import run_crash_chaos
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.resilience import ResilienceConfig
from repro.parallel.engine import ParallelConfig, output_chronology, run_sharded
from repro.parallel.spec import ExperimentSpec
from repro.parallel.supervisor import Supervisor, WorkerCrash
from repro.scenarios.library import SCENARIOS, SCENARIO_PREFIX
from repro.scenarios.trace import chronology_digest
from repro.streams.events import canonical_delta

MATRIX_KIND = "chaos_matrix"
MATRIX_VERSION = 1

#: Verdicts a cell can report.
PASS, FAIL, SKIPPED, RECOVERED = "PASS", "FAIL", "SKIPPED", "RECOVERED"


@dataclass(frozen=True)
class FaultPlanDef:
    """One column of the matrix: how a cell's update stream is faulted."""

    name: str
    #: burst_stream, arrivals -> FaultSpec (None for the clean plan).
    spec: Optional[Callable[[str, int], FaultSpec]] = None
    #: crash plans kill the process/worker instead of rewriting updates.
    crash: bool = False


def _dup_reorder(burst_stream: str, arrivals: int) -> FaultSpec:
    return FaultSpec(duplicate_prob=0.01, reorder_prob=0.02)


def _drop_orphan_corrupt(burst_stream: str, arrivals: int) -> FaultSpec:
    return FaultSpec(
        drop_delete_prob=0.004, orphan_delete_prob=0.005, corrupt_prob=0.003
    )


def _burst(burst_stream: str, arrivals: int) -> FaultSpec:
    return FaultSpec(
        burst_stream=burst_stream,
        burst_start=max(1, arrivals // 3),
        burst_length=max(10, arrivals // 10),
        burst_copies=3,
    )


FAULT_PLANS: Dict[str, FaultPlanDef] = {
    "none": FaultPlanDef("none"),
    "dup_reorder": FaultPlanDef("dup_reorder", _dup_reorder),
    "drop_orphan_corrupt": FaultPlanDef(
        "drop_orphan_corrupt", _drop_orphan_corrupt
    ),
    "burst": FaultPlanDef("burst", _burst),
    "crash": FaultPlanDef("crash", crash=True),
}

#: mode -> (shards, batch_size); supervised and multi are special-cased.
EXECUTION_MODES: Dict[str, Tuple[int, int]] = {
    "serial": (1, 1),
    "batched": (1, 8),
    "sharded": (4, 1),
    "supervised": (2, 1),
    "multi": (1, 1),
}


def _engine_spec(faulted: bool):
    resilience = (
        ResilienceConfig(shedding=None, auditor=None) if faulted else None
    )
    return EngineConfig(tuning=_chaos_config(resilience)).engine_spec(
        "adaptive"
    )


def _cell_spec(
    factory,
    total: int,
    fault_spec: Optional[FaultSpec],
    seed: int,
    batch_size: int,
) -> ExperimentSpec:
    return ExperimentSpec(
        workload_factory=factory,
        arrivals=total,
        engine=_engine_spec(fault_spec is not None),
        fault_spec=fault_spec,
        fault_seed=seed,
        output_mode="deltas",
        batch_size=batch_size,
    )


def _injected_counts(
    factory, total: int, fault_spec: Optional[FaultSpec], seed: int
) -> Dict[str, int]:
    """The global stream's injected-fault counts (engine-free pass)."""
    if fault_spec is None:
        return {}
    plan = FaultPlan(fault_spec, seed=seed)
    for _ in plan.updates(factory().updates(total)):
        pass
    return dict(plan.counts)


def _multi_chronology(factory, total: int) -> List[Tuple[int, tuple]]:
    """The clean chronology through the multi-query engine."""
    session = MultiSession()
    session.register(
        "q", factory(), EngineConfig(tuning=_chaos_config(None))
    )
    groups: Dict[int, List[tuple]] = {}
    for update in factory().updates(total):
        deltas = session.process(update).get("q", [])
        for delta in deltas:
            groups.setdefault(update.seq, []).append(canonical_delta(delta))
    return [(seq, tuple(sorted(groups[seq]))) for seq in sorted(groups)]


def _run_cell(
    scenario: str,
    factory,
    total: int,
    plan: FaultPlanDef,
    mode: str,
    seed: int,
    fault_spec: Optional[FaultSpec],
    injected: Dict[str, int],
    reference_digest: Optional[str],
) -> Dict[str, object]:
    cell: Dict[str, object] = {
        "scenario": scenario,
        "plan": plan.name,
        "mode": mode,
        "verdict": SKIPPED,
        "digest": None,
        "reference_digest": reference_digest,
        "invariants": {},
        "outputs": 0,
        "updates": 0,
        "quarantined": 0,
        "shed": 0,
        "restarts": 0,
        "injected": dict(sorted(injected.items())),
        "detail": "",
    }

    if plan.crash and mode not in ("serial", "supervised"):
        cell["detail"] = (
            "crash plans need a restartable runtime; covered by the "
            "serial and supervised cells"
        )
        return cell
    if mode == "multi" and plan.name != "none":
        cell["detail"] = (
            "the multi-query engine rejects fault-hardened configs; "
            "clean byte-identity is the invariant this mode contributes"
        )
        return cell

    if plan.crash and mode == "serial":
        report = run_crash_chaos(
            scenario,
            seed=seed,
            arrivals=total,
            kind="at_event",
            checkpoint_interval=max(50, total // 8),
        )
        recovered = bool(report.verified)
        cell.update(
            verdict=RECOVERED if recovered else FAIL,
            invariants={"recovery_convergence": recovered},
            outputs=report.outputs_recovered,
            detail=f"crash at update {report.kill_at}, kind at_event",
        )
        return cell

    if mode == "multi":
        chronology = _multi_chronology(factory, total)
        digest = chronology_digest(chronology)
        identical = digest == reference_digest
        cell.update(
            verdict=PASS if identical else FAIL,
            digest=digest,
            invariants={
                "byte_identical": identical,
                "zero_acked_loss": True,
                "dead_letter_conservation": True,
            },
            outputs=sum(len(deltas) for _seq, deltas in chronology),
        )
        return cell

    shards, batch_size = EXECUTION_MODES[mode]
    spec = _cell_spec(factory, total, fault_spec, seed, batch_size)
    if mode == "supervised":
        crashes = (
            [WorkerCrash(shard=0, after_updates=max(50, total // 8))]
            if plan.crash
            else []
        )
        supervised = Supervisor().run(spec, shards, crashes=crashes)
        run, restarts = supervised, sum(supervised.restarts.values())
    else:
        run = run_sharded(
            spec, ParallelConfig(shards=shards, backend="serial")
        )
        restarts = 0

    digest = chronology_digest(output_chronology(run))
    identical = (
        digest == reference_digest if reference_digest is not None else True
    )
    quarantined = run.stats.quarantined
    shed = run.stats.shed_updates
    must_quarantine = injected.get("corrupted", 0) + injected.get(
        "orphans", 0
    )
    conservation = (
        quarantined >= must_quarantine
        if fault_spec is not None
        else quarantined == 0
    )
    zero_loss = shed == 0
    invariants = {
        "byte_identical": identical,
        "zero_acked_loss": zero_loss,
        "dead_letter_conservation": conservation,
    }
    if plan.crash:
        invariants["recovery_convergence"] = identical
        verdict = RECOVERED if all(invariants.values()) else FAIL
    else:
        verdict = PASS if all(invariants.values()) else FAIL
    cell.update(
        verdict=verdict,
        digest=digest,
        invariants=invariants,
        outputs=len(run.merged_deltas()),
        updates=run.stats.updates_processed,
        quarantined=quarantined,
        shed=shed,
        restarts=restarts,
    )
    return cell


def run_matrix(
    scenarios: Optional[Sequence[str]] = None,
    plans: Optional[Sequence[str]] = None,
    modes: Optional[Sequence[str]] = None,
    arrivals: int = 1500,
    seed: int = 11,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the campaign; return the deterministic ``chaos_matrix`` payload.

    ``scenarios`` entries are experiment names — bare built-in scenario
    names (``flash_crowd``), ``scenario:NAME``, ``scenario-file:PATH``,
    or ``trace:PATH``. Every (scenario, fault plan) pair's serial run is
    the byte-identity reference for the other modes of that pair; crash
    cells reference the clean (``none``-plan) serial digest.
    """
    names = list(
        scenarios
        if scenarios is not None
        else [SCENARIO_PREFIX + key for key in SCENARIOS]
    )
    names = [
        SCENARIO_PREFIX + name if name in SCENARIOS else name
        for name in names
    ]
    plan_names = list(plans if plans is not None else FAULT_PLANS)
    mode_names = list(modes if modes is not None else EXECUTION_MODES)
    for plan in plan_names:
        if plan not in FAULT_PLANS:
            raise ScenarioError(
                f"unknown fault plan {plan!r}; available: "
                f"{sorted(FAULT_PLANS)}"
            )
    for mode in mode_names:
        if mode not in EXECUTION_MODES:
            raise ScenarioError(
                f"unknown execution mode {mode!r}; available: "
                f"{sorted(EXECUTION_MODES)}"
            )
    if arrivals < 1:
        raise ScenarioError("arrivals must be >= 1")

    say = progress if progress is not None else (lambda line: None)
    cells: List[Dict[str, object]] = []
    for name in names:
        experiment = resolve_experiment(name)  # validates the reference
        total = min(arrivals, experiment.arrivals) if name.startswith(
            "trace:"
        ) else arrivals
        # Module-level partial: built-in experiments build via lambdas,
        # and supervised cells must ship the factory to worker processes.
        factory = partial(_build_workload, name, total)
        references: Dict[str, str] = {}

        def serial_reference(plan: FaultPlanDef) -> str:
            """The plan's serial digest (computed once per pair)."""
            if plan.name not in references:
                fault_spec = (
                    plan.spec(experiment.burst_stream, total)
                    if plan.spec is not None
                    else None
                )
                run = run_sharded(
                    _cell_spec(factory, total, fault_spec, seed, 1),
                    ParallelConfig(shards=1, backend="serial"),
                )
                references[plan.name] = chronology_digest(
                    output_chronology(run)
                )
            return references[plan.name]

        for plan_name in plan_names:
            plan = FAULT_PLANS[plan_name]
            fault_spec = (
                plan.spec(experiment.burst_stream, total)
                if plan.spec is not None
                else None
            )
            injected = _injected_counts(factory, total, fault_spec, seed)
            reference = serial_reference(
                FAULT_PLANS["none"] if plan.crash else plan
            )
            for mode in mode_names:
                if plan.crash and mode == "serial":
                    # The crash harness replaces the serial engine run;
                    # its reference is its own internal clean pass.
                    cell_reference: Optional[str] = None
                elif mode == "serial" and not plan.crash:
                    cell_reference = reference
                else:
                    cell_reference = reference
                cell = _run_cell(
                    name,
                    factory,
                    total,
                    plan,
                    mode,
                    seed,
                    fault_spec,
                    injected,
                    cell_reference,
                )
                cells.append(cell)
                say(
                    f"{name} / {plan_name} / {mode}: {cell['verdict']}"
                    + (f" — {cell['detail']}" if cell["detail"] else "")
                )

    verdicts = [c["verdict"] for c in cells]
    return {
        "kind": MATRIX_KIND,
        "version": MATRIX_VERSION,
        "seed": seed,
        "arrivals": arrivals,
        "scenarios": names,
        "plans": plan_names,
        "modes": mode_names,
        "cells": cells,
        "totals": {
            "cells": len(cells),
            "pass": verdicts.count(PASS),
            "fail": verdicts.count(FAIL),
            "recovered": verdicts.count(RECOVERED),
            "skipped": verdicts.count(SKIPPED),
        },
    }


def matrix_to_json(payload: Dict[str, object]) -> str:
    """Stable JSON rendering for the committed artifact."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def format_matrix_report(payload: Dict[str, object]) -> str:
    """Human-readable campaign summary for the CLI."""
    totals = payload["totals"]
    lines = [
        f"chaos matrix — seed {payload['seed']}, "
        f"{payload['arrivals']} arrivals/cell",
        "=" * 60,
        f"{len(payload['scenarios'])} scenarios x "
        f"{len(payload['plans'])} fault plans x "
        f"{len(payload['modes'])} modes = {totals['cells']} cells",
    ]
    for cell in payload["cells"]:
        if cell["verdict"] == SKIPPED:
            continue
        flags = "".join(
            "+" if ok else "!" for ok in cell["invariants"].values()
        )
        lines.append(
            f"  {cell['scenario']:<28} {cell['plan']:<20} "
            f"{cell['mode']:<10} {cell['verdict']:<9} [{flags}]"
        )
    lines.append(
        f"verdicts: {totals['pass']} pass, {totals['recovered']} "
        f"recovered, {totals['skipped']} skipped, {totals['fail']} FAILED"
    )
    return "\n".join(lines)
