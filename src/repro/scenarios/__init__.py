"""Replayable traces, declarative scenarios, and the chaos campaign matrix.

Three layers, each consumed by the one above:

* :mod:`repro.scenarios.trace` — a versioned, checksummed JSONL trace
  format (``TraceRecorder`` / ``TraceReplayer``) that records a
  workload's exact update stream once and replays it byte-identically
  through any backend;
* :mod:`repro.scenarios.library` — a declarative scenario format
  (JSON natively, YAML when available) plus built-in scenarios for the
  classic robustness regimes (flash crowd, diurnal cycle, key skew
  with churn, correlated delete storm, semi-stream master join), each
  compiling to a workload or a trace;
* :mod:`repro.scenarios.matrix` — the ``repro chaos matrix`` campaign
  runner sweeping scenarios x fault plans x execution modes and
  verifying the stack's standing invariants per cell.
"""

from repro.scenarios.trace import (
    TraceRecorder,
    TraceReplayer,
    TraceWorkload,
    chronology_digest,
    load_trace_workload,
    record_trace,
)
from repro.scenarios.library import (
    SCENARIOS,
    build_named_scenario_workload,
    build_scenario_workload,
    compile_scenario_to_trace,
    load_scenario,
    resolve_chaos_experiment,
)
from repro.scenarios.matrix import (
    EXECUTION_MODES,
    FAULT_PLANS,
    matrix_to_json,
    run_matrix,
)

__all__ = [
    "TraceRecorder",
    "TraceReplayer",
    "TraceWorkload",
    "chronology_digest",
    "load_trace_workload",
    "record_trace",
    "SCENARIOS",
    "build_named_scenario_workload",
    "build_scenario_workload",
    "compile_scenario_to_trace",
    "load_scenario",
    "resolve_chaos_experiment",
    "EXECUTION_MODES",
    "FAULT_PLANS",
    "matrix_to_json",
    "run_matrix",
]
