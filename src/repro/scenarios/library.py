"""The declarative scenario library.

A scenario is a small JSON (or YAML, when a parser is installed)
document describing a robustness regime::

    {"version": 1, "name": "flash_crowd", "kind": "flash_crowd",
     "arrivals": 8000, "seed": 11, "burst_stream": "R",
     "params": {"spike_factor": 8.0, ...}}

``kind`` selects one of the built-in builders; ``params`` overrides that
builder's knobs. Five kinds ship with the library, covering the regimes
the robustness literature (and ROADMAP item 5) calls for:

* ``flash_crowd`` — one stream's rate spikes by ``spike_factor`` for a
  slice of the run, then reverts;
* ``diurnal`` — a sinusoidal rate cycle (the day/night load curve);
* ``key_skew_churn`` — Zipf-hot join keys whose hot set rotates through
  the domain, so a tuned cache goes stale mid-run;
* ``delete_storm`` — small windows plus a mid-run insert flood, so the
  windows emit a correlated storm of expiry deletes;
* ``master_join`` — a semi-stream join: a large, slow-changing master
  relation is prefilled, then fast streams join against it while the
  master receives a trickle of updates (the CACHEJOIN regime).

Every scenario compiles to a deterministic workload (fixed seed) and,
via :func:`compile_scenario_to_trace`, to a replayable trace.
"""

from __future__ import annotations

import json
import math
import os
from functools import partial
from typing import Callable, Dict, Mapping, Optional

from repro.errors import ScenarioError
from repro.faults.chaos import ChaosExperiment
from repro.relations.predicates import JoinGraph
from repro.scenarios.trace import load_trace_workload, record_trace
from repro.streams.generators import (
    RotatingHotSetValues,
    StreamSpec,
    UniformValues,
)
from repro.streams.tuples import Schema
from repro.streams.workloads import Workload, three_way_chain

SCENARIO_VERSION = 1

# Resolvable experiment-name prefixes (shared with the chaos CLI).
SCENARIO_PREFIX = "scenario:"
SCENARIO_FILE_PREFIX = "scenario-file:"
TRACE_PREFIX = "trace:"


def _params(scenario: Mapping, defaults: Dict[str, object]) -> Dict:
    merged = dict(defaults)
    given = scenario.get("params") or {}
    unknown = set(given) - set(defaults)
    if unknown:
        raise ScenarioError(
            f"scenario {scenario.get('name')!r} has unknown params "
            f"{sorted(unknown)}; known: {sorted(defaults)}"
        )
    merged.update(given)
    return merged


# ----------------------------------------------------------------------
# Builders: scenario dict + arrivals -> fresh Workload
# ----------------------------------------------------------------------

def _build_flash_crowd(scenario: Mapping, arrivals: int) -> Workload:
    p = _params(
        scenario,
        {
            "spike_start": 0.4,
            "spike_end": 0.6,
            "spike_factor": 8.0,
            "t_multiplicity": 3.0,
            "window": 96,
        },
    )
    start = int(arrivals * float(p["spike_start"]))
    end = int(arrivals * float(p["spike_end"]))
    factor = float(p["spike_factor"])

    def rates_at(emitted: int) -> Dict[str, float]:
        return {"R": factor} if start <= emitted < end else {}

    return three_way_chain(
        t_multiplicity=float(p["t_multiplicity"]),
        window_r=int(p["window"]),
        window_s=int(p["window"]),
        rate_function=rates_at,
        name=f"scenario-{scenario['name']}",
    )


def _build_diurnal(scenario: Mapping, arrivals: int) -> Workload:
    p = _params(
        scenario,
        {
            "period": 600,
            "amplitude": 0.8,
            "t_multiplicity": 3.0,
            "window": 96,
        },
    )
    period = int(p["period"])
    amplitude = float(p["amplitude"])
    if not 0.0 <= amplitude < 1.0:
        raise ScenarioError("diurnal amplitude must be in [0, 1)")

    def rates_at(emitted: int) -> Dict[str, float]:
        phase = 2.0 * math.pi * emitted / period
        return {"R": 1.0 + amplitude * math.sin(phase)}

    return three_way_chain(
        t_multiplicity=float(p["t_multiplicity"]),
        window_r=int(p["window"]),
        window_s=int(p["window"]),
        rate_function=rates_at,
        name=f"scenario-{scenario['name']}",
    )


def _build_key_skew_churn(scenario: Mapping, arrivals: int) -> Workload:
    p = _params(
        scenario,
        {
            "domain": 48,
            "domain_b": 48,
            "exponent": 1.2,
            "rotate_every": 400,
            "hot_set_size": 8,
            "window": 96,
        },
    )
    seed = int(scenario.get("seed", 0))
    domain, domain_b = int(p["domain"]), int(p["domain_b"])
    graph = JoinGraph.parse(
        [Schema("R", ("A",)), Schema("S", ("A", "B")), Schema("T", ("B",))],
        ["R.A = S.A", "S.B = T.B"],
    )

    def hot(seed_offset: int, size: int) -> RotatingHotSetValues:
        return RotatingHotSetValues(
            size,
            exponent=float(p["exponent"]),
            seed=seed + seed_offset,
            rotate_every=int(p["rotate_every"]),
            hot_set_size=int(p["hot_set_size"]),
        )

    specs = {
        "R": StreamSpec("R", ("A",), {"A": hot(0, domain)}),
        "S": StreamSpec(
            "S",
            ("A", "B"),
            {"A": hot(1, domain), "B": hot(2, domain_b)},
        ),
        "T": StreamSpec("T", ("B",), {"B": hot(3, domain_b)}),
    }
    window = int(p["window"])
    return Workload(
        name=f"scenario-{scenario['name']}",
        graph=graph,
        specs=specs,
        windows={"R": window, "S": window, "T": window},
        rates={"R": 1.0, "S": 1.0, "T": 1.0},
        metadata={"scenario": scenario["name"]},
    )


def _build_delete_storm(scenario: Mapping, arrivals: int) -> Workload:
    p = _params(
        scenario,
        {
            "window": 32,
            "storm_start": 0.5,
            "storm_end": 0.65,
            "storm_factor": 10.0,
            "t_multiplicity": 2.0,
        },
    )
    start = int(arrivals * float(p["storm_start"]))
    end = int(arrivals * float(p["storm_end"]))
    factor = float(p["storm_factor"])

    def rates_at(emitted: int) -> Dict[str, float]:
        # The flood fills the already-small R window instantly, so every
        # storm insert carries a correlated expiry delete with it.
        return {"R": factor} if start <= emitted < end else {}

    window = int(p["window"])
    return three_way_chain(
        t_multiplicity=float(p["t_multiplicity"]),
        window_r=window,
        window_s=window,
        window_t=window,
        rate_function=rates_at,
        name=f"scenario-{scenario['name']}",
    )


def _build_master_join(scenario: Mapping, arrivals: int) -> Workload:
    p = _params(
        scenario,
        {
            "master_rows": 600,
            "domain": 64,
            "domain_b": 64,
            "master_trickle": 0.02,
            "prefill_rate": 50.0,
        },
    )
    seed = int(scenario.get("seed", 0))
    master_rows = int(p["master_rows"])
    trickle = float(p["master_trickle"])
    prefill_rate = float(p["prefill_rate"])
    graph = JoinGraph.parse(
        [Schema("M", ("A",)), Schema("S", ("A", "B")), Schema("T", ("B",))],
        ["M.A = S.A", "S.B = T.B"],
    )
    specs = {
        "M": StreamSpec(
            "M", ("A",), {"A": UniformValues(int(p["domain"]), seed)}
        ),
        "S": StreamSpec(
            "S",
            ("A", "B"),
            {
                "A": UniformValues(int(p["domain"]), seed + 1),
                "B": UniformValues(int(p["domain_b"]), seed + 2),
            },
        ),
        "T": StreamSpec(
            "T", ("B",), {"B": UniformValues(int(p["domain_b"]), seed + 3)}
        ),
    }

    def rates_at(emitted: int) -> Dict[str, float]:
        # Prefill the master first, then stream against it while the
        # master only trickles (its window keeps it slow-changing).
        if emitted < master_rows:
            return {"M": prefill_rate, "S": 0.02, "T": 0.02}
        return {"M": trickle, "S": 1.0, "T": 1.0}

    return Workload(
        name=f"scenario-{scenario['name']}",
        graph=graph,
        specs=specs,
        windows={"M": master_rows, "S": 96, "T": 96},
        rates={"M": 1.0, "S": 1.0, "T": 1.0},
        rate_function=rates_at,
        metadata={"scenario": scenario["name"]},
    )


_BUILDERS: Dict[str, Callable[[Mapping, int], Workload]] = {
    "flash_crowd": _build_flash_crowd,
    "diurnal": _build_diurnal,
    "key_skew_churn": _build_key_skew_churn,
    "delete_storm": _build_delete_storm,
    "master_join": _build_master_join,
}


# ----------------------------------------------------------------------
# Built-in scenarios (one per kind, default knobs)
# ----------------------------------------------------------------------

SCENARIOS: Dict[str, Dict] = {
    name: {
        "version": SCENARIO_VERSION,
        "name": name,
        "kind": name,
        "arrivals": 6_000,
        "seed": 11,
        "burst_stream": "M" if name == "master_join" else "R",
        "params": {},
    }
    for name in _BUILDERS
}


def validate_scenario(scenario: object) -> Dict:
    """Check a loaded scenario document; return it as a plain dict."""
    if not isinstance(scenario, Mapping):
        raise ScenarioError(
            f"a scenario must be a mapping, got {type(scenario).__name__}"
        )
    out = dict(scenario)
    if out.get("version") != SCENARIO_VERSION:
        raise ScenarioError(
            f"scenario version {out.get('version')!r} unsupported; this "
            f"build reads version {SCENARIO_VERSION}"
        )
    name = out.get("name")
    if not isinstance(name, str) or not name:
        raise ScenarioError("scenario needs a non-empty string 'name'")
    kind = out.get("kind")
    if kind not in _BUILDERS:
        raise ScenarioError(
            f"scenario {name!r} has unknown kind {kind!r}; available: "
            f"{sorted(_BUILDERS)}"
        )
    arrivals = out.get("arrivals")
    if not isinstance(arrivals, int) or arrivals < 1:
        raise ScenarioError(
            f"scenario {name!r} needs a positive integer 'arrivals'"
        )
    if not isinstance(out.get("seed", 0), int):
        raise ScenarioError(f"scenario {name!r} seed must be an integer")
    burst = out.get("burst_stream", "R")
    if not isinstance(burst, str) or not burst:
        raise ScenarioError(
            f"scenario {name!r} burst_stream must be a stream name"
        )
    out.setdefault("seed", 0)
    out.setdefault("burst_stream", burst)
    out.setdefault("params", {})
    if not isinstance(out["params"], Mapping):
        raise ScenarioError(f"scenario {name!r} params must be a mapping")
    return out


def build_scenario_workload(
    scenario: Mapping, arrivals: Optional[int] = None
) -> Workload:
    """Compile a scenario document into a fresh deterministic workload."""
    scenario = validate_scenario(scenario)
    total = arrivals if arrivals is not None else int(scenario["arrivals"])
    if total < 1:
        raise ScenarioError("arrivals must be >= 1")
    workload = _BUILDERS[scenario["kind"]](scenario, total)
    if scenario["burst_stream"] not in workload.graph.schemas:
        raise ScenarioError(
            f"scenario {scenario['name']!r} names burst_stream "
            f"{scenario['burst_stream']!r}, not a relation of its query"
        )
    return workload


def build_named_scenario_workload(name: str, arrivals: int) -> Workload:
    """Build a built-in scenario by name (module level, so it pickles)."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
    return build_scenario_workload(scenario, arrivals)


def load_scenario(path: str) -> Dict:
    """Load + validate a scenario file (JSON always; YAML when available)."""
    if not os.path.exists(path):
        raise ScenarioError(f"scenario file not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml
        except ImportError:
            raise ScenarioError(
                f"{path} is YAML but no YAML parser is installed; "
                "rewrite the scenario as JSON or install PyYAML"
            ) from None
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError(
                f"scenario file {path} is not valid YAML: {exc}"
            ) from None
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(
                f"scenario file {path} is not valid JSON: {exc}"
            ) from None
    return validate_scenario(data)


def build_scenario_file_workload(path: str, arrivals: int) -> Workload:
    """Build from a scenario file (module level, so it pickles)."""
    return build_scenario_workload(load_scenario(path), arrivals)


def _trace_workload(path: str, arrivals: int):
    """Trace-backed build callable (``arrivals`` is bounded by replay)."""
    return load_trace_workload(path)


def compile_scenario_to_trace(
    scenario: Mapping, path: str, arrivals: Optional[int] = None
) -> Dict:
    """Record a scenario's update stream into a trace file at ``path``."""
    scenario = validate_scenario(scenario)
    total = arrivals if arrivals is not None else int(scenario["arrivals"])
    workload = build_scenario_workload(scenario, total)
    return record_trace(workload, total, path, scenario=dict(scenario))


def resolve_chaos_experiment(name: str) -> ChaosExperiment:
    """Resolve a prefixed experiment name into a :class:`ChaosExperiment`.

    Three prefixes are understood (the chaos CLI's ``--scenario`` and
    ``--trace`` flags produce them):

    * ``scenario:NAME`` — a built-in scenario from :data:`SCENARIOS`;
    * ``scenario-file:PATH`` — a scenario document on disk;
    * ``trace:PATH`` — a recorded trace, replayed verbatim.

    The returned experiment's ``build`` is picklable, so sharded chaos
    runs can rebuild the workload inside worker processes.
    """
    if name.startswith(SCENARIO_PREFIX):
        key = name[len(SCENARIO_PREFIX):]
        if key not in SCENARIOS:
            raise ScenarioError(
                f"unknown scenario {key!r}; available: {sorted(SCENARIOS)}"
            )
        scenario = SCENARIOS[key]
        return ChaosExperiment(
            name=name,
            build=partial(build_named_scenario_workload, key),
            arrivals=int(scenario["arrivals"]),
            burst_stream=str(scenario["burst_stream"]),
        )
    if name.startswith(SCENARIO_FILE_PREFIX):
        path = name[len(SCENARIO_FILE_PREFIX):]
        scenario = load_scenario(path)
        return ChaosExperiment(
            name=name,
            build=partial(build_scenario_file_workload, path),
            arrivals=int(scenario["arrivals"]),
            burst_stream=str(scenario["burst_stream"]),
        )
    if name.startswith(TRACE_PREFIX):
        path = name[len(TRACE_PREFIX):]
        workload = load_trace_workload(path)  # verifies checksum up front
        return ChaosExperiment(
            name=name,
            build=partial(_trace_workload, path),
            arrivals=workload.recorded_arrivals,
            burst_stream=next(iter(workload.graph.schemas)),
        )
    raise ScenarioError(
        f"experiment {name!r} is not a scenario or trace reference; "
        f"expected a '{SCENARIO_PREFIX}', '{SCENARIO_FILE_PREFIX}', or "
        f"'{TRACE_PREFIX}' prefix"
    )
