"""The replayable trace format: record a workload once, replay anywhere.

A trace is a JSONL file. Line 1 is a manifest::

    {"kind": "repro_trace", "version": 1, "name": ..., "arrivals": N,
     "update_count": M, "checksum": "sha256:...", "scenario": {...}|null,
     "schemas": {"R": ["A"], ...}, "predicates": ["R.A = S.A", ...],
     "windows": {...}, "rates": {...}, "indexed_attributes": {...}|null,
     "metadata": {...}}

Every following line is one update event::

    {"seq": 0, "relation": "R", "rid": 0, "values": [7], "sign": 1,
     "arrival": 0}

``arrival`` is the 0-based ordinal of the *insert* that produced the
event (a window-expiry delete carries the ordinal of the insert that
pushed it out), so replaying the first ``k`` arrivals of a trace yields
exactly the recorded stream's ``k``-arrival prefix — sequence numbers
included. The checksum is the sha256
of the event-line bytes, so a truncated or edited trace is rejected
before it can silently change an experiment.

Replay reconstructs :class:`repro.streams.tuples.Row` objects *interned
by rid*: row equality is identity-based, so a delete must reuse the very
object its insert introduced or windows and caches would never match it.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ScenarioError
from repro.relations.predicates import JoinGraph
from repro.streams.events import Sign, Update
from repro.streams.tuples import Row, Schema

TRACE_KIND = "repro_trace"
TRACE_VERSION = 1


def _predicate_strings(graph: JoinGraph) -> List[str]:
    return [
        f"{p.left.relation}.{p.left.attribute} = "
        f"{p.right.relation}.{p.right.attribute}"
        for p in graph.base_predicates
    ]


def _json_line(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, default=str)


def chronology_digest(chronology: object) -> str:
    """A stable digest of an :func:`output_chronology` result.

    Byte-identity across backends is asserted by comparing these digests;
    the ``repr`` of the canonical chronology is deterministic because
    canonical deltas are sorted tuples of plain values.
    """
    return hashlib.sha256(repr(chronology).encode("utf-8")).hexdigest()


class TraceRecorder:
    """Records a workload's update stream into the trace format."""

    def __init__(self, workload, scenario: Optional[dict] = None):
        self.workload = workload
        self.scenario = dict(scenario) if scenario is not None else None

    def record(self, arrivals: int, path: str) -> dict:
        """Drive ``arrivals`` stream tuples and write the trace to ``path``.

        Returns the manifest that was written.
        """
        if arrivals < 1:
            raise ScenarioError("arrivals must be >= 1 to record a trace")
        workload = self.workload
        lines: List[str] = []
        digest = hashlib.sha256()
        inserts = 0
        for update in workload.updates(arrivals):
            if update.sign is Sign.INSERT:
                inserts += 1
            event = _json_line(
                {
                    "seq": update.seq,
                    "relation": update.relation,
                    "rid": update.row.rid,
                    "values": list(update.row.values),
                    "sign": int(update.sign),
                    "arrival": inserts - 1,
                }
            )
            digest.update(event.encode("utf-8"))
            digest.update(b"\n")
            lines.append(event)
        manifest = {
            "kind": TRACE_KIND,
            "version": TRACE_VERSION,
            "name": workload.name,
            "arrivals": inserts,
            "update_count": len(lines),
            "checksum": f"sha256:{digest.hexdigest()}",
            "scenario": self.scenario,
            # Insertion order is preserved through JSON, so the replayed
            # graph sees its relations in the original declaration order.
            "schemas": {
                name: list(schema.attributes)
                for name, schema in workload.graph.schemas.items()
            },
            "predicates": _predicate_strings(workload.graph),
            "windows": dict(workload.windows),
            "rates": dict(workload.rates),
            "indexed_attributes": (
                {k: list(v) for k, v in workload.indexed_attributes.items()}
                if workload.indexed_attributes is not None
                else None
            ),
            "metadata": dict(getattr(workload, "metadata", {}) or {}),
        }
        with open(path, "w", encoding="utf-8") as handle:
            # No sort_keys here: the schemas mapping must keep its
            # declaration order (insertion order is already stable).
            handle.write(json.dumps(manifest, default=str) + "\n")
            for line in lines:
                handle.write(line + "\n")
        return manifest


def record_trace(
    workload, arrivals: int, path: str, scenario: Optional[dict] = None
) -> dict:
    """Record ``workload`` for ``arrivals`` stream tuples into ``path``."""
    return TraceRecorder(workload, scenario=scenario).record(arrivals, path)


class TraceWorkload:
    """A replayed trace exposed through the Workload duck-type surface.

    Carries the same attributes the engine builders and partitioners
    read (``graph``, ``windows``, ``rates``, ``indexed_attributes``,
    ``metadata``, ``name``) and an ``updates(arrivals)`` that re-emits
    the recorded events instead of re-running generators — so the same
    trace drives serial, batched, sharded, supervised, and multi-query
    execution with byte-identical inputs.
    """

    def __init__(self, manifest: dict, events: List[dict]):
        self.manifest = manifest
        self.name = manifest["name"]
        self.graph = JoinGraph.parse(
            [
                Schema(name, tuple(attrs))
                for name, attrs in manifest["schemas"].items()
            ],
            list(manifest["predicates"]),
        )
        self.specs: Dict[str, object] = {}
        self.windows = {k: int(v) for k, v in manifest["windows"].items()}
        self.rates = {k: float(v) for k, v in manifest["rates"].items()}
        self.rate_function = None
        indexed = manifest.get("indexed_attributes")
        self.indexed_attributes = (
            {k: tuple(v) for k, v in indexed.items()}
            if indexed is not None
            else None
        )
        self.metadata = dict(manifest.get("metadata", {}))
        self.recorded_arrivals = int(manifest["arrivals"])
        self._events = events

    def updates(self, arrivals: int) -> Iterator[Update]:
        """Replay the recorded update stream for the first ``arrivals``.

        ``arrivals`` counts stream tuples (inserts), exactly like
        :meth:`repro.streams.workloads.Workload.updates`; replaying
        fewer arrivals than recorded yields the recorded stream's exact
        prefix (generators whose knobs scale with the arrival count are
        frozen at recording time — that is the point of a trace).
        """
        if arrivals < 1:
            raise ScenarioError("arrivals must be >= 1")
        if arrivals > self.recorded_arrivals:
            raise ScenarioError(
                f"trace {self.name!r} records {self.recorded_arrivals} "
                f"arrivals; cannot replay {arrivals}"
            )
        return self._replay(arrivals)

    def _replay(self, arrivals: int) -> Iterator[Update]:
        live: Dict[int, Row] = {}
        for event in self._events:
            if event["arrival"] >= arrivals:
                break
            rid = event["rid"]
            sign = Sign(event["sign"])
            if sign is Sign.INSERT:
                row = Row(rid, tuple(event["values"]))
                live[rid] = row
            else:
                try:
                    row = live.pop(rid)
                except KeyError:
                    raise ScenarioError(
                        f"trace {self.name!r} deletes rid {rid} before "
                        "inserting it — corrupt event stream"
                    ) from None
            yield Update(event["relation"], row, sign, event["seq"])


class TraceReplayer:
    """Loads and verifies a trace file, yielding :class:`TraceWorkload`s."""

    def __init__(self, path: str, verify: bool = True):
        self.path = path
        if not os.path.exists(path):
            raise ScenarioError(f"trace file not found: {path}")
        with open(path, "r", encoding="utf-8") as handle:
            raw = handle.read().splitlines()
        if not raw:
            raise ScenarioError(f"trace file {path} is empty")
        try:
            manifest = json.loads(raw[0])
        except json.JSONDecodeError as exc:
            raise ScenarioError(
                f"trace file {path} has an unreadable manifest: {exc}"
            ) from None
        if manifest.get("kind") != TRACE_KIND:
            raise ScenarioError(
                f"{path} is not a {TRACE_KIND} file "
                f"(kind={manifest.get('kind')!r})"
            )
        if manifest.get("version") != TRACE_VERSION:
            raise ScenarioError(
                f"trace {path} has version {manifest.get('version')!r}; "
                f"this build reads version {TRACE_VERSION}"
            )
        event_lines = raw[1:]
        if len(event_lines) != manifest.get("update_count"):
            raise ScenarioError(
                f"trace {path} is truncated: manifest promises "
                f"{manifest.get('update_count')} events, file holds "
                f"{len(event_lines)}"
            )
        if verify:
            digest = hashlib.sha256()
            for line in event_lines:
                digest.update(line.encode("utf-8"))
                digest.update(b"\n")
            checksum = f"sha256:{digest.hexdigest()}"
            if checksum != manifest.get("checksum"):
                raise ScenarioError(
                    f"trace {path} failed its checksum: manifest says "
                    f"{manifest.get('checksum')}, events hash to {checksum}"
                )
        try:
            events = [json.loads(line) for line in event_lines]
        except json.JSONDecodeError as exc:
            raise ScenarioError(
                f"trace file {path} has an unreadable event line: {exc}"
            ) from None
        self.manifest = manifest
        self._events = events

    @property
    def recorded_arrivals(self) -> int:
        return int(self.manifest["arrivals"])

    def workload(self) -> TraceWorkload:
        """A fresh replayable workload over the verified events."""
        return TraceWorkload(self.manifest, self._events)


def load_trace_workload(path: str) -> TraceWorkload:
    """Load + verify ``path`` and return a replayable workload.

    Module-level so ``functools.partial(load_trace_workload, path)`` is a
    picklable workload factory for process-backend shard workers.
    """
    return TraceReplayer(path).workload()
