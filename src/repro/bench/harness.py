"""Shared utilities for the figure-regeneration benchmarks."""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.streams.workloads import Workload


def report(text: str) -> None:
    """Print experiment tables past pytest's output capture.

    The benchmark modules regenerate the paper's series as a side effect
    of the test run; writing to the real stdout keeps the tables visible
    in ``pytest benchmarks/ --benchmark-only`` output.
    """
    print(text, file=sys.__stdout__, flush=True)


@dataclass
class ExperimentRow:
    """One x-axis point of a figure: absolute rates plus the ratio.

    ``ratio`` follows the paper's relative graphs: the tuple-processing
    *time* ratio of the caching plan to the MJoin, which equals
    ``rate(MJoin) / rate(caching)``. Values below 1 mean caching wins.
    """

    x: object
    caching_rate: float
    mjoin_rate: float
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """rate(MJoin)/rate(caching): the paper's relative-graph y value."""
        if self.caching_rate <= 0:
            return float("inf")
        return self.mjoin_rate / self.caching_rate


def format_rows(
    title: str,
    x_label: str,
    rows: Sequence[ExperimentRow],
    extra_keys: Sequence[str] = (),
) -> str:
    """Render an experiment as the paper-style absolute + relative table."""
    lines = [title, "=" * len(title)]
    header = (
        f"{x_label:>16} | {'with caches':>12} | {'MJoin':>12} | "
        f"{'time ratio':>10}"
    )
    for key in extra_keys:
        header += f" | {key:>14}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        line = (
            f"{row.x!s:>16} | {row.caching_rate:>12,.0f} | "
            f"{row.mjoin_rate:>12,.0f} | {row.ratio:>10.3f}"
        )
        for key in extra_keys:
            line += f" | {row.extra.get(key, ''):>14}"
        lines.append(line)
    return "\n".join(lines)


def run_static(plan, workload: Workload, arrivals: int) -> float:
    """Run a static plan to completion; returns updates/sec."""
    plan.run(workload.updates(arrivals))
    ctx = plan.ctx
    return ctx.metrics.throughput(ctx.clock.now_seconds)


def monotone_non_increasing(
    values: Sequence[float], tolerance: float = 0.08
) -> bool:
    """Shape check: a series trends down, allowing per-step noise."""
    return all(
        later <= earlier * (1.0 + tolerance)
        for earlier, later in zip(values, values[1:])
    )


def monotone_non_decreasing(
    values: Sequence[float], tolerance: float = 0.08
) -> bool:
    """Shape check: a series trends up, allowing per-step noise."""
    return all(
        later >= earlier * (1.0 - tolerance)
        for earlier, later in zip(values, values[1:])
    )


def decision_markers(series) -> List[Dict[str, object]]:
    """Plot annotations from a run's series: one marker per decision.

    Each :class:`~repro.engine.runtime.SeriesPoint` carries the
    adaptivity decisions that fired inside its sample window; this
    flattens them into ``{x, action, candidate_id, net, label}`` dicts so
    Figure 12/13-style plots can draw "cache X added here" markers at the
    right x position.
    """
    markers: List[Dict[str, object]] = []
    # Resilience actions are not about a cache, so their labels skip the
    # "cache" noun (candidate_id carries the stream or "engine" instead).
    non_cache_actions = {"quarantine", "shed_start", "shed_stop"}
    for point in series:
        for decision in point.decisions:
            verb = {
                "attach": "added",
                "detach": "dropped",
                "monitor_drop": "dropped (monitor)",
                "memory_reject": "rejected (memory)",
                "memory_evict": "evicted (memory)",
                "quarantine": "quarantined an update",
                "shed_start": "began shedding load",
                "shed_stop": "stopped shedding load",
                "coherence_detach": "dropped (coherence)",
                "coherence_rebuild": "rebuilt (coherence)",
            }.get(decision.action, decision.action)
            noun = "" if decision.action in non_cache_actions else "cache "
            markers.append(
                {
                    "x": point.x,
                    "action": decision.action,
                    "candidate_id": decision.candidate_id,
                    "net": decision.net,
                    "label": f"{noun}{decision.candidate_id} {verb}",
                }
            )
    return markers
