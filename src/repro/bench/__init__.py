"""Subpackage of the A-Caching reproduction."""
