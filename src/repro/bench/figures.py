"""The experiments behind every figure and table of Section 7.

Each ``figureN`` function regenerates the corresponding plot's data at a
configurable scale; the modules in ``benchmarks/`` call these with their
default scales and print the series. EXPERIMENTS.md records measured
values against the paper's.

Figures 6-8 and 10 follow Section 7.2's methodology: a single candidate
cache — ``R ⋈ S`` in ``∆T``'s pipeline — is *forced* to be used, and the
plan with the cache is compared against the best cache-free MJoin on the
same workload. Figures 9, 11, 12, 13 run the full adaptive system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api import (
    EngineConfig,
    Session,
    ShardingConfig,
    build_adaptive_engine,
    build_static_plan,
)
from repro.bench.harness import ExperimentRow, run_static
from repro.engine.runtime import SeriesPoint, run_with_series
from repro.parallel.engine import ParallelConfig, run_sharded
from repro.parallel.series import run_series_sharded
from repro.parallel.spec import EngineSpec, ExperimentSpec
from repro.planner import enumeration as plans
from repro.streams.events import Sign
from repro.streams.workloads import (
    TABLE2_POINTS,
    fig6_workload,
    fig7_workload,
    fig8_workload,
    fig9_workload,
    fig10_workload,
    fig12_workload,
    table2_workload,
)

# The fixed three-way orderings under which the R ⋈ S segment in ∆T's
# pipeline is the forced candidate cache (prefix invariant satisfied:
# ∆R joins S first, ∆S joins R first). Figure 3's plan.
CHAIN_ORDERS = {"T": ("S", "R"), "R": ("S", "T"), "S": ("R", "T")}
FORCED_CACHE = "T:0-1p"


def _static_rate_sharded(
    workload_factory,
    arrivals: int,
    candidate_ids: Tuple[str, ...],
    parallel: ParallelConfig,
) -> Tuple[float, Dict]:
    """Sharded analog of a cumulative static-plan rate measurement."""
    session = Session.static(
        workload_factory,
        EngineConfig(
            orders=CHAIN_ORDERS,
            candidate_ids=candidate_ids,
            sharding=ShardingConfig(
                shards=parallel.shards, backend=parallel.backend
            ),
        ),
    )
    stats = session.execute(arrivals).stats
    return stats.modeled_throughput, {
        "hit_rate": round(stats.hit_rate, 3),
        "probes": stats.cache_probes,
    }


def _forced_cache_rate(
    workload_factory,
    arrivals: int,
    parallel: Optional[ParallelConfig] = None,
) -> Tuple[float, Dict]:
    if parallel is not None and parallel.active:
        return _static_rate_sharded(
            workload_factory, arrivals, (FORCED_CACHE,), parallel
        )
    workload = workload_factory()
    plan = build_static_plan(
        workload,
        EngineConfig(orders=CHAIN_ORDERS, candidate_ids=(FORCED_CACHE,)),
    )
    rate = run_static(plan, workload, arrivals)
    metrics = plan.ctx.metrics
    return rate, {
        "hit_rate": round(metrics.hit_rate, 3),
        "probes": metrics.cache_probes,
    }


def _plain_mjoin_rate(
    workload_factory,
    arrivals: int,
    parallel: Optional[ParallelConfig] = None,
) -> float:
    if parallel is not None and parallel.active:
        rate, _ = _static_rate_sharded(
            workload_factory, arrivals, (), parallel
        )
        return rate
    workload = workload_factory()
    plan = build_static_plan(workload, EngineConfig(orders=CHAIN_ORDERS))
    return run_static(plan, workload, arrivals)


def figure6(
    multiplicities: Sequence[int] = tuple(range(1, 11)),
    arrivals: int = 20_000,
    window: int = 128,
    parallel: Optional[ParallelConfig] = None,
) -> List[ExperimentRow]:
    """Figure 6: varying cache hit probability via T.B multiplicity."""
    rows = []
    for multiplicity in multiplicities:
        factory = partial(fig6_workload, multiplicity, window=window)
        cached, extra = _forced_cache_rate(factory, arrivals, parallel)
        plain = _plain_mjoin_rate(factory, arrivals, parallel)
        rows.append(
            ExperimentRow(
                x=multiplicity,
                caching_rate=cached,
                mjoin_rate=plain,
                extra=extra,
            )
        )
    return rows


def figure7(
    selectivities: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0),
    arrivals: int = 20_000,
    window: int = 128,
    parallel: Optional[ParallelConfig] = None,
) -> List[ExperimentRow]:
    """Figure 7: varying join selectivity for ∆T tuples."""
    rows = []
    for selectivity in selectivities:
        factory = partial(fig7_workload, selectivity, window=window)
        cached, extra = _forced_cache_rate(factory, arrivals, parallel)
        plain = _plain_mjoin_rate(factory, arrivals, parallel)
        rows.append(
            ExperimentRow(
                x=selectivity,
                caching_rate=cached,
                mjoin_rate=plain,
                extra=extra,
            )
        )
    return rows


def figure8(
    ratios: Sequence[float] = (0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0),
    arrivals: int = 20_000,
    window: int = 128,
    parallel: Optional[ParallelConfig] = None,
) -> List[ExperimentRow]:
    """Figure 8: varying the cache update rate over the probe rate."""
    rows = []
    for ratio in ratios:
        factory = partial(fig8_workload, ratio, window=window)
        cached, extra = _forced_cache_rate(factory, arrivals, parallel)
        plain = _plain_mjoin_rate(factory, arrivals, parallel)
        rows.append(
            ExperimentRow(
                x=ratio, caching_rate=cached, mjoin_rate=plain, extra=extra
            )
        )
    return rows


def figure9(
    relation_counts: Sequence[int] = tuple(range(3, 10)),
    arrivals_for: Optional[Callable[[int], int]] = None,
    window: int = 48,
    parallel: Optional[ParallelConfig] = None,
) -> List[ExperimentRow]:
    """Figure 9: n-way star joins under full adaptive A-Caching."""
    if arrivals_for is None:
        arrivals_for = lambda n: max(3_000, 12_000 // max(1, n - 2))
    rows = []
    for n in relation_counts:
        arrivals = arrivals_for(n)
        factory = partial(fig9_workload, n, window=window)
        cached = plans.run_acaching(
            factory,
            arrivals,
            global_quota=0,
            reopt_interval_updates=max(800, arrivals // 5),
            stat_window=4,
            bloom_window=max(96, 3 * window),
            parallel=parallel,
        )
        plain = plans.run_mjoin(
            factory, arrivals, adaptive_ordering=True, parallel=parallel
        )
        rows.append(
            ExperimentRow(
                x=n,
                caching_rate=cached.throughput,
                mjoin_rate=plain.throughput,
                extra={
                    "caches_used": len(cached.detail["used_caches"]),
                    "candidates": "-",
                },
            )
        )
    return rows


def figure10(
    s_windows: Sequence[int] = (50, 250, 500, 1000, 1500, 2000),
    arrivals: int = 8_000,
    parallel: Optional[ParallelConfig] = None,
) -> List[ExperimentRow]:
    """Figure 10: nested-loop join cost via |S| with no S.B index."""
    rows = []
    for s_window in s_windows:
        factory = partial(fig10_workload, s_window)
        cached, extra = _forced_cache_rate(factory, arrivals, parallel)
        plain = _plain_mjoin_rate(factory, arrivals, parallel)
        rows.append(
            ExperimentRow(
                x=s_window,
                caching_rate=cached,
                mjoin_rate=plain,
                extra=extra,
            )
        )
    return rows


@dataclass
class SpectrumResult:
    """Figure 11 / Table 2: the four plan rates at one sample point."""

    point: str
    rates: Dict[str, float]
    detail: Dict[str, object] = field(default_factory=dict)


def figure11(
    points: Sequence[str] = tuple(sorted(TABLE2_POINTS)),
    arrivals: int = 12_000,
    window_base: Optional[int] = None,
    global_quota: int = 6,
    parallel: Optional[ParallelConfig] = None,
) -> List[SpectrumResult]:
    """Figure 11: M / X / P / G at the Table 2 sample points."""
    results = []
    for point in points:
        factory = partial(table2_workload, point, window_base=window_base)
        spectrum = plans.plan_spectrum(
            factory, arrivals, global_quota=global_quota, parallel=parallel
        )
        results.append(
            SpectrumResult(
                point=point,
                rates={k: r.throughput for k, r in spectrum.items()},
                detail={
                    "xjoin_tree": spectrum["X"].detail.get("tree"),
                    "P_caches": spectrum["P"].detail.get("used_caches"),
                    "G_caches": spectrum["G"].detail.get("used_caches"),
                },
            )
        )
    return results


@dataclass
class AdaptivitySeries:
    """Figure 12: throughput-over-time curves for three plans."""

    adaptive: List[SeriesPoint]
    static_rs_cache: List[SeriesPoint]   # T ⋈ (R ⋈ S)
    static_ts_cache: List[SeriesPoint]   # R ⋈ (T ⋈ S)
    burst_at_s_tuples: int


def figure12(
    total_arrivals: int = 60_000,
    burst_after_arrivals: int = 30_000,
    burst_factor: float = 20.0,
    sample_every_updates: int = 4_000,
    window: int = 96,
    reopt_interval_updates: int = 3_000,
    parallel: Optional[ParallelConfig] = None,
) -> AdaptivitySeries:
    """Figure 12: adaptivity to a 20× rate burst on ∆R.

    Plans compared, as in the paper: static ``T ⋈ (R ⋈ S)`` (an R⋈S cache
    in ∆T's pipeline), static ``R ⋈ (T ⋈ S)`` (a globally-consistent
    (T⋈S)⋉R cache in ∆R's pipeline), and full A-Caching.
    """

    factory = partial(
        fig12_workload,
        burst_after_arrivals,
        burst_factor=burst_factor,
        window=window,
    )

    def is_s_insert(update) -> bool:
        return update.relation == "S" and update.sign is Sign.INSERT

    if parallel is not None and parallel.active:
        # A time axis needs lockstep sampling, so the sharded variant is
        # always in-process regardless of the configured backend.
        def sharded_series(engine: EngineSpec) -> List[SeriesPoint]:
            return run_series_sharded(
                ExperimentSpec(
                    workload_factory=factory,
                    arrivals=total_arrivals,
                    engine=engine,
                ),
                parallel.shards,
                sample_every_updates,
                x_of=is_s_insert,
            )

        series_a = sharded_series(
            EngineConfig(
                orders=CHAIN_ORDERS, candidate_ids=(FORCED_CACHE,)
            ).engine_spec("static")
        )
        series_b = sharded_series(
            EngineConfig(
                orders=CHAIN_ORDERS, candidate_ids=("R:0-1g",)
            ).engine_spec("static")
        )
        config = plans._tuning(
            global_quota=6,
            reopt_interval_updates=reopt_interval_updates,
            profiling_phase_updates=500,
        )
        series_c = sharded_series(
            EngineConfig(tuning=config).engine_spec("adaptive")
        )
        return AdaptivitySeries(
            adaptive=series_c,
            static_rs_cache=series_a,
            static_ts_cache=series_b,
            burst_at_s_tuples=burst_after_arrivals // 7,
        )

    # Static plan A: R ⋈ S cache in ∆T's pipeline.
    workload_a = factory()
    plan_a = build_static_plan(
        workload_a,
        EngineConfig(orders=CHAIN_ORDERS, candidate_ids=(FORCED_CACHE,)),
    )
    series_a = run_with_series(
        plan_a,
        workload_a.updates(total_arrivals),
        sample_every_updates,
        x_of=is_s_insert,
    )

    # Static plan B: (S ⋈ T) ⋉ R cache in ∆R's pipeline, under the same
    # orderings — ∆S joins R first, so the {S, T} segment violates the
    # prefix invariant and the candidate is globally consistent, exactly
    # the cache the paper's adaptive algorithm converges to.
    workload_b = factory()
    plan_b = build_static_plan(
        workload_b,
        EngineConfig(orders=CHAIN_ORDERS, candidate_ids=("R:0-1g",)),
    )
    series_b = run_with_series(
        plan_b,
        workload_b.updates(total_arrivals),
        sample_every_updates,
        x_of=is_s_insert,
    )

    # Full A-Caching.
    workload_c = factory()
    config = plans._tuning(
        global_quota=6,
        reopt_interval_updates=reopt_interval_updates,
        profiling_phase_updates=500,
    )
    engine = build_adaptive_engine(workload_c, EngineConfig(tuning=config))
    series_c = run_with_series(
        engine,
        workload_c.updates(total_arrivals),
        sample_every_updates,
        x_of=is_s_insert,
        used_caches=engine.used_caches,
    )

    # x-axis conversion: before the burst ∆S receives 1/7 of arrivals
    # (rates R:S:T = 1:1:5).
    return AdaptivitySeries(
        adaptive=series_c,
        static_rs_cache=series_a,
        static_ts_cache=series_b,
        burst_at_s_tuples=burst_after_arrivals // 7,
    )


@dataclass
class MemoryPoint:
    """Figure 13: plan rates at one memory budget."""

    memory_kb: float
    mjoin_rate: float
    acaching_rate: float
    xjoin_rate: Optional[float]      # None where the XJoin is infeasible
    acaching_memory_bytes: int


def figure13(
    budgets_kb: Sequence[float] = (0.5, 2, 8, 16, 32, 48, 64, 96, 128),
    arrivals: int = 20_000,
    window_base: Optional[int] = None,
    point: str = "D8",
    global_quota: int = 0,
    parallel: Optional[ParallelConfig] = None,
) -> List[MemoryPoint]:
    """Figure 13: adaptivity to the memory available for subresults."""

    factory = partial(table2_workload, point, window_base=window_base)

    mjoin = plans.run_mjoin(factory, arrivals, parallel=parallel)
    xjoin = plans.best_xjoin(factory, arrivals, parallel=parallel)
    xjoin_needs = xjoin.memory_peak_bytes
    rows = []
    for budget_kb in budgets_kb:
        budget = int(budget_kb * 1024)
        cached = plans.run_acaching(
            factory,
            arrivals,
            global_quota=global_quota,
            memory_budget=budget,
            label=f"A-Caching@{budget_kb}KB",
            stat_window=5,
            reopt_interval_updates=4000,
            parallel=parallel,
        )
        rows.append(
            MemoryPoint(
                memory_kb=budget_kb,
                mjoin_rate=mjoin.throughput,
                acaching_rate=cached.throughput,
                xjoin_rate=(
                    xjoin.throughput if budget >= xjoin_needs else None
                ),
                acaching_memory_bytes=cached.memory_peak_bytes,
            )
        )
    return rows


def table2() -> str:
    """Render Table 2 itself (the experiment parameters)."""
    lines = [
        "Table 2: relative stream arrival rates and pairwise join "
        "selectivities (D1-D8)",
        f"{'point':>6} | {'rates R1..R4':>16} | pairwise selectivities",
    ]
    for point in sorted(TABLE2_POINTS):
        config = TABLE2_POINTS[point]
        sels = ", ".join(
            f"{a}-{b}:{s}" for (a, b), s in config["selectivities"].items()
        )
        lines.append(f"{point:>6} | {config['rates']!s:>16} | {sels}")
    return "\n".join(lines)
