"""The durability-overhead benchmark (``repro bench --recovery``).

Measures the full adaptive A-Caching engine on the same 6-way star
workload as the parallel and batching benches, once without journaling
(the baseline) and once per requested WAL fsync batch size with the
:class:`~repro.recovery.manager.Recorder` riding along at the default
checkpoint interval. The deltas are identical either way — recording
never touches engine behavior — so the benchmark isolates the *modeled*
cost of durability: ``wal_append`` per update, ``wal_fsync`` per fsync
batch, and ``checkpoint_base + checkpoint_row * rows`` per checkpoint,
all in deterministic virtual time.

Writes ``BENCH_recovery.json``, the baseline CI asserts on: at the
default interval the overhead must stay at or under 10% of baseline
throughput (``MAX_OVERHEAD_FRACTION``).
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.api import Session
from repro.errors import ConfigError
from repro.parallel.bench import bench_engine_config
from repro.recovery.manager import Recorder, RecoveryConfig
from repro.streams.workloads import fig9_workload

RECOVERY_SCHEMA_VERSION = 1
RECOVERY_DEFAULT_OUT = "BENCH_recovery.json"
RECOVERY_DEFAULT_ARRIVALS = 8_000
DEFAULT_FSYNC_EVERY = (64,)
RECOVERY_BENCH_RELATIONS = 6
RECOVERY_BENCH_WINDOW = 48
DEFAULT_CHECKPOINT_INTERVAL = 1000

#: The acceptance criterion the committed baseline must meet.
MAX_OVERHEAD_FRACTION = 0.10


@dataclass
class RecoveryPoint:
    """One fsync batch size's measurement."""

    fsync_every: int
    modeled_throughput: float     # updates/sec, virtual time
    us_per_update: float
    overhead_fraction: float      # (recorded - baseline) / baseline cost
    wal_records: int
    wal_fsyncs: int
    checkpoints: int
    outputs_emitted: int          # must match the baseline's


@dataclass
class RecoveryBenchReport:
    """Baseline vs journaled throughput."""

    workload: str
    arrivals: int
    checkpoint_interval: int
    cache_mode: str
    baseline_throughput: float
    baseline_us_per_update: float
    baseline_outputs: int
    points: List[RecoveryPoint] = field(default_factory=list)


def _drive(session: Session, arrivals: int, recorder=None) -> int:
    """Run per-update, optionally journaled; returns outputs emitted."""
    outputs = 0
    plan = session.plan
    for update in session.workload.updates(arrivals):
        if recorder is not None:
            recorder.log(update)
        outputs += len(plan.process(update))
        if recorder is not None:
            recorder.mark_processed()
            recorder.maybe_checkpoint(update.seq)
    if recorder is not None:
        recorder.close()
    return outputs


def run_recovery_bench(
    fsync_every_values: Sequence[int] = DEFAULT_FSYNC_EVERY,
    arrivals: int = RECOVERY_DEFAULT_ARRIVALS,
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    cache_mode: str = "snapshot",
) -> RecoveryBenchReport:
    """Measure durability overhead at each WAL fsync batch size."""
    if arrivals <= 0:
        raise ConfigError(f"arrivals must be positive, got {arrivals}")
    if not fsync_every_values:
        raise ConfigError("need at least one fsync_every value to benchmark")
    for value in fsync_every_values:
        if value < 1:
            raise ConfigError(f"fsync_every must be >= 1, got {value}")

    def fresh_session() -> Session:
        return Session.adaptive(
            fig9_workload(
                RECOVERY_BENCH_RELATIONS, window=RECOVERY_BENCH_WINDOW
            ),
            bench_engine_config(),
        )

    baseline = fresh_session()
    baseline_outputs = _drive(baseline, arrivals)
    ctx = baseline.ctx
    baseline_us = ctx.clock.now_us / max(1, ctx.metrics.updates_processed)

    report = RecoveryBenchReport(
        workload=baseline.workload.name,
        arrivals=arrivals,
        checkpoint_interval=checkpoint_interval,
        cache_mode=cache_mode,
        baseline_throughput=baseline.throughput(),
        baseline_us_per_update=baseline_us,
        baseline_outputs=baseline_outputs,
    )
    for fsync_every in fsync_every_values:
        directory = tempfile.mkdtemp(prefix="repro-bench-recovery-")
        try:
            session = fresh_session()
            recorder = Recorder(
                session.plan,
                RecoveryConfig(
                    wal_dir=directory,
                    checkpoint_interval=checkpoint_interval,
                    fsync_every=fsync_every,
                    cache_mode=cache_mode,
                ),
            )
            outputs = _drive(session, arrivals, recorder)
            ctx = session.ctx
            us = ctx.clock.now_us / max(1, ctx.metrics.updates_processed)
            report.points.append(
                RecoveryPoint(
                    fsync_every=fsync_every,
                    modeled_throughput=session.throughput(),
                    us_per_update=us,
                    overhead_fraction=(us - baseline_us)
                    / max(1e-12, baseline_us),
                    wal_records=recorder.wal.appended,
                    wal_fsyncs=recorder.wal.fsyncs,
                    checkpoints=recorder.checkpoints,
                    outputs_emitted=outputs,
                )
            )
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    return report


def recovery_bench_to_json(report: RecoveryBenchReport) -> str:
    """Serialize a recovery-bench report (schema in benchmarks/README.md)."""
    payload = {
        "kind": "recovery_bench",
        "schema_version": RECOVERY_SCHEMA_VERSION,
        "workload": report.workload,
        "arrivals": report.arrivals,
        "checkpoint_interval": report.checkpoint_interval,
        "cache_mode": report.cache_mode,
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
        "baseline": {
            "modeled_throughput": round(report.baseline_throughput, 1),
            "us_per_update": round(report.baseline_us_per_update, 3),
            "outputs_emitted": report.baseline_outputs,
        },
        "points": [
            {
                "fsync_every": p.fsync_every,
                "modeled_throughput": round(p.modeled_throughput, 1),
                "us_per_update": round(p.us_per_update, 3),
                "overhead_fraction": round(p.overhead_fraction, 4),
                "wal_records": p.wal_records,
                "wal_fsyncs": p.wal_fsyncs,
                "checkpoints": p.checkpoints,
                "outputs_emitted": p.outputs_emitted,
            }
            for p in report.points
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def format_recovery_bench_report(report: RecoveryBenchReport) -> str:
    """Human-readable durability-overhead table for the CLI."""
    lines = [
        f"recovery overhead bench — {report.workload}, "
        f"{report.arrivals} arrivals, checkpoint every "
        f"{report.checkpoint_interval} updates ({report.cache_mode})",
        "=" * 72,
        f"baseline: {report.baseline_throughput:>10,.0f} updates/sec "
        f"({report.baseline_us_per_update:.2f} us/update)",
        f"{'fsync':>6} | {'modeled rate':>12} | {'us/update':>9} | "
        f"{'overhead':>8} | {'fsyncs':>7} | {'ckpts':>6} | {'outputs':>8}",
    ]
    for p in report.points:
        lines.append(
            f"{p.fsync_every:>6} | {p.modeled_throughput:>12,.0f} | "
            f"{p.us_per_update:>9.2f} | {p.overhead_fraction:>7.1%} | "
            f"{p.wal_fsyncs:>7} | {p.checkpoints:>6} | "
            f"{p.outputs_emitted:>8}"
        )
    verdict = all(
        p.overhead_fraction <= MAX_OVERHEAD_FRACTION for p in report.points
    )
    lines.append(
        f"criterion: overhead <= {MAX_OVERHEAD_FRACTION:.0%} — "
        f"{'PASS' if verdict else 'FAIL'}"
    )
    return "\n".join(lines)
