"""The shared-vs-isolated multi-query benchmark (``repro bench --multi``).

Hosts N identical star queries two ways over the identical update
stream and compares memory and cache effectiveness at a fixed *global*
memory quota:

- **shared** — one :class:`~repro.multi.engine.MultiQueryEngine`: each
  stream ingested once, caches with matching key/predicate signatures
  deduplicated into inter-query shared stores, the whole quota
  arbitrated globally.
- **isolated** — N independent adaptive engines, each with its own
  window copies and caches and a 1/N slice of the same quota.

Both configurations emit byte-identical per-query deltas (the
equivalence suite proves this; the bench re-checks ``outputs_emitted``
per query as a cheap tripwire), so the comparison isolates exactly what
the paper's Section 4.4 sharing argument predicts: the shared
configuration holds *strictly fewer* cache bytes (each shared store
materialized once) at an equal-or-better aggregate hit rate (one
query's misses warm the store its siblings probe). CI asserts both.

All numbers are virtual time (the deterministic cost model), so the
report is hardware-independent and ``BENCH_multi.json`` is committable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.api import EngineConfig, Session
from repro.core.acaching import ACachingConfig
from repro.core.reoptimizer import ReoptimizerConfig
from repro.errors import ConfigError
from repro.multi.engine import MultiQueryEngine
from repro.streams.workloads import fig9_workload

MULTI_SCHEMA_VERSION = 1
MULTI_DEFAULT_OUT = "BENCH_multi.json"
MULTI_DEFAULT_QUERIES = 3
MULTI_DEFAULT_ARRIVALS = 6_000
MULTI_BENCH_RELATIONS = 3
MULTI_BENCH_WINDOW = 24
MULTI_BENCH_BUDGET = 1 << 20          # 1 MiB global quota
# The adaptive defaults pace re-optimization on virtual *seconds*, which
# short deterministic runs never reach; the repo's experiments pace on
# update counts instead so caches actually attach.
_REOPT_INTERVAL_UPDATES = 1_200
_PROFILING_PHASE_UPDATES = 200


@dataclass
class MultiConfigPoint:
    """One hosting configuration's measurement."""

    mode: str                     # "shared" | "isolated"
    queries: int
    cache_bytes: int              # distinct physical store bytes
    window_bytes: int             # relation window bytes (shared: one copy)
    aggregate_hit_rate: float
    modeled_cost_us: float        # summed virtual engine time
    shared_store_count: int       # stores with > 1 using query
    outputs_per_query: Dict[str, int] = field(default_factory=dict)


@dataclass
class MultiBenchReport:
    """The shared-vs-isolated comparison at one global quota."""

    workload: str
    queries: int
    arrivals: int
    budget_bytes: int
    shared: MultiConfigPoint = None
    isolated: MultiConfigPoint = None

    @property
    def cache_bytes_saved(self) -> int:
        return self.isolated.cache_bytes - self.shared.cache_bytes

    @property
    def hit_rate_delta(self) -> float:
        return (
            self.shared.aggregate_hit_rate
            - self.isolated.aggregate_hit_rate
        )


def _tuned_config(budget_bytes: int) -> EngineConfig:
    return EngineConfig(
        tuning=ACachingConfig(
            reoptimizer=ReoptimizerConfig(
                reopt_interval_updates=_REOPT_INTERVAL_UPDATES,
                profiling_phase_updates=_PROFILING_PHASE_UPDATES,
                memory_budget_bytes=budget_bytes,
            )
        )
    )


def _query_ids(queries: int) -> List[str]:
    return [f"q{i + 1}" for i in range(queries)]


def run_multi_bench(
    queries: int = MULTI_DEFAULT_QUERIES,
    arrivals: int = MULTI_DEFAULT_ARRIVALS,
    budget_bytes: int = MULTI_BENCH_BUDGET,
) -> MultiBenchReport:
    """Measure shared vs isolated hosting of ``queries`` identical stars.

    The isolated baseline splits the global quota evenly; the shared
    engine arbitrates the whole quota across all tenants. Both process
    the same deterministic update stream.
    """
    if queries < 2:
        raise ConfigError(f"multi bench needs >= 2 queries, got {queries}")
    if arrivals <= 0:
        raise ConfigError(f"arrivals must be positive, got {arrivals}")
    if budget_bytes < queries:
        raise ConfigError(
            f"budget_bytes must cover every tenant, got {budget_bytes}"
        )

    stream = fig9_workload(MULTI_BENCH_RELATIONS, window=MULTI_BENCH_WINDOW)
    updates = list(stream.updates(arrivals))
    ids = _query_ids(queries)

    # -- shared: one engine, one quota, one copy of each window --------
    engine = MultiQueryEngine(budget_bytes=budget_bytes)
    for query_id in ids:
        engine.register(
            query_id,
            fig9_workload(MULTI_BENCH_RELATIONS, window=MULTI_BENCH_WINDOW),
            _tuned_config(budget_bytes),
        )
    shared_deltas = engine.run(updates)
    snapshot = engine.snapshot()
    shared = MultiConfigPoint(
        mode="shared",
        queries=queries,
        cache_bytes=snapshot["cache_bytes"],
        window_bytes=snapshot["window_bytes"],
        aggregate_hit_rate=engine.aggregate_hit_rate(),
        modeled_cost_us=engine.modeled_cost_us(),
        shared_store_count=snapshot["shared_stores"],
        outputs_per_query={
            query_id: len(shared_deltas[query_id]) for query_id in ids
        },
    )

    # -- isolated: N engines, each a 1/N quota slice and own windows ---
    slice_bytes = budget_bytes // queries
    iso_cache = iso_windows = 0
    iso_probes = iso_hits = 0
    iso_cost = 0.0
    iso_outputs: Dict[str, int] = {}
    for query_id in ids:
        session = Session.adaptive(
            fig9_workload(MULTI_BENCH_RELATIONS, window=MULTI_BENCH_WINDOW),
            _tuned_config(slice_bytes),
        )
        deltas = session.run(updates=iter(updates))
        plan = session.plan
        iso_outputs[query_id] = len(deltas)
        iso_cache += plan.memory_in_use()
        iso_windows += sum(
            relation.memory_bytes
            for relation in plan.executor.relations.values()
        )
        iso_probes += plan.ctx.metrics.cache_probes
        iso_hits += plan.ctx.metrics.cache_hits
        iso_cost += plan.ctx.clock.now_us
    isolated = MultiConfigPoint(
        mode="isolated",
        queries=queries,
        cache_bytes=iso_cache,
        window_bytes=iso_windows,
        aggregate_hit_rate=iso_hits / iso_probes if iso_probes else 0.0,
        modeled_cost_us=iso_cost,
        shared_store_count=0,
        outputs_per_query=iso_outputs,
    )

    return MultiBenchReport(
        workload=stream.name,
        queries=queries,
        arrivals=arrivals,
        budget_bytes=budget_bytes,
        shared=shared,
        isolated=isolated,
    )


def _point_payload(point: MultiConfigPoint) -> dict:
    return {
        "mode": point.mode,
        "queries": point.queries,
        "cache_bytes": point.cache_bytes,
        "window_bytes": point.window_bytes,
        "aggregate_hit_rate": round(point.aggregate_hit_rate, 4),
        "modeled_cost_us": round(point.modeled_cost_us, 1),
        "shared_store_count": point.shared_store_count,
        "outputs_per_query": dict(sorted(point.outputs_per_query.items())),
    }


def multi_bench_to_json(report: MultiBenchReport) -> str:
    """Serialize a multi-bench report (schema in benchmarks/README.md)."""
    payload = {
        "kind": "multi_bench",
        "schema_version": MULTI_SCHEMA_VERSION,
        "workload": report.workload,
        "queries": report.queries,
        "arrivals": report.arrivals,
        "budget_bytes": report.budget_bytes,
        "shared": _point_payload(report.shared),
        "isolated": _point_payload(report.isolated),
        "cache_bytes_saved": report.cache_bytes_saved,
        "hit_rate_delta": round(report.hit_rate_delta, 4),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def format_multi_bench_report(report: MultiBenchReport) -> str:
    """Human-readable shared-vs-isolated table for the CLI."""
    lines = [
        f"multi-query bench — {report.queries}x {report.workload}, "
        f"{report.arrivals} arrivals, "
        f"{report.budget_bytes} bytes global quota",
        "=" * 72,
        f"{'mode':>9} | {'cache bytes':>11} | {'window bytes':>12} | "
        f"{'hit rate':>8} | {'shared stores':>13}",
    ]
    for point in (report.shared, report.isolated):
        lines.append(
            f"{point.mode:>9} | {point.cache_bytes:>11,} | "
            f"{point.window_bytes:>12,} | "
            f"{point.aggregate_hit_rate:>8.3f} | "
            f"{point.shared_store_count:>13}"
        )
    lines.append(
        f"shared saves {report.cache_bytes_saved:,} cache bytes at "
        f"{report.hit_rate_delta:+.3f} aggregate hit rate"
    )
    return "\n".join(lines)
