"""The wall-clock benchmark + obs overhead gate (``repro bench --wall``).

Every other BENCH baseline reports *modeled* (virtual-clock) numbers;
this one measures real time: serial vs micro-batched vs sharded wall
throughput on the 6-way bench workload, a span-attributed hotspot table
from one profiled run, and the span profiler's own overhead —

* ``disabled`` — the cost of the ``if prof.enabled:`` guards an
  unprofiled run pays, computed as (measured guard-pair ns) × (crossings
  an enabled run records) over the serial baseline wall time. This is
  the ≤3% budget CI hard-gates on: it is a property of the code, stable
  across runner load.
* ``enabled`` — the full profiler's wall cost relative to the baseline.
  Reported for information; not gated (profiling is opt-in).

``BENCH_wall.json`` commits the numbers together with the tolerances
``benchmarks/check_wall_regression.py`` applies; wall-throughput drift
is gated warn-only (shared CI runners are noisy), the overhead budget
is not.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field, replace
from typing import Dict, List

from repro.errors import ParallelError
from repro.obs.profile import (
    ProfileSnapshot,
    disabled_overhead_fraction,
    noop_overhead_ns,
)
from repro.parallel.bench import bench_spec
from repro.parallel.engine import ParallelConfig, ParallelEngine

WALL_SCHEMA_VERSION = 1
WALL_DEFAULT_OUT = "BENCH_wall.json"
WALL_DEFAULT_ARRIVALS = 6_000
WALL_DEFAULT_REPEATS = 3
WALL_DEFAULT_SHARDS = 4
WALL_DEFAULT_BATCH = 64
HOTSPOT_ROWS = 10

# Committed alongside the measurements; the regression gate reads them
# from the baseline file, so tightening the budget is a one-line diff.
WALL_TOLERANCES: Dict[str, float] = {
    # Hard gate: disabled-profiler guard overhead must stay under 3%.
    "disabled_overhead_max": 0.03,
    # Warn-only gate: relative wall-seconds drift per mode vs baseline.
    "wall_rel_tol": 0.60,
}


@dataclass
class WallPoint:
    """One execution mode's wall measurement."""

    mode: str                      # serial | batched | sharded
    shards: int
    batch_size: int
    backend: str
    wall_seconds: float            # median over repeats
    wall_seconds_all: List[float]
    throughput: float              # source updates per wall second
    source_updates: int


@dataclass
class WallReport:
    """The full wall benchmark: modes + hotspots + overhead."""

    workload: str
    arrivals: int
    repeats: int
    points: List[WallPoint] = field(default_factory=list)
    overhead: Dict[str, float] = field(default_factory=dict)
    hotspots: List[dict] = field(default_factory=list)
    tolerances: Dict[str, float] = field(default_factory=dict)


def _measure(spec, parallel: ParallelConfig, repeats: int):
    """Median wall seconds (plus all samples) for one mode."""
    walls: List[float] = []
    last = None
    for _ in range(repeats):
        last = ParallelEngine(parallel).run(spec)
        walls.append(last.wall_seconds)
    return walls, last


def hotspot_table(snapshot: ProfileSnapshot, rows: int = HOTSPOT_ROWS):
    """Top span names by self wall time, with dual-clock percentiles."""
    table = []
    for aggregate in sorted(
        snapshot.aggregates().values(),
        key=lambda a: a.self_ns,
        reverse=True,
    )[:rows]:
        table.append(
            {
                "span": aggregate.name,
                "count": aggregate.count,
                "self_ms": aggregate.self_ns / 1e6,
                "inclusive_ms": aggregate.wall_ns / 1e6,
                "p50_us": aggregate.quantile_ns(0.50) / 1e3,
                "p95_us": aggregate.quantile_ns(0.95) / 1e3,
                "p99_us": aggregate.quantile_ns(0.99) / 1e3,
                "virtual_ms": aggregate.virtual_us / 1e3,
            }
        )
    return table


def run_wall_bench(
    arrivals: int = WALL_DEFAULT_ARRIVALS,
    repeats: int = WALL_DEFAULT_REPEATS,
    shards: int = WALL_DEFAULT_SHARDS,
    batch_size: int = WALL_DEFAULT_BATCH,
    backend: str = "process",
) -> WallReport:
    """Measure serial vs batched vs sharded wall time + obs overhead."""
    if repeats < 1:
        raise ParallelError(f"repeats must be >= 1, got {repeats}")
    base = bench_spec(arrivals)
    report = WallReport(
        workload="fig9-6way(window=48)",
        arrivals=arrivals,
        repeats=repeats,
        tolerances=dict(WALL_TOLERANCES),
    )

    serial_walls, serial_run = _measure(
        base, ParallelConfig(1, "serial"), repeats
    )
    baseline = statistics.median(serial_walls)
    report.points.append(
        WallPoint(
            mode="serial",
            shards=1,
            batch_size=1,
            backend="serial",
            wall_seconds=baseline,
            wall_seconds_all=serial_walls,
            throughput=serial_run.source_updates / baseline,
            source_updates=serial_run.source_updates,
        )
    )

    batched_walls, batched_run = _measure(
        replace(base, batch_size=batch_size),
        ParallelConfig(1, "serial"),
        repeats,
    )
    batched_wall = statistics.median(batched_walls)
    report.points.append(
        WallPoint(
            mode="batched",
            shards=1,
            batch_size=batch_size,
            backend="serial",
            wall_seconds=batched_wall,
            wall_seconds_all=batched_walls,
            throughput=batched_run.source_updates / batched_wall,
            source_updates=batched_run.source_updates,
        )
    )

    sharded_walls, sharded_run = _measure(
        base, ParallelConfig(shards, backend), repeats
    )
    sharded_wall = statistics.median(sharded_walls)
    report.points.append(
        WallPoint(
            mode="sharded",
            shards=shards,
            batch_size=1,
            backend=backend,
            wall_seconds=sharded_wall,
            wall_seconds_all=sharded_walls,
            throughput=sharded_run.source_updates / sharded_wall,
            source_updates=sharded_run.source_updates,
        )
    )

    # One profiled serial run: hotspots + the crossing count the
    # disabled-overhead model needs (guard sites fire identically
    # whether or not the profiler records).
    profiled_walls, profiled_run = _measure(
        replace(base, profile=True), ParallelConfig(1, "serial"), 1
    )
    telemetry = profiled_run.merged_telemetry()
    snapshot = telemetry.profile
    if snapshot is None:
        raise ParallelError("profiled bench run produced no span snapshot")
    report.hotspots = hotspot_table(snapshot)
    pair_ns = noop_overhead_ns()
    report.overhead = {
        "baseline_wall_seconds": baseline,
        "enabled_wall_seconds": profiled_walls[0],
        "enabled_overhead_fraction": profiled_walls[0] / baseline - 1.0,
        "span_crossings": snapshot.crossings,
        "noop_pair_ns": pair_ns,
        "disabled_overhead_fraction": disabled_overhead_fraction(
            snapshot.crossings, baseline, per_pair_ns=pair_ns
        ),
    }
    return report


def format_wall_report(report: WallReport) -> str:
    """Human-readable wall benchmark summary."""
    lines = [
        f"wall-clock benchmark — {report.workload}, "
        f"{report.arrivals} arrivals, median of {report.repeats}",
        f"{'mode':<10} | {'config':<16} | {'wall s':>8} | {'upd/s':>10}",
    ]
    for point in report.points:
        config = (
            f"shards={point.shards}"
            if point.mode == "sharded"
            else f"batch={point.batch_size}"
        )
        if point.mode == "sharded":
            config += f" ({point.backend})"
        lines.append(
            f"{point.mode:<10} | {config:<16} | "
            f"{point.wall_seconds:>8.3f} | {point.throughput:>10,.0f}"
        )
    overhead = report.overhead
    lines.append(
        f"profiler overhead: disabled "
        f"{overhead['disabled_overhead_fraction']:.3%} "
        f"({overhead['span_crossings']:,} guard pairs × "
        f"{overhead['noop_pair_ns']:.0f} ns), enabled "
        f"{overhead['enabled_overhead_fraction']:+.1%}"
    )
    lines.append(
        f"{'span':<24} | {'count':>7} | {'self ms':>8} | "
        f"{'p50 us':>7} | {'p95 us':>8} | {'virt ms':>8}"
    )
    for row in report.hotspots:
        lines.append(
            f"{row['span']:<24} | {row['count']:>7,} | "
            f"{row['self_ms']:>8.1f} | {row['p50_us']:>7.1f} | "
            f"{row['p95_us']:>8.1f} | {row['virtual_ms']:>8.1f}"
        )
    return "\n".join(lines)


def wall_to_json(report: WallReport) -> str:
    """The committed BENCH_wall.json payload."""
    return json.dumps(
        {
            "schema_version": WALL_SCHEMA_VERSION,
            "benchmark": "wall",
            "workload": report.workload,
            "arrivals": report.arrivals,
            "repeats": report.repeats,
            "points": [
                {
                    "mode": p.mode,
                    "shards": p.shards,
                    "batch_size": p.batch_size,
                    "backend": p.backend,
                    "wall_seconds": p.wall_seconds,
                    "wall_seconds_all": p.wall_seconds_all,
                    "throughput": p.throughput,
                    "source_updates": p.source_updates,
                }
                for p in report.points
            ],
            "overhead": report.overhead,
            "hotspots": report.hotspots,
            "tolerances": report.tolerances,
        },
        indent=2,
        sort_keys=True,
    ) + "\n"
