"""The service-layer benchmark (``repro bench --service``).

Unlike the engine benches, which run in deterministic virtual time, this
one measures the real thing: a :class:`~repro.service.server.
ServiceThread` on a loopback socket, a client pushing update batches over
HTTP, and a WebSocket subscriber timestamping every result delta. Three
scenarios, one report:

* **clean** — a sustainable load; measures sustained updates/sec at the
  socket and the p50/p99 ingest→delta latency seen by the subscriber;
* **overload** — offered load far above the per-tenant admission rate;
  measures how many batches the token bucket turned away (429s *before*
  any queue overflow) and asserts that every *acknowledged* update was
  processed — overload sheds offered work, never accepted work;
* **kill_recover** — ingest, ``kill()`` mid-stream (journals truncated
  to the last fsync, no goodbyes), restart from the same ``wal_root``;
  measures recovery wall time and asserts the recovered delta log is
  byte-identical to the pre-kill log over every acknowledged update.

Writes ``BENCH_service.json``; the committed baseline is what the CI
service-smoke job and the README quote.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.config import ServiceConfig
from repro.service.server import ServiceThread

SERVICE_SCHEMA_VERSION = 1
SERVICE_DEFAULT_OUT = "BENCH_service.json"
SERVICE_DEFAULT_BATCHES = 150
SERVICE_BATCH_ARRIVALS = 9

_SPEC = {
    "kind": "chain",
    "params": {"window_r": 32, "window_s": 32, "window_t": 32},
}


@dataclass
class ScenarioResult:
    """One scenario's measurements."""

    name: str
    batches_sent: int
    batches_acked: int
    batches_rejected: int            # 429/503 before queue overflow
    updates_acked: int
    wall_seconds: float
    updates_per_second: float        # acked updates / wall
    delta_latency_p50_ms: Optional[float] = None
    delta_latency_p99_ms: Optional[float] = None
    acked_update_loss: int = 0       # MUST be 0
    extra: Dict[str, object] = field(default_factory=dict)


@dataclass
class ServiceBenchReport:
    batches: int
    batch_arrivals: int
    scenarios: List[ScenarioResult] = field(default_factory=list)


def _arrivals(value: int, count: int) -> List[tuple]:
    """``count`` arrivals in matching R/S/T triples, so joins produce."""
    out = []
    for i in range(count):
        v = value + i // 3
        relation = ("R", "S", "T")[i % 3]
        row = {"R": (v,), "S": (v, v), "T": (v,)}[relation]
        out.append((relation, row))
    return out


def _percentile(samples: List[float], fraction: float) -> Optional[float]:
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


class _LatencySubscriber:
    """Background WS reader mapping delta seq -> arrival wall time."""

    def __init__(self, client: ServiceClient, query: str):
        self.arrival_s: Dict[int, float] = {}
        self._sub = client.subscribe(query)
        self._thread = threading.Thread(target=self._reader, daemon=True)
        self._thread.start()

    def _reader(self) -> None:
        for frame in self._sub:
            if frame.get("type") != "deltas":
                continue
            now = time.monotonic()
            for entry in frame.get("entries", ()):
                self.arrival_s.setdefault(entry["seq"], now)

    def close(self) -> None:
        self._sub.close()
        self._thread.join(timeout=5.0)


def _wait_processed(client: ServiceClient, query: str,
                    timeout_s: float = 60.0) -> dict:
    deadline = time.monotonic() + timeout_s
    while True:
        status = client.status(query)
        if status["processed_seq"] >= status["acked_seq"]:
            return status
        if time.monotonic() > deadline:
            return status
        time.sleep(0.05)


def _run_clean(batches: int, batch_arrivals: int,
               wal_root: str) -> ScenarioResult:
    thread = ServiceThread(ServiceConfig(wal_root=wal_root))
    url = thread.start()
    try:
        client = ServiceClient(url)
        client.register("bench", _SPEC)
        subscriber = _LatencySubscriber(client, "bench")
        send_s: Dict[int, float] = {}   # seq -> batch-send wall time
        acked = updates = 0
        started = time.monotonic()
        value = 0
        for _ in range(batches):
            sent_at = time.monotonic()
            status, payload = client.ingest(
                "bench", _arrivals(value, batch_arrivals)
            )
            value += batch_arrivals
            if status == 202:
                acked += 1
                updates += payload["updates"]
                for seq in range(payload["seq_first"],
                                 payload["seq_last"] + 1):
                    send_s[seq] = sent_at
        final = _wait_processed(client, "bench")
        wall = time.monotonic() - started
        time.sleep(0.3)  # let the last delta frames land
        subscriber.close()
        latencies_ms = [
            (subscriber.arrival_s[seq] - sent) * 1e3
            for seq, sent in send_s.items()
            if seq in subscriber.arrival_s
        ]
        loss = final["acked_seq"] - final["processed_seq"]
        client.drain()
        return ScenarioResult(
            name="clean",
            batches_sent=batches,
            batches_acked=acked,
            batches_rejected=client.throttled,
            updates_acked=updates,
            wall_seconds=round(wall, 4),
            updates_per_second=round(updates / wall, 1) if wall else 0.0,
            delta_latency_p50_ms=(
                round(_percentile(latencies_ms, 0.50), 3)
                if latencies_ms else None
            ),
            delta_latency_p99_ms=(
                round(_percentile(latencies_ms, 0.99), 3)
                if latencies_ms else None
            ),
            acked_update_loss=max(0, loss),
            extra={"deltas_timed": len(latencies_ms)},
        )
    finally:
        thread.stop()


def _run_overload(batches: int, batch_arrivals: int,
                  wal_root: str) -> ScenarioResult:
    # A tenant rate far below the offered load: the token bucket must
    # turn the excess away with 429s while the queue never overflows.
    config = ServiceConfig(
        wal_root=wal_root,
        tenant_rate=400.0,
        tenant_burst=200.0,
        queue_capacity_updates=2048,
    )
    thread = ServiceThread(config)
    url = thread.start()
    try:
        client = ServiceClient(url)
        client.register("bench", _SPEC)
        acked = rejected = updates = 0
        started = time.monotonic()
        value = 0
        for _ in range(batches):
            status, payload = client.ingest(
                "bench", _arrivals(value, batch_arrivals), retry=False
            )
            value += batch_arrivals
            if status == 202:
                acked += 1
                updates += payload["updates"]
            elif status in (429, 503):
                rejected += 1
        final = _wait_processed(client, "bench")
        wall = time.monotonic() - started
        loss = final["acked_seq"] - final["processed_seq"]
        host_status = client.status("bench")
        client.drain()
        return ScenarioResult(
            name="overload",
            batches_sent=batches,
            batches_acked=acked,
            batches_rejected=rejected,
            updates_acked=updates,
            wall_seconds=round(wall, 4),
            updates_per_second=round(updates / wall, 1) if wall else 0.0,
            acked_update_loss=max(0, loss),
            extra={
                "admission": host_status["admission"],
                "tier_after": host_status["tier"],
            },
        )
    finally:
        thread.stop()


def _run_kill_recover(batches: int, batch_arrivals: int,
                      wal_root: str) -> ScenarioResult:
    config = ServiceConfig(wal_root=wal_root, checkpoint_interval=200)
    thread = ServiceThread(config)
    url = thread.start()
    client = ServiceClient(url)
    client.register("bench", _SPEC)
    acked = updates = 0
    value = 0
    started = time.monotonic()
    for _ in range(batches):
        status, payload = client.ingest(
            "bench", _arrivals(value, batch_arrivals)
        )
        value += batch_arrivals
        if status == 202:
            acked += 1
            updates += payload["updates"]
    pre = _wait_processed(client, "bench")
    acked_seq = pre["acked_seq"]
    before = {
        e["seq"]: e["deltas"]
        for e in client.results("bench", since_seq=-1, limit=100_000)["entries"]
        if e["seq"] <= acked_seq
    }
    thread.kill()

    recover_started = time.monotonic()
    thread2 = ServiceThread(ServiceConfig(wal_root=wal_root,
                                          checkpoint_interval=200))
    url2 = thread2.start()
    recover_wall = time.monotonic() - recover_started
    try:
        client2 = ServiceClient(url2)
        post = _wait_processed(client2, "bench")
        after = {
            e["seq"]: e["deltas"]
            for e in client2.results(
                "bench", since_seq=-1, limit=100_000
            )["entries"]
            if e["seq"] <= acked_seq
        }
        identical = before == after
        loss = acked_seq - post["processed_seq"]
        wall = time.monotonic() - started
        client2.drain()
        return ScenarioResult(
            name="kill_recover",
            batches_sent=batches,
            batches_acked=acked,
            batches_rejected=client.throttled,
            updates_acked=updates,
            wall_seconds=round(wall, 4),
            updates_per_second=round(updates / wall, 1) if wall else 0.0,
            acked_update_loss=max(0, loss),
            extra={
                "recovery_seconds": round(recover_wall, 4),
                "acked_deltas_byte_identical": identical,
                "acked_entries_compared": len(before),
                "replayed_updates": post["replayed_updates"],
                "resumed": post["resumed"],
            },
        )
    finally:
        thread2.stop()


def run_service_bench(
    batches: int = SERVICE_DEFAULT_BATCHES,
    batch_arrivals: int = SERVICE_BATCH_ARRIVALS,
) -> ServiceBenchReport:
    """Run all three scenarios in fresh temp journals."""
    if batches < 10:
        raise ConfigError(f"service bench batches must be >= 10, got {batches}")
    if batch_arrivals < 1:
        raise ConfigError(
            f"service bench batch_arrivals must be >= 1, got {batch_arrivals}"
        )
    report = ServiceBenchReport(batches=batches, batch_arrivals=batch_arrivals)
    root = tempfile.mkdtemp(prefix="repro-service-bench-")
    try:
        report.scenarios.append(
            _run_clean(batches, batch_arrivals, os.path.join(root, "clean"))
        )
        report.scenarios.append(
            _run_overload(
                batches, batch_arrivals, os.path.join(root, "overload")
            )
        )
        report.scenarios.append(
            _run_kill_recover(
                batches, batch_arrivals, os.path.join(root, "kill")
            )
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return report


def service_bench_to_json(report: ServiceBenchReport) -> str:
    payload = {
        "kind": "service_bench",
        "schema_version": SERVICE_SCHEMA_VERSION,
        "batches": report.batches,
        "batch_arrivals": report.batch_arrivals,
        "scenarios": [
            {
                "name": s.name,
                "batches_sent": s.batches_sent,
                "batches_acked": s.batches_acked,
                "batches_rejected": s.batches_rejected,
                "updates_acked": s.updates_acked,
                "wall_seconds": s.wall_seconds,
                "updates_per_second": s.updates_per_second,
                "delta_latency_p50_ms": s.delta_latency_p50_ms,
                "delta_latency_p99_ms": s.delta_latency_p99_ms,
                "acked_update_loss": s.acked_update_loss,
                **({"extra": s.extra} if s.extra else {}),
            }
            for s in report.scenarios
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def format_service_bench_report(report: ServiceBenchReport) -> str:
    lines = [
        f"service bench: {report.batches} batches x "
        f"{report.batch_arrivals} arrivals"
    ]
    for s in report.scenarios:
        lines.append(
            f"  {s.name:<13} acked {s.batches_acked}/{s.batches_sent} "
            f"(rejected {s.batches_rejected}), "
            f"{s.updates_per_second:,.0f} upd/s, "
            f"p99 delta "
            + (f"{s.delta_latency_p99_ms:.1f}ms"
               if s.delta_latency_p99_ms is not None else "n/a")
            + f", acked loss {s.acked_update_loss}"
        )
        if s.name == "kill_recover":
            lines.append(
                f"  {'':13} recovery {s.extra['recovery_seconds']}s, "
                f"byte-identical="
                f"{s.extra['acked_deltas_byte_identical']} over "
                f"{s.extra['acked_entries_compared']} entries"
            )
    return "\n".join(lines)
