"""The per-tuple vs micro-batched throughput benchmark (``repro bench``).

Measures the full adaptive A-Caching engine on the same 6-way star
workload as the parallel bench, once per requested micro-batch size, and
writes ``BENCH_batching.json`` — the batching analog of
``BENCH_parallel.json`` that future PRs diff against.

Batch size 1 is the per-update hot path; larger sizes share join probe
work across the batch via the per-batch probe memo (see
:class:`repro.operators.base.BatchProbeMemo`). Emitted deltas and final
window contents are identical at every batch size — only the modeled
cost changes — so the report also records ``outputs_emitted`` per point
as a cheap cross-check: any divergence there is a correctness bug, not a
tuning artifact.

All numbers are virtual time (the deterministic cost model), so the
speedups are hardware-independent and CI can assert on them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.api import Session
from repro.errors import ParallelError
from repro.parallel.bench import bench_engine_config
from repro.planner.enumeration import measured_run
from repro.streams.workloads import fig9_workload

BATCHING_SCHEMA_VERSION = 1
BATCHING_DEFAULT_OUT = "BENCH_batching.json"
BATCHING_DEFAULT_ARRIVALS = 8_000
DEFAULT_BATCH_SIZES = (1, 4, 16, 64)
BATCH_BENCH_RELATIONS = 6
BATCH_BENCH_WINDOW = 48
WARMUP_FRACTION = 0.4


@dataclass
class BatchPoint:
    """One batch size's measurement."""

    batch_size: int
    steady_throughput: float     # post-warmup updates/sec, virtual time
    modeled_throughput: float    # cumulative updates/sec, virtual time
    us_per_update: float         # cumulative virtual cost per update
    speedup: float               # steady_throughput over batch-1's
    updates_processed: int
    outputs_emitted: int         # must match across batch sizes
    hit_rate: float
    used_caches: List[str]


@dataclass
class BatchingReport:
    """The full per-tuple vs batched comparison."""

    workload: str
    arrivals: int
    warmup_fraction: float
    points: List[BatchPoint] = field(default_factory=list)


def run_batching_bench(
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    arrivals: int = BATCHING_DEFAULT_ARRIVALS,
) -> BatchingReport:
    """Measure the adaptive engine at each micro-batch size.

    Each point runs a fresh engine on a fresh workload instance over the
    identical update stream, steady-state measured exactly like the
    plan-spectrum experiments (warmup excluded, batch-boundary aligned).
    A batch size of 1 is always measured first (prepended when absent) —
    it is the speedup baseline.
    """
    if arrivals <= 0:
        raise ParallelError(f"arrivals must be positive, got {arrivals}")
    if not batch_sizes:
        raise ParallelError("need at least one batch size to benchmark")
    for size in batch_sizes:
        if size < 1:
            raise ParallelError(f"batch size must be >= 1, got {size}")
    sizes = list(dict.fromkeys(batch_sizes))
    if sizes[0] != 1:
        sizes = [1] + [s for s in sizes if s != 1]

    report = BatchingReport(
        workload="",
        arrivals=arrivals,
        warmup_fraction=WARMUP_FRACTION,
    )
    baseline_steady = None
    for size in sizes:
        workload = fig9_workload(
            BATCH_BENCH_RELATIONS, window=BATCH_BENCH_WINDOW
        )
        report.workload = workload.name
        session = Session.adaptive(workload, bench_engine_config(size))
        steady = measured_run(
            session,
            workload,
            arrivals,
            warmup_fraction=WARMUP_FRACTION,
            batch_size=size,
        )
        if baseline_steady is None:
            baseline_steady = steady
        ctx = session.ctx
        updates = ctx.metrics.updates_processed
        report.points.append(
            BatchPoint(
                batch_size=size,
                steady_throughput=steady,
                modeled_throughput=session.throughput(),
                us_per_update=ctx.clock.now_us / max(1, updates),
                speedup=steady / max(1e-12, baseline_steady),
                updates_processed=updates,
                outputs_emitted=ctx.metrics.outputs_emitted,
                hit_rate=ctx.metrics.hit_rate,
                used_caches=list(session.used_caches()),
            )
        )
    return report


def batching_to_json(report: BatchingReport) -> str:
    """Serialize a batching report (schema in benchmarks/README.md)."""
    payload = {
        "kind": "batching_bench",
        "schema_version": BATCHING_SCHEMA_VERSION,
        "workload": report.workload,
        "arrivals": report.arrivals,
        "warmup_fraction": report.warmup_fraction,
        "points": [
            {
                "batch_size": p.batch_size,
                "steady_throughput": round(p.steady_throughput, 1),
                "modeled_throughput": round(p.modeled_throughput, 1),
                "us_per_update": round(p.us_per_update, 3),
                "speedup": round(p.speedup, 3),
                "updates_processed": p.updates_processed,
                "outputs_emitted": p.outputs_emitted,
                "hit_rate": round(p.hit_rate, 4),
                "used_caches": p.used_caches,
            }
            for p in report.points
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def format_batching_report(report: BatchingReport) -> str:
    """Human-readable batching table for the CLI."""
    lines = [
        f"micro-batching bench — {report.workload}, "
        f"{report.arrivals} arrivals",
        "=" * 72,
        f"{'batch':>6} | {'steady rate':>12} | {'us/update':>9} | "
        f"{'speedup':>8} | {'outputs':>8} | {'hit rate':>8}",
    ]
    for p in report.points:
        lines.append(
            f"{p.batch_size:>6} | {p.steady_throughput:>12,.0f} | "
            f"{p.us_per_update:>9.2f} | {p.speedup:>7.2f}x | "
            f"{p.outputs_emitted:>8} | {p.hit_rate:>8.3f}"
        )
    return "\n".join(lines)
