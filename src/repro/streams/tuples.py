"""Tuples, schemas, and composite (joined) tuples.

The data model mirrors Section 3.1 of the paper: each relation ``Ri`` has a
flat schema of named attributes; base tuples are immutable rows; composite
tuples are the concatenation of one row per relation produced while an
update travels down an MJoin pipeline.

Rows carry a engine-assigned ``rid`` (row identity) so that the deletion of a
specific window tuple — as emitted by a sliding-window operator — removes
exactly that row even when attribute values repeat, and so that caches can
evict composites containing a deleted row in O(1) per composite.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import SchemaError


class Schema:
    """An ordered set of attribute names for one relation.

    >>> s = Schema("R", ("A", "B"))
    >>> s.index_of("B")
    1
    """

    __slots__ = ("relation", "attributes", "_positions")

    def __init__(self, relation: str, attributes: Iterable[str]):
        self.relation = relation
        self.attributes = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(
                f"duplicate attribute names in schema for {relation!r}: "
                f"{self.attributes}"
            )
        self._positions = {name: i for i, name in enumerate(self.attributes)}

    def index_of(self, attribute: str) -> int:
        """Return the position of ``attribute``, raising SchemaError if absent."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.relation!r} has no attribute {attribute!r}; "
                f"known attributes: {self.attributes}"
            ) from None

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._positions

    def __len__(self) -> int:
        return len(self.attributes)

    def __repr__(self) -> str:
        cols = ", ".join(self.attributes)
        return f"{self.relation}({cols})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            self.relation == other.relation
            and self.attributes == other.attributes
        )

    def __hash__(self) -> int:
        return hash((self.relation, self.attributes))


class Row:
    """One immutable base tuple with an identity.

    Equality and hashing are *by identity* (``rid``): two rows with equal
    values but different identities are distinct window entries, and the
    sliding-window operator deletes a specific one.
    """

    __slots__ = ("rid", "values")

    def __init__(self, rid: int, values: tuple):
        self.rid = rid
        self.values = values

    def __getitem__(self, position: int) -> Any:
        return self.values[position]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self.rid == other.rid

    def __hash__(self) -> int:
        return self.rid

    def __repr__(self) -> str:
        return f"Row#{self.rid}{self.values}"


class CompositeTuple:
    """A joined tuple: a mapping from relation name to one :class:`Row`.

    Composites are persistent in the functional sense — ``extended`` returns
    a new composite sharing the underlying mapping storage of the old one —
    because a single input row fans out into many composites inside a
    pipeline and copying dicts on every join step dominates otherwise.
    """

    __slots__ = ("_rows",)

    def __init__(self, rows: Mapping[str, Row]):
        self._rows = dict(rows)

    @classmethod
    def of(cls, relation: str, row: Row) -> "CompositeTuple":
        """Build a single-relation composite (pipeline entry point)."""
        return cls({relation: row})

    def extended(self, relation: str, row: Row) -> "CompositeTuple":
        """Return a new composite that also binds ``relation`` to ``row``."""
        rows = dict(self._rows)
        rows[relation] = row
        return CompositeTuple(rows)

    def row(self, relation: str) -> Row:
        """Return the row bound for ``relation`` (KeyError if unbound)."""
        return self._rows[relation]

    def value(self, relation: str, position: int) -> Any:
        """Return attribute ``position`` of the row bound for ``relation``."""
        return self._rows[relation].values[position]

    def relations(self) -> frozenset:
        """The set of relation names bound in this composite."""
        return frozenset(self._rows)

    def project(self, relations: Iterable[str]) -> "CompositeTuple":
        """Return a composite restricted to ``relations``."""
        return CompositeTuple({r: self._rows[r] for r in relations})

    def merge(self, other: "CompositeTuple") -> "CompositeTuple":
        """Concatenate two composites over disjoint relation sets."""
        rows = dict(self._rows)
        rows.update(other._rows)
        return CompositeTuple(rows)

    def identity(self, order: Iterable[str]) -> tuple:
        """A hashable identity: the rids of the bound rows, in ``order``."""
        return tuple(self._rows[r].rid for r in order)

    def __contains__(self, relation: str) -> bool:
        return relation in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[str]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompositeTuple):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(frozenset(self._rows.items()))

    def __repr__(self) -> str:
        parts = ", ".join(f"{r}={row!r}" for r, row in sorted(self._rows.items()))
        return f"Composite({parts})"


class RowFactory:
    """Allocates monotonically increasing row identities.

    One factory is shared by all streams of a query so rids are globally
    unique, which lets caches key composite identity on rid tuples alone.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 0):
        self._next = start

    def make(self, values: tuple) -> Row:
        """Allocate a row with the next identity."""
        row = Row(self._next, values)
        self._next += 1
        return row

    @property
    def allocated(self) -> int:
        """Number of rows allocated so far."""
        return self._next
