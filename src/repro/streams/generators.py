"""Synthetic append-only stream generators (Section 7.1).

The paper uses "a synthetic data generator to produce multiple append-only
streams with specified data characteristics and relative arrival rates".
Two value models cover all the experiments:

* :class:`SequentialValues` — values from a shared ordered domain, each
  repeated ``multiplicity`` times (the Figure 6-10 model: "join attributes
  draw values from the same domain in the same order; the multiplicity of
  these values is 1 in R and S and r in T").
* :class:`UniformValues` — values drawn uniformly from ``[offset,
  offset + domain)`` with a seeded PRNG (the Table 2 / Figure 11-13 model,
  where per-relation domain sizes realize target pairwise selectivities;
  see :func:`fit_domain_sizes`).
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import WorkloadError


class SequentialValues:
    """Shared-domain sequential values with per-stream multiplicity.

    With integer ``multiplicity`` m, each domain value is emitted m times
    in a row. Fractional multiplicity < 1 *skips* domain values (e.g.
    0.25 emits 0, 4, 8, …), which realizes average join selectivities
    below one against a multiplicity-1 partner stream. ``offset`` shifts
    the emitted domain, so disjoint offsets give selectivity zero.
    """

    def __init__(self, multiplicity: float = 1.0, offset: int = 0):
        if multiplicity <= 0:
            raise WorkloadError("multiplicity must be > 0")
        self.multiplicity = float(multiplicity)
        self.offset = offset
        self._counter = itertools.count()

    def next_value(self) -> int:
        """Produce the next attribute value."""
        return self.offset + int(next(self._counter) / self.multiplicity)


class UniformValues:
    """Uniform draws over ``[offset, offset + domain)``."""

    def __init__(self, domain: int, seed: int = 0, offset: int = 0):
        if domain < 1:
            raise WorkloadError("domain size must be >= 1")
        self.domain = domain
        self.offset = offset
        self._rng = random.Random(seed)

    def next_value(self) -> int:
        """Produce the next attribute value."""
        return self.offset + self._rng.randrange(self.domain)


class ZipfValues:
    """Zipf-skewed draws over ``[offset, offset + domain)``.

    Rank ``r`` (1-based) is drawn with probability proportional to
    ``r**-exponent``; real streams are rarely uniform, and skew is what
    makes caches shine (hot keys hit constantly). Sampling uses a
    precomputed cumulative table — exact, O(log domain) per draw.
    """

    def __init__(
        self,
        domain: int,
        exponent: float = 1.1,
        seed: int = 0,
        offset: int = 0,
    ):
        if domain < 1:
            raise WorkloadError("domain size must be >= 1")
        if exponent <= 0:
            raise WorkloadError("zipf exponent must be positive")
        self.domain = domain
        self.exponent = exponent
        self.offset = offset
        self._rng = random.Random(seed)
        weights = [rank ** -exponent for rank in range(1, domain + 1)]
        total = sum(weights)
        cumulative, running = [], 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def next_value(self) -> int:
        """Produce the next attribute value."""
        import bisect

        draw = self._rng.random()
        rank = bisect.bisect_left(self._cumulative, draw)
        return self.offset + rank


class RotatingHotSetValues:
    """Zipf-skewed draws whose hot set migrates through the domain.

    Every ``rotate_every`` draws the rank->value mapping shifts by
    ``hot_set_size``, so yesterday's hot keys go cold and a fresh slice
    of the domain heats up. This is the "heavy key skew with churn"
    regime: a cache tuned to the old hot set must re-profile or bleed
    misses. Deterministic for a fixed seed.
    """

    def __init__(
        self,
        domain: int,
        exponent: float = 1.1,
        seed: int = 0,
        offset: int = 0,
        rotate_every: int = 500,
        hot_set_size: int = 8,
    ):
        if rotate_every < 1:
            raise WorkloadError("rotate_every must be >= 1")
        if hot_set_size < 1:
            raise WorkloadError("hot_set_size must be >= 1")
        self._zipf = ZipfValues(domain, exponent=exponent, seed=seed)
        self.domain = domain
        self.offset = offset
        self.rotate_every = rotate_every
        self.hot_set_size = hot_set_size
        self._draws = 0

    def next_value(self) -> int:
        """Produce the next attribute value."""
        shift = (self._draws // self.rotate_every) * self.hot_set_size
        self._draws += 1
        rank = self._zipf.next_value()  # offset 0: a raw rank in [0, domain)
        return self.offset + (rank + shift) % self.domain


class StreamSpec:
    """How to produce the tuples of one append-only stream.

    ``value_models`` maps attribute name -> value model; unmapped
    attributes get a per-stream serial number (payload columns).
    """

    def __init__(
        self,
        relation: str,
        attributes: Sequence[str],
        value_models: Mapping[str, object],
    ):
        self.relation = relation
        self.attributes = tuple(attributes)
        self.value_models = dict(value_models)
        for attr in self.value_models:
            if attr not in self.attributes:
                raise WorkloadError(
                    f"value model for unknown attribute {relation}.{attr}"
                )
        self._serial = itertools.count()

    def next_tuple(self) -> tuple:
        """Produce the next full tuple for this stream."""
        values = []
        for attr in self.attributes:
            model = self.value_models.get(attr)
            if model is None:
                values.append(next(self._serial))
            else:
                values.append(model.next_value())
        return tuple(values)


def fit_domain_sizes(
    relations: Sequence[str],
    selectivities: Mapping[frozenset, float],
    minimum: int = 2,
    maximum: int = 100_000,
) -> Dict[str, int]:
    """Fit per-relation uniform-domain sizes to target pairwise selectivities.

    For a star equijoin where ``Ri.A`` is uniform over a nested domain of
    size ``Di``, the pairwise selectivity is ``sel(i,j) = 1/max(Di, Dj)``.
    Independent targets for every pair are over-constrained (the paper's
    generator has the same limitation for transitively equated attributes),
    so we minimize squared log error by coordinate descent. All-zero
    targets mean disjoint domains (no results); handled by the caller via
    offsets.
    """
    import math

    targets = {
        pair: sel for pair, sel in selectivities.items() if sel > 0
    }
    if not targets:
        return {name: minimum for name in relations}
    # Initialize each Di from the average of its target selectivities.
    sizes: Dict[str, float] = {}
    for name in relations:
        involved = [
            sel for pair, sel in targets.items() if name in pair
        ]
        if involved:
            mean_sel = sum(involved) / len(involved)
            sizes[name] = min(maximum, max(minimum, 1.0 / mean_sel))
        else:
            sizes[name] = float(minimum)

    def error(candidate: Mapping[str, float]) -> float:
        total = 0.0
        for pair, sel in targets.items():
            a, b = tuple(pair)
            predicted = 1.0 / max(candidate[a], candidate[b])
            total += (math.log(predicted) - math.log(sel)) ** 2
        return total

    for _sweep in range(40):
        improved = False
        for name in relations:
            best_size, best_err = sizes[name], error(sizes)
            for factor in (0.8, 0.9, 0.95, 1.05, 1.1, 1.25):
                trial = dict(sizes)
                trial[name] = min(maximum, max(minimum, sizes[name] * factor))
                trial_err = error(trial)
                if trial_err < best_err - 1e-12:
                    best_size, best_err = trial[name], trial_err
                    improved = True
            sizes[name] = best_size
        if not improved:
            break
    return {name: max(minimum, int(round(size))) for name, size in sizes.items()}


def predicted_pairwise_selectivity(
    sizes: Mapping[str, int], a: str, b: str
) -> float:
    """The selectivity the fitted nested-uniform model realizes for (a, b)."""
    return 1.0 / max(sizes[a], sizes[b])
