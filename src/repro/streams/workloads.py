"""The paper's experimental workloads (Section 7.1).

Two query templates cover every experiment:

* the three-way chain ``R(A) ⋈A S(A,B) ⋈B T(B)`` (Figures 6-8, 10, 12);
* the n-way star ``R1(A) ⋈A R2(A) ⋈A … ⋈A Rn(A)`` (Figure 9, Table 2 /
  Figures 11 and 13).

A :class:`Workload` bundles the join graph, per-stream tuple generators,
window sizes, relative rates, and index configuration, and materializes
the globally ordered update stream the executors consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.errors import WorkloadError
from repro.relations.predicates import JoinGraph
from repro.streams.events import Update
from repro.streams.generators import (
    SequentialValues,
    StreamSpec,
    UniformValues,
    fit_domain_sizes,
)
from repro.streams.sources import DeficitScheduler, RateFunction
from repro.streams.tuples import RowFactory, Schema
from repro.streams.windows import CountWindow


@dataclass
class Workload:
    """A fully specified experiment input."""

    name: str
    graph: JoinGraph
    specs: Dict[str, StreamSpec]
    windows: Dict[str, int]
    rates: Dict[str, float]
    rate_function: Optional[RateFunction] = None
    indexed_attributes: Optional[Dict[str, Tuple[str, ...]]] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in self.graph.relations:
            if name not in self.specs:
                raise WorkloadError(f"no stream spec for relation {name!r}")
            if name not in self.windows:
                raise WorkloadError(f"no window size for relation {name!r}")
            if name not in self.rates:
                raise WorkloadError(f"no rate for relation {name!r}")

    def updates(self, arrivals: int) -> Iterator[Update]:
        """The globally ordered update stream for ``arrivals`` stream tuples.

        Each arrival yields an insertion plus, once its window is full, the
        deletion of the expired row; both carry consecutive global sequence
        numbers.
        """
        rows = RowFactory()
        scheduler = DeficitScheduler(self.rates, self.rate_function)
        windows = {
            name: CountWindow(name, size, rows)
            for name, size in self.windows.items()
        }
        seq = 0
        for _ in range(arrivals):
            stream = scheduler.next_stream()
            values = self.specs[stream].next_tuple()
            for update in windows[stream].feed(values, seq):
                seq += 1
                yield update


# ----------------------------------------------------------------------
# Three-way chain workloads (Figures 6-8, 10, 12)
# ----------------------------------------------------------------------

def three_way_chain(
    t_multiplicity: float = 5.0,
    s_multiplicity: float = 1.0,
    r_multiplicity: float = 1.0,
    rate_r: float = 1.0,
    rate_s: float = 1.0,
    rate_t: Optional[float] = None,
    window_r: int = 128,
    window_s: int = 128,
    window_t: Optional[int] = None,
    s_b_offset: int = 0,
    drop_s_b_index: bool = False,
    rate_function: Optional[RateFunction] = None,
    name: str = "three-way-chain",
) -> Workload:
    """The default Section 7.2 setup: ``R(A) ⋈A S(A,B) ⋈B T(B)``.

    Join attributes draw values from the same ordered domain; multiplicity
    is 1 in R and S and ``t_multiplicity`` in T, whose rate (and window)
    scale with the multiplicity so the streams stay value-aligned, exactly
    as described for Figure 6.
    """
    if rate_t is None:
        rate_t = max(1.0, t_multiplicity) * rate_r
    if window_t is None:
        window_t = max(1, int(window_r * max(1.0, t_multiplicity)))
    graph = JoinGraph.parse(
        [Schema("R", ("A",)), Schema("S", ("A", "B")), Schema("T", ("B",))],
        ["R.A = S.A", "S.B = T.B"],
    )
    specs = {
        "R": StreamSpec("R", ("A",), {"A": SequentialValues(r_multiplicity)}),
        "S": StreamSpec(
            "S",
            ("A", "B"),
            {
                "A": SequentialValues(s_multiplicity),
                "B": SequentialValues(s_multiplicity, offset=s_b_offset),
            },
        ),
        "T": StreamSpec(
            "T", ("B",), {"B": SequentialValues(t_multiplicity)}
        ),
    }
    indexed: Optional[Dict[str, Tuple[str, ...]]] = None
    if drop_s_b_index:
        indexed = {"R": ("A",), "S": ("A",), "T": ("B",)}
    return Workload(
        name=name,
        graph=graph,
        specs=specs,
        windows={"R": window_r, "S": window_s, "T": window_t},
        rates={"R": rate_r, "S": rate_s, "T": rate_t},
        rate_function=rate_function,
        indexed_attributes=indexed,
        metadata={
            "t_multiplicity": t_multiplicity,
            "s_multiplicity": s_multiplicity,
        },
    )


def fig6_workload(t_multiplicity: int, window: int = 128) -> Workload:
    """Figure 6: the multiplicity of ``T.B`` controls cache hit probability."""
    return three_way_chain(
        t_multiplicity=float(t_multiplicity),
        window_r=window,
        window_s=window,
        name=f"fig6-mult{t_multiplicity}",
    )


def fig7_workload(t_selectivity: float, window: int = 128) -> Workload:
    """Figure 7: ``t_selectivity`` R⋈S tuples join each ∆T tuple.

    Realized through the S-side multiplicity: with S multiplicity m, each
    ``T.B`` value matches m S rows (m > 1), or is present only for a 1/m
    fraction of values (m < 1, average selectivity m). Selectivity 0 uses
    a disjoint ``S.B`` domain.
    """
    if t_selectivity < 0:
        raise WorkloadError("selectivity cannot be negative")
    if t_selectivity == 0:
        return three_way_chain(
            s_b_offset=10_000_000,
            window_r=window,
            window_s=window,
            name="fig7-sel0",
        )
    return three_way_chain(
        s_multiplicity=t_selectivity,
        rate_s=t_selectivity,
        window_s=max(1, int(window * max(1.0, t_selectivity))),
        window_r=window,
        name=f"fig7-sel{t_selectivity}",
    )


def fig8_workload(update_probe_ratio: float, window: int = 128) -> Workload:
    """Figure 8: ``rate(R ⋈ S) / rate(T)`` is swept.

    Each R or S arrival produces about one R⋈S update, so the ratio is
    realized as ``(rate_R + rate_S) / rate_T`` with ``rate_T`` fixed.
    """
    if update_probe_ratio <= 0:
        raise WorkloadError("update/probe ratio must be positive")
    side_rate = update_probe_ratio / 2.0
    return three_way_chain(
        t_multiplicity=5.0,
        rate_r=side_rate,
        rate_s=side_rate,
        rate_t=5.0,
        window_r=window,
        window_s=window,
        window_t=window * 5,
        name=f"fig8-ratio{update_probe_ratio}",
    )


def fig10_workload(s_window: int, base_window: int = 128) -> Workload:
    """Figure 10: no index on ``S.B`` → nested-loop join; ``|S|`` swept."""
    return three_way_chain(
        drop_s_b_index=True,
        window_s=max(1, s_window),
        window_r=base_window,
        name=f"fig10-swin{s_window}",
    )


def fig12_workload(
    burst_after_arrivals: int,
    burst_factor: float = 20.0,
    window: int = 96,
    domain_a: int = 64,
    domain_b: int = 64,
    seed: int = 11,
) -> Workload:
    """Figure 12: ∆R turns bursty at ``burst_factor`` × its normal rate.

    Values are drawn uniformly (not sequentially): a rate burst must change
    *rates only*, and aligned sequential counters would de-align under the
    burst and silently collapse ∆R's join selectivity — the paper's burst
    leaves data characteristics unchanged. The burst begins once
    ``burst_after_arrivals`` total arrivals have been scheduled (the
    figure's x-axis counts ∆S tuples; the driver converts).
    """

    def rates_at(emitted: int) -> Mapping[str, float]:
        if emitted >= burst_after_arrivals:
            return {"R": burst_factor}
        return {"R": 1.0}

    graph = JoinGraph.parse(
        [Schema("R", ("A",)), Schema("S", ("A", "B")), Schema("T", ("B",))],
        ["R.A = S.A", "S.B = T.B"],
    )
    specs = {
        "R": StreamSpec("R", ("A",), {"A": UniformValues(domain_a, seed)}),
        "S": StreamSpec(
            "S",
            ("A", "B"),
            {
                "A": UniformValues(domain_a, seed + 1),
                "B": UniformValues(domain_b, seed + 2),
            },
        ),
        "T": StreamSpec("T", ("B",), {"B": UniformValues(domain_b, seed + 3)}),
    }
    return Workload(
        name="fig12-bursty",
        graph=graph,
        specs=specs,
        windows={"R": window, "S": window, "T": window * 5},
        rates={"R": 1.0, "S": 1.0, "T": 5.0},
        rate_function=rates_at,
        metadata={"burst_after": burst_after_arrivals, "factor": burst_factor},
    )


# ----------------------------------------------------------------------
# n-way star workloads (Figure 9, Table 2 / Figures 11 and 13)
# ----------------------------------------------------------------------

def star_relation_names(n: int) -> Tuple[str, ...]:
    """R1..Rn, the star query's relation names."""
    return tuple(f"R{i}" for i in range(1, n + 1))


def star_graph(n: int) -> JoinGraph:
    """``R1(A) ⋈A R2(A) ⋈A … ⋈A Rn(A)`` as a chain of A-equalities."""
    names = star_relation_names(n)
    schemas = [Schema(name, ("A",)) for name in names]
    predicates = [
        f"{names[i]}.A = {names[i + 1]}.A" for i in range(n - 1)
    ]
    return JoinGraph.parse(schemas, predicates)


def fig9_workload(n: int, window: int = 96) -> Workload:
    """Figure 9: n-way star; multiplicity 1 for ⌊n/2⌋ streams, 5 for rest."""
    if n < 2:
        raise WorkloadError("need at least a two-way join")
    names = star_relation_names(n)
    low_count = n // 2
    specs, rates, windows = {}, {}, {}
    for i, name in enumerate(names):
        multiplicity = 1.0 if i < low_count else 5.0
        specs[name] = StreamSpec(
            name, ("A",), {"A": SequentialValues(multiplicity)}
        )
        rates[name] = multiplicity
        windows[name] = max(1, int(window * multiplicity))
    return Workload(
        name=f"fig9-{n}way",
        graph=star_graph(n),
        specs=specs,
        windows=windows,
        rates=rates,
        metadata={"n": n},
    )


# Table 2: relative stream arrival rates and pairwise join selectivities
# for sample points D1-D8 (rates relative to stream T's; the four streams
# are called R, S, T, U in the table and map to R1..R4 here).
TABLE2_POINTS: Dict[str, Dict[str, object]] = {
    "D1": {
        "rates": (10, 1, 1, 1),
        "selectivities": {
            ("R1", "R2"): 0.004, ("R1", "R3"): 0.005, ("R1", "R4"): 0.005,
            ("R2", "R3"): 0.007, ("R2", "R4"): 0.0045, ("R3", "R4"): 0.005,
        },
    },
    "D2": {
        "rates": (8, 1, 1, 8),
        "selectivities": {
            ("R1", "R2"): 0.004, ("R1", "R3"): 0.005, ("R1", "R4"): 0.005,
            ("R2", "R3"): 0.007, ("R2", "R4"): 0.0045, ("R3", "R4"): 0.005,
        },
    },
    "D3": {
        "rates": (10, 15, 1, 5),
        "selectivities": {
            ("R1", "R2"): 0.003, ("R1", "R3"): 0.005, ("R1", "R4"): 0.007,
            ("R2", "R3"): 0.0045, ("R2", "R4"): 0.006, ("R3", "R4"): 0.008,
        },
    },
    "D4": {
        "rates": (1, 1, 1, 1),
        "selectivities": {
            ("R1", "R2"): 0.003, ("R1", "R3"): 0.004, ("R1", "R4"): 0.0067,
            ("R2", "R3"): 0.002, ("R2", "R4"): 0.0023, ("R3", "R4"): 0.0027,
        },
    },
    "D5": {
        "rates": (4, 1, 1, 4),
        "selectivities": {
            ("R1", "R2"): 0.005, ("R1", "R3"): 0.007, ("R1", "R4"): 0.005,
            ("R2", "R3"): 0.006, ("R2", "R4"): 0.005, ("R3", "R4"): 0.002,
        },
    },
    "D6": {
        "rates": (1, 1, 1, 1),
        "selectivities": {
            ("R1", "R2"): 0.005, ("R1", "R3"): 0.0033, ("R1", "R4"): 0.0025,
            ("R2", "R3"): 0.0067, ("R2", "R4"): 0.005, ("R3", "R4"): 0.0075,
        },
    },
    "D7": {
        "rates": (1, 1, 1, 1),
        "selectivities": {
            ("R1", "R2"): 0.0, ("R1", "R3"): 0.0, ("R1", "R4"): 0.0,
            ("R2", "R3"): 0.0, ("R2", "R4"): 0.0, ("R3", "R4"): 0.0,
        },
    },
    "D8": {
        "rates": (1, 1, 1, 1),
        "selectivities": {
            ("R1", "R2"): 0.001, ("R1", "R3"): 0.001, ("R1", "R4"): 0.001,
            ("R2", "R3"): 0.001, ("R2", "R4"): 0.001, ("R3", "R4"): 0.001,
        },
    },
}


def table2_workload(
    point: str, window_base: Optional[int] = None, seed: int = 7
) -> Workload:
    """One of the eight Table 2 sample points as a 4-way star workload.

    Pairwise selectivities are realized by fitting nested uniform domain
    sizes (``sel(i,j) ≈ 1/max(Di, Dj)``, see DESIGN.md); D7's all-zero row
    becomes pairwise-disjoint domains. Window sizes follow the paper's
    "set appropriately to get the desired join selectivity": by default
    each window holds about ``0.8 / mean-selectivity`` tuples (scaled by
    its stream's relative rate so windows span equal time), which yields
    roughly one match per index probe, as in the paper's setup.
    """
    if point not in TABLE2_POINTS:
        raise WorkloadError(
            f"unknown Table 2 point {point!r}; choose from "
            f"{sorted(TABLE2_POINTS)}"
        )
    config = TABLE2_POINTS[point]
    names = star_relation_names(4)
    rates = {
        name: float(rate) for name, rate in zip(names, config["rates"])
    }
    selectivities = {
        frozenset(pair): sel
        for pair, sel in config["selectivities"].items()
    }
    all_zero = all(sel == 0 for sel in selectivities.values())
    specs: Dict[str, StreamSpec] = {}
    if all_zero:
        domains = {name: 1000 for name in names}
        for i, name in enumerate(names):
            specs[name] = StreamSpec(
                name,
                ("A",),
                {"A": UniformValues(1000, seed=seed + i, offset=i * 10_000_000)},
            )
    else:
        domains = fit_domain_sizes(names, selectivities)
        for i, name in enumerate(names):
            specs[name] = StreamSpec(
                name, ("A",), {"A": UniformValues(domains[name], seed=seed + i)}
            )
    if window_base is None:
        positive = [s for s in selectivities.values() if s > 0]
        if positive:
            mean_sel = sum(positive) / len(positive)
            window_base = int(min(1200.0, max(100.0, 0.8 / mean_sel)))
        else:
            window_base = 300
    windows = {
        name: max(8, int(window_base * rates[name])) for name in names
    }
    return Workload(
        name=f"table2-{point}",
        graph=star_graph(4),
        specs=specs,
        windows=windows,
        rates=rates,
        metadata={
            "point": point,
            "domains": domains,
            "selectivities": config["selectivities"],
        },
    )
