"""Deterministic interleaving of append-only streams by relative rate.

The paper's experiments control *relative* arrival rates ("the rate of ∆T
is r times that of ∆R and ∆S"). We realize a global arrival order with a
deficit scheduler: each stream accumulates credit proportional to its
current rate and the stream with the most credit emits next. The schedule
is deterministic, respects rate ratios exactly in the long run, and
supports time-varying rates (the Figure 12 burst).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Mapping, Optional

from repro.errors import WorkloadError

RateFunction = Callable[[int], Mapping[str, float]]


class DeficitScheduler:
    """Chooses which stream emits its next arrival."""

    def __init__(
        self,
        rates: Mapping[str, float],
        rate_function: Optional[RateFunction] = None,
    ):
        if not rates:
            raise WorkloadError("scheduler needs at least one stream")
        if any(rate < 0 for rate in rates.values()):
            raise WorkloadError("stream rates must be non-negative")
        if all(rate == 0 for rate in rates.values()):
            raise WorkloadError("at least one stream rate must be positive")
        self._base_rates = dict(rates)
        self._rate_function = rate_function
        self._credits: Dict[str, float] = {name: 0.0 for name in rates}
        self._emitted = 0

    def current_rates(self) -> Mapping[str, float]:
        """The effective per-stream rates at this instant."""
        if self._rate_function is not None:
            rates = dict(self._rate_function(self._emitted))
            # Streams absent from the override keep their base rate.
            for name, base in self._base_rates.items():
                rates.setdefault(name, base)
            return rates
        return self._base_rates

    def next_stream(self) -> str:
        """The stream that emits the next arrival (deficit round)."""
        rates = self.current_rates()
        total = sum(rates.values())
        if total <= 0:
            raise WorkloadError("all stream rates became zero")
        for name in self._credits:
            self._credits[name] += rates.get(name, 0.0) / total
        chosen = max(self._credits, key=lambda n: (self._credits[n], n))
        self._credits[chosen] -= 1.0
        self._emitted += 1
        return chosen

    def schedule(self, count: int) -> Iterator[str]:
        """Yield the stream names of the next ``count`` arrivals."""
        for _ in range(count):
            yield self.next_stream()

    @property
    def emitted(self) -> int:
        """Total arrivals scheduled so far."""
        return self._emitted
