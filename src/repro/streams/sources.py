"""Deterministic interleaving of append-only streams by relative rate.

The paper's experiments control *relative* arrival rates ("the rate of ∆T
is r times that of ∆R and ∆S"). We realize a global arrival order with a
deficit scheduler: each stream accumulates credit proportional to its
current rate and the stream with the most credit emits next. The schedule
is deterministic, respects rate ratios exactly in the long run, and
supports time-varying rates (the Figure 12 burst).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Mapping, Optional

from repro.errors import WorkloadError

RateFunction = Callable[[int], Mapping[str, float]]


class DeficitScheduler:
    """Chooses which stream emits its next arrival."""

    # How far ahead next_stream() scans through an all-zero-rate gap of a
    # time-varying schedule before concluding the rates are zero forever.
    MAX_IDLE_TICKS = 1_000_000

    def __init__(
        self,
        rates: Mapping[str, float],
        rate_function: Optional[RateFunction] = None,
    ):
        if not rates:
            raise WorkloadError("scheduler needs at least one stream")
        if any(rate < 0 for rate in rates.values()):
            raise WorkloadError("stream rates must be non-negative")
        if all(rate == 0 for rate in rates.values()):
            raise WorkloadError("at least one stream rate must be positive")
        self._base_rates = dict(rates)
        self._rate_function = rate_function
        self._credits: Dict[str, float] = {name: 0.0 for name in rates}
        self._emitted = 0

    def current_rates(self) -> Mapping[str, float]:
        """The effective per-stream rates at this instant."""
        if self._rate_function is not None:
            rates = dict(self._rate_function(self._emitted))
            # Streams absent from the override keep their base rate.
            for name, base in self._base_rates.items():
                rates.setdefault(name, base)
            return rates
        return self._base_rates

    def next_stream(self) -> str:
        """The stream that emits the next arrival (deficit round).

        A time-varying ``rate_function`` may pass through an interval where
        every rate is zero (e.g. the gap before a burst): that is an idle
        stretch of the schedule, not an error, so the scheduler advances
        ``_emitted`` through the gap until some rate turns positive again.
        Only a gap that never ends (``MAX_IDLE_TICKS`` scanned) raises.
        """
        rates = self.current_rates()
        total = sum(rates.values())
        idle = 0
        while total <= 0:
            idle += 1
            if idle > self.MAX_IDLE_TICKS:
                raise WorkloadError(
                    "all stream rates became zero and never recovered"
                )
            self._emitted += 1
            rates = self.current_rates()
            total = sum(rates.values())
        for name in self._credits:
            self._credits[name] += rates.get(name, 0.0) / total
        chosen = max(self._credits, key=lambda n: (self._credits[n], n))
        self._credits[chosen] -= 1.0
        self._emitted += 1
        return chosen

    def schedule(self, count: int) -> Iterator[str]:
        """Yield the stream names of the next ``count`` arrivals."""
        for _ in range(count):
            yield self.next_stream()

    @property
    def emitted(self) -> int:
        """Total arrivals scheduled so far."""
        return self._emitted
