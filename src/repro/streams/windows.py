"""Sliding-window operators.

Section 7.1: every relation in the experiments is a sliding window over an
append-only stream; the update stream ``∆Ri`` is the stream of insertions
and deletions to the window produced by a window operator. With a
count-based window of size ``N``, each arrival emits one insertion, plus
one deletion of the oldest row once the window is full — which is why the
paper observes a cache-hit opportunity even at multiplicity 1 (every value
is seen again when its tuple expires).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import ConfigError
from repro.streams.events import Sign, Update
from repro.streams.tuples import Row, RowFactory


class CountWindow:
    """A count-based sliding window producing an update stream."""

    def __init__(
        self,
        relation: str,
        size: int,
        rows: Optional[RowFactory] = None,
    ):
        if size < 1:
            raise ConfigError(f"window size must be >= 1, got {size}")
        self.relation = relation
        self.size = size
        self._rows = rows if rows is not None else RowFactory()
        self._window: Deque[Row] = deque()

    def feed(self, values: tuple, seq_start: int) -> List[Update]:
        """Push one stream arrival; return the resulting updates in order.

        The deletion of the expired row precedes the insertion so the
        window never transiently exceeds its size.
        """
        updates: List[Update] = []
        seq = seq_start
        if len(self._window) >= self.size:
            expired = self._window.popleft()
            updates.append(Update(self.relation, expired, Sign.DELETE, seq))
            seq += 1
        row = self._rows.make(values)
        self._window.append(row)
        updates.append(Update(self.relation, row, Sign.INSERT, seq))
        return updates

    @property
    def fill(self) -> int:
        """Number of rows currently in the window."""
        return len(self._window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CountWindow({self.relation}, {len(self._window)}/{self.size})"


class TimeWindow:
    """A time-based sliding window producing an update stream.

    Arrivals carry explicit timestamps; feeding one emits deletions for
    every row older than ``span`` before the insertion. Timestamps must be
    non-decreasing (a DSMS's global arrival order).
    """

    def __init__(
        self,
        relation: str,
        span: float,
        rows: Optional[RowFactory] = None,
    ):
        if span <= 0:
            raise ConfigError(f"window span must be positive, got {span}")
        self.relation = relation
        self.span = span
        self._rows = rows if rows is not None else RowFactory()
        self._window: Deque[tuple] = deque()  # (timestamp, Row)
        self._last_timestamp: Optional[float] = None

    def feed(
        self, values: tuple, timestamp: float, seq_start: int
    ) -> List[Update]:
        """Push one timestamped arrival; returns the resulting updates."""
        if self._last_timestamp is not None and timestamp < self._last_timestamp:
            raise ValueError(
                f"timestamps must be non-decreasing: {timestamp} after "
                f"{self._last_timestamp}"
            )
        self._last_timestamp = timestamp
        updates: List[Update] = []
        seq = seq_start
        horizon = timestamp - self.span
        while self._window and self._window[0][0] <= horizon:
            _, expired = self._window.popleft()
            updates.append(Update(self.relation, expired, Sign.DELETE, seq))
            seq += 1
        row = self._rows.make(values)
        self._window.append((timestamp, row))
        updates.append(Update(self.relation, row, Sign.INSERT, seq))
        return updates

    @property
    def fill(self) -> int:
        """Number of rows currently in the window."""
        return len(self._window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeWindow({self.relation}, span={self.span}, n={self.fill})"
