"""Update-stream events.

An update stream ``∆Ri`` (Section 3.1) is a totally ordered sequence of
insertions and deletions to relation ``Ri``. The engine processes each
update to completion before the next one, matching the paper's global
ordering assumption.
"""

from __future__ import annotations

from enum import IntEnum
from typing import NamedTuple

from repro.streams.tuples import Row

# Size of one input tuple in bytes, as fixed by the paper's experimental
# setup ("All input tuples are 32 bytes long", Section 7.1). Used by the
# memory accounting in Section 5 / Figure 13.
TUPLE_BYTES = 32


class Sign(IntEnum):
    """Polarity of an update: +1 insertion, -1 deletion."""

    INSERT = 1
    DELETE = -1

    def flipped(self) -> "Sign":
        """The opposite polarity."""
        return Sign.DELETE if self is Sign.INSERT else Sign.INSERT


class Update(NamedTuple):
    """One element of an update stream ``∆R``."""

    relation: str
    row: Row
    sign: Sign
    seq: int  # position in the global update ordering

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        symbol = "+" if self.sign is Sign.INSERT else "-"
        return f"{symbol}{self.relation}{self.row.values}@{self.seq}"


class OutputDelta(NamedTuple):
    """One element of the result stream: a signed n-way join tuple."""

    composite: "object"  # CompositeTuple; typed loosely to avoid cycle
    sign: Sign


def canonical_delta(delta: "OutputDelta") -> tuple:
    """A rid-free, hashable identity for one result delta.

    Keys on relation names and attribute *values*, not row identities, so
    two runs that produce the same results through different internal row
    numbering (or with injected fresh-rid copies) compare equal exactly
    when the visible results are equal. Used by the chaos harness and the
    shard-equivalence merge.
    """
    composite = delta.composite
    return (
        int(delta.sign),
        tuple(
            sorted(
                (relation, composite.row(relation).values)
                for relation in composite.relations()
            )
        ),
    )
