"""Update-stream events.

An update stream ``∆Ri`` (Section 3.1) is a totally ordered sequence of
insertions and deletions to relation ``Ri``. The engine processes each
update to completion before the next one, matching the paper's global
ordering assumption.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterable, Iterator, NamedTuple, Tuple

from repro.errors import ConfigError
from repro.streams.tuples import Row

# Size of one input tuple in bytes, as fixed by the paper's experimental
# setup ("All input tuples are 32 bytes long", Section 7.1). Used by the
# memory accounting in Section 5 / Figure 13.
TUPLE_BYTES = 32


class Sign(IntEnum):
    """Polarity of an update: +1 insertion, -1 deletion."""

    INSERT = 1
    DELETE = -1

    def flipped(self) -> "Sign":
        """The opposite polarity."""
        return Sign.DELETE if self is Sign.INSERT else Sign.INSERT


class Update(NamedTuple):
    """One element of an update stream ``∆R``."""

    relation: str
    row: Row
    sign: Sign
    seq: int  # position in the global update ordering

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        symbol = "+" if self.sign is Sign.INSERT else "-"
        return f"{symbol}{self.relation}{self.row.values}@{self.seq}"


class OutputDelta(NamedTuple):
    """One element of the result stream: a signed n-way join tuple."""

    composite: "object"  # CompositeTuple; typed loosely to avoid cycle
    sign: Sign


class DeltaBatch:
    """A group of *consecutive* updates processed as one unit.

    Micro-batching never reorders updates: the batch is processed in
    global order and every window mutation happens at exactly the same
    point as in per-update execution, so the emitted delta multiset and
    the final window contents are identical by construction. What a batch
    buys is amortization — join-index probes with the same constraint set
    are computed once per batch (until the probed window changes) instead
    of once per update, and cache probe/maintenance charges are grouped
    per distinct key.

    A batch of size 1 is processed exactly like a bare update, charge for
    charge.
    """

    __slots__ = ("updates",)

    def __init__(self, updates: Iterable[Update]):
        self.updates: Tuple[Update, ...] = tuple(updates)
        if not self.updates:
            raise ConfigError(
                "DeltaBatch.updates must contain at least one update"
            )

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self) -> Iterator[Update]:
        return iter(self.updates)

    def __getitem__(self, index):
        return self.updates[index]

    @property
    def relations(self) -> Tuple[str, ...]:
        """Distinct relations updated in this batch, in first-seen order."""
        seen = dict.fromkeys(u.relation for u in self.updates)
        return tuple(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        first, last = self.updates[0], self.updates[-1]
        return (
            f"DeltaBatch(n={len(self.updates)}, "
            f"seq={first.seq}..{last.seq})"
        )


def batched(updates: Iterable[Update], size: int) -> Iterator[DeltaBatch]:
    """Group an update stream into consecutive :class:`DeltaBatch` chunks.

    The final batch may be shorter than ``size``. ``size=1`` yields one
    singleton batch per update (per-update execution semantics).
    """
    if size < 1:
        raise ConfigError(f"batch size must be >= 1, got {size}")
    chunk: list = []
    for update in updates:
        chunk.append(update)
        if len(chunk) >= size:
            yield DeltaBatch(chunk)
            chunk = []
    if chunk:
        yield DeltaBatch(chunk)


def canonical_delta(delta: "OutputDelta") -> tuple:
    """A rid-free, hashable identity for one result delta.

    Keys on relation names and attribute *values*, not row identities, so
    two runs that produce the same results through different internal row
    numbering (or with injected fresh-rid copies) compare equal exactly
    when the visible results are equal. Used by the chaos harness and the
    shard-equivalence merge.
    """
    composite = delta.composite
    return (
        int(delta.sign),
        tuple(
            sorted(
                (relation, composite.row(relation).values)
                for relation in composite.relations()
            )
        ),
    )
