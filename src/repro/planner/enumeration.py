"""Plan search and measurement: the M / X / P / G comparison of §7.3.

* ``M`` — the best MJoin: A-Greedy adaptive ordering, no caches;
* ``X`` — the best XJoin: exhaustive search over connected join trees
  (each probed on a workload prefix, the winner measured in full);
* ``P`` — caching-based plan restricted to the prefix invariant:
  A-Caching with ``global_quota = 0`` and exhaustive selection;
* ``G`` — caching-based plan with globally-consistent candidates:
  A-Caching with the Section 6 quota ``m`` (default 6).

Workloads are stateful generators, so every run takes a zero-argument
``workload_factory`` producing a fresh instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.api import EngineConfig, build_adaptive_engine
from repro.core.acaching import ACaching, ACachingConfig
from repro.core.profiler import ProfilerConfig
from repro.core.reoptimizer import ReoptimizerConfig
from repro.mjoin.executor import MJoinExecutor
from repro.ordering.agreedy import OrderingConfig
from repro.parallel.engine import ParallelConfig, run_sharded
from repro.parallel.spec import EngineSpec, ExperimentSpec
from repro.streams.workloads import Workload
from repro.xjoin.executor import XJoinExecutor
from repro.xjoin.tree import JoinTree, enumerate_trees

WorkloadFactory = Callable[[], Workload]


def _run_parallel(
    label: str,
    workload_factory: WorkloadFactory,
    arrivals: int,
    engine_spec: EngineSpec,
    parallel: ParallelConfig,
    warmup_fraction: float = 0.4,
) -> "PlanResult":
    """Measure one plan sharded; mirrors :func:`measured_run` semantics.

    Throughput is the post-warmup modeled parallel rate: the shards'
    combined post-warmup updates over the slowest shard's post-warmup
    virtual span (one core per shard). ``workload_factory`` must be
    picklable (a module-level function or ``functools.partial``) when the
    process backend is used.
    """
    spec = ExperimentSpec(
        workload_factory=workload_factory,
        arrivals=arrivals,
        engine=engine_spec,
        warmup_fraction=warmup_fraction,
    )
    run = run_sharded(spec, parallel)
    stats = run.stats
    return PlanResult(
        label=label,
        throughput=stats.steady_throughput,
        elapsed_seconds=stats.critical_path_us / 1e6,
        updates=stats.updates_processed,
        outputs=stats.outputs_emitted,
        memory_peak_bytes=stats.memory_bytes,
        detail={
            "shards": stats.shard_count,
            "backend": run.backend,
            "partitioned": list(run.scheme.partitioned),
            "broadcast": list(run.scheme.broadcast),
            "balance": round(stats.balance, 3),
            "used_caches": list(stats.used_caches),
            "hit_rate": stats.hit_rate,
            "reoptimizations": stats.reoptimizations,
        },
    )


def measured_run(
    plan,
    workload: Workload,
    arrivals: int,
    warmup_fraction: float = 0.4,
    batch_size: int = 1,
):
    """Run a plan over a workload and return steady-state throughput.

    The paper reports the *maximum load the system can handle*, a steady
    state. Cumulative throughput would dilute it with the adaptive
    cold-start (candidate profiling needs W Bloom windows before the first
    selection), so the first ``warmup_fraction`` of arrivals is excluded
    from the measurement — overheads incurred after warm-up (profiling,
    re-optimization) still count, as in the paper.

    ``batch_size > 1`` drives the plan through consecutive micro-batches
    (``plan.process_batch``); the measured span starts at a batch
    boundary so warmup exclusion stays exact.
    """
    from repro.streams.events import DeltaBatch, Sign

    ctx = plan.ctx
    warmup = int(arrivals * warmup_fraction)
    arrivals_seen = 0
    start_updates: Optional[int] = None
    start_time = 0.0
    pending: List = []

    def flush_pending() -> None:
        if pending:
            plan.process_batch(DeltaBatch(pending))
            pending.clear()

    for update in workload.updates(arrivals):
        if start_updates is None and arrivals_seen >= warmup:
            flush_pending()
            start_updates = ctx.metrics.updates_processed
            start_time = ctx.clock.now_seconds
        if batch_size == 1:
            plan.process(update)
        else:
            pending.append(update)
            if len(pending) >= batch_size:
                flush_pending()
        if update.sign is Sign.INSERT:
            arrivals_seen += 1  # each arrival yields exactly one insertion
    flush_pending()
    if start_updates is None:
        start_updates, start_time = 0, 0.0
    span = max(1e-12, ctx.clock.now_seconds - start_time)
    return (ctx.metrics.updates_processed - start_updates) / span


@dataclass
class PlanResult:
    """One measured plan: the paper's tuples/sec numbers plus context."""

    label: str
    throughput: float          # updates/sec of virtual time, all overheads
    elapsed_seconds: float
    updates: int
    outputs: int
    memory_peak_bytes: int = 0
    detail: Dict[str, object] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"PlanResult({self.label}: {self.throughput:,.0f} tuples/sec, "
            f"{self.updates} updates)"
        )


def _tuning(
    profile_probability: float = 0.05,
    window: int = 10,
    bloom_window: int = 256,
    reopt_interval_updates: Optional[int] = 2500,
    profiling_phase_updates: int = 400,
    ordering_interval: int = 1500,
    global_quota: int = 0,
    selection_method: str = "auto",
    memory_budget: Optional[int] = None,
    adaptive_ordering: bool = True,
) -> ACachingConfig:
    return ACachingConfig(
        profiler=ProfilerConfig(
            window=window,
            profile_probability=profile_probability,
            bloom_window_tuples=bloom_window,
        ),
        reoptimizer=ReoptimizerConfig(
            reopt_interval_updates=reopt_interval_updates,
            profiling_phase_updates=profiling_phase_updates,
            global_quota=global_quota,
            selection_method=selection_method,
            memory_budget_bytes=memory_budget,
        ),
        ordering=OrderingConfig(interval_updates=ordering_interval),
        adaptive_ordering=adaptive_ordering,
    )


def run_mjoin(
    workload_factory: WorkloadFactory,
    arrivals: int,
    adaptive_ordering: bool = True,
    orders: Optional[Dict[str, Tuple[str, ...]]] = None,
    parallel: Optional[ParallelConfig] = None,
) -> PlanResult:
    """The best MJoin ``M``: A-Greedy ordering, no caches."""
    if parallel is not None and parallel.active:
        if adaptive_ordering:
            config = _tuning(adaptive_ordering=True)
            config.reoptimizer.reopt_interval_updates = None
            config.reoptimizer.reopt_interval_seconds = float("inf")
            engine = EngineConfig(
                orders=orders, tuning=config
            ).engine_spec("adaptive")
        else:
            engine = EngineConfig(orders=orders).engine_spec("mjoin")
        return _run_parallel(
            "MJoin", workload_factory, arrivals, engine, parallel
        )
    workload = workload_factory()
    if adaptive_ordering:
        config = _tuning(adaptive_ordering=True)
        # No caches: quota 0 and an interval that never fires.
        config.reoptimizer.reopt_interval_updates = None
        config.reoptimizer.reopt_interval_seconds = float("inf")
        plan = ACaching(
            workload.graph,
            orders=orders,
            indexed_attributes=workload.indexed_attributes,
            config=config,
        )
        detail_of = lambda: {"orders": plan.executor.orders()}
    else:
        plan = MJoinExecutor(
            workload.graph,
            orders=orders,
            indexed_attributes=workload.indexed_attributes,
        )
        detail_of = lambda: {"orders": plan.orders()}
    steady = measured_run(plan, workload, arrivals)
    ctx = plan.ctx
    detail = detail_of()
    return PlanResult(
        label="MJoin",
        throughput=steady,
        elapsed_seconds=ctx.clock.now_seconds,
        updates=ctx.metrics.updates_processed,
        outputs=ctx.metrics.outputs_emitted,
        detail=detail,
    )


def run_xjoin_tree(
    workload_factory: WorkloadFactory, arrivals: int, tree: JoinTree
) -> PlanResult:
    """Measure one XJoin tree on a fresh workload instance."""
    workload = workload_factory()
    executor = XJoinExecutor(
        workload.graph, tree, indexed_attributes=workload.indexed_attributes
    )
    steady = measured_run(executor, workload, arrivals)
    ctx = executor.ctx
    return PlanResult(
        label="XJoin",
        throughput=steady,
        elapsed_seconds=ctx.clock.now_seconds,
        updates=ctx.metrics.updates_processed,
        outputs=ctx.metrics.outputs_emitted,
        memory_peak_bytes=executor.peak_memory_bytes,
        detail={"tree": repr(tree)},
    )


def best_xjoin(
    workload_factory: WorkloadFactory,
    arrivals: int,
    probe_arrivals: Optional[int] = None,
    parallel: Optional[ParallelConfig] = None,
) -> PlanResult:
    """The best XJoin ``X`` by exhaustive search over connected trees.

    Each tree is probed on a workload prefix; the winner runs in full.
    Tree probing stays serial even when ``parallel`` is set — the probes
    are short prefixes used only for ranking — and the winning tree is
    then measured sharded.
    """
    workload = workload_factory()
    trees = enumerate_trees(workload.graph)
    if probe_arrivals is None:
        probe_arrivals = max(200, arrivals // 10)
    best_tree, best_rate = None, -1.0
    for tree in trees:
        probe = run_xjoin_tree(workload_factory, probe_arrivals, tree)
        if probe.throughput > best_rate:
            best_tree, best_rate = tree, probe.throughput
    if parallel is not None and parallel.active:
        result = _run_parallel(
            "XJoin",
            workload_factory,
            arrivals,
            EngineConfig().engine_spec("xjoin", tree=best_tree),
            parallel,
        )
        result.detail["tree"] = repr(best_tree)
    else:
        result = run_xjoin_tree(workload_factory, arrivals, best_tree)
    result.detail["trees_searched"] = len(trees)
    return result


def run_acaching(
    workload_factory: WorkloadFactory,
    arrivals: int,
    global_quota: int = 0,
    selection_method: str = "auto",
    memory_budget: Optional[int] = None,
    label: Optional[str] = None,
    reopt_interval_updates: Optional[int] = 2500,
    profile_probability: float = 0.05,
    bloom_window: Optional[int] = None,
    stat_window: int = 10,
    parallel: Optional[ParallelConfig] = None,
) -> PlanResult:
    """A-Caching plans: ``P`` (quota 0) or ``G`` (quota m, Section 6).

    ``bloom_window`` defaults to roughly twice the largest window's update
    span so the miss-probability estimator sees the window-expiry reuse a
    probe stream actually has (Appendix A's Wd is a free parameter).

    When sharded, a global ``memory_budget`` is split evenly across
    shards: each shard's re-optimizer enforces budget/n, so the shards
    together never exceed the global cap.
    """
    workload = workload_factory()
    if bloom_window is None:
        largest = max(workload.windows.values())
        bloom_window = int(min(1500, max(192, 2.2 * largest)))
    if parallel is not None and parallel.active and memory_budget is not None:
        memory_budget = max(1, memory_budget // parallel.shards)
    config = _tuning(
        global_quota=global_quota,
        selection_method=selection_method,
        memory_budget=memory_budget,
        reopt_interval_updates=reopt_interval_updates,
        profile_probability=profile_probability,
        bloom_window=bloom_window,
        window=stat_window,
    )
    if parallel is not None and parallel.active:
        if label is None:
            label = "G (global caches)" if global_quota else "P (prefix caches)"
        return _run_parallel(
            label,
            workload_factory,
            arrivals,
            EngineConfig(tuning=config).engine_spec("adaptive"),
            parallel,
        )
    engine = build_adaptive_engine(workload, EngineConfig(tuning=config))
    steady = measured_run(engine, workload, arrivals)
    ctx = engine.executor.ctx
    if label is None:
        label = "G (global caches)" if global_quota else "P (prefix caches)"
    return PlanResult(
        label=label,
        throughput=steady,
        elapsed_seconds=ctx.clock.now_seconds,
        updates=ctx.metrics.updates_processed,
        outputs=ctx.metrics.outputs_emitted,
        memory_peak_bytes=engine.memory_in_use(),
        detail={
            "used_caches": engine.used_caches(),
            "hit_rate": ctx.metrics.hit_rate,
            "reoptimizations": ctx.metrics.reoptimizations,
            "orders": engine.executor.orders(),
        },
    )


def multi_query_overlap(
    workloads: Dict[str, Workload],
    orders: Optional[Dict[str, Dict[str, Tuple[str, ...]]]] = None,
) -> Dict[str, object]:
    """Enumerate each query's candidates and report inter-query overlap.

    A planning-time preview of what :mod:`repro.multi` would share: for
    every query the candidate set is enumerated under its (default or
    given) pipeline orders, then prefix-invariant candidates whose
    member set, key signature, and segment predicates match across
    queries are grouped into inter-query shared-store groups (the
    Definition 4.1 argument applied across queries). Returns candidate
    totals, the shareable groups (token -> query -> candidate ids), and
    how many physical stores the shared engine would materialize versus
    isolated engines wiring the same candidates.
    """
    from repro.core.candidates import (
        enumerate_candidates,
        inter_query_groups,
    )
    from repro.mjoin.executor import default_orders

    per_query: Dict[str, Tuple[object, List]] = {}
    candidate_counts: Dict[str, int] = {}
    for query_id, workload in workloads.items():
        graph = workload.graph
        resolved = dict(default_orders(graph))
        if orders and query_id in orders:
            resolved.update(
                {k: tuple(v) for k, v in orders[query_id].items()}
            )
        candidates = enumerate_candidates(graph, resolved)
        per_query[query_id] = (graph, candidates)
        candidate_counts[query_id] = len(candidates)
    groups = inter_query_groups(per_query)
    shared = {
        token: {qid: [c.candidate_id for c in members]
                for qid, members in users.items()}
        for token, users in groups.items()
        if len(users) > 1
    }
    # Stores if every candidate wires: isolated engines pay one store per
    # (query, token); the shared engine pays one store per token.
    isolated_stores = sum(len(users) for users in groups.values())
    shared_stores = len(groups)
    return {
        "candidates": candidate_counts,
        "shareable_groups": {
            repr(token): users for token, users in sorted(
                shared.items(), key=lambda kv: repr(kv[0])
            )
        },
        "isolated_store_count": isolated_stores,
        "shared_store_count": shared_stores,
        "stores_saved": isolated_stores - shared_stores,
    }


def plan_spectrum(
    workload_factory: WorkloadFactory,
    arrivals: int,
    global_quota: int = 6,
    parallel: Optional[ParallelConfig] = None,
) -> Dict[str, PlanResult]:
    """Measure M, X, P, and G for one workload (a Figure 11 bar group)."""
    return {
        "M": run_mjoin(workload_factory, arrivals, parallel=parallel),
        "X": best_xjoin(workload_factory, arrivals, parallel=parallel),
        "P": run_acaching(
            workload_factory, arrivals, global_quota=0, parallel=parallel
        ),
        "G": run_acaching(
            workload_factory,
            arrivals,
            global_quota=global_quota,
            parallel=parallel,
        ),
    }
