"""Service-layer chaos: hostile clients against a live streaming server.

``repro chaos service --seed N`` boots a real :class:`~repro.service.
server.ServiceThread` on an ephemeral port and attacks it three ways
while a well-behaved workload keeps flowing:

* **slow clients** — sockets that trickle a request head byte by byte
  (or stall completely) to hold server-side readers hostage; the header
  deadline must 408 them without starving honest requests;
* **disconnect storms** — waves of connections (plain and mid-subscribe)
  that vanish without ceremony; the server must reap them without
  leaking subscribers or wedging the worker;
* **poison batches** — malformed JSON, unknown relations, wrong
  arities, absurd Content-Lengths, and NaN payloads. The first four are
  the HTTP layer's problem (4xx); NaN passes the wire checks and must
  be quarantined by the engine's ingress guard instead of killing the
  worker.

The verdict is behavioral: after the storm, the service must still be
ready, every acknowledged (202) update must survive into
``processed_seq``, and the honest client's retry discipline must have
absorbed any transient 429/503s. All randomness flows from one seeded
``random.Random``, so a failing run replays exactly.
"""

from __future__ import annotations

import json
import random
import socket
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ResilienceError
from repro.service.client import RetryPolicy, ServiceClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.server import ServiceThread

__all__ = [
    "ServiceChaosConfig",
    "ServiceChaosReport",
    "format_service_chaos_report",
    "run_service_chaos",
]


@dataclass(frozen=True)
class ServiceChaosConfig:
    """Attack intensities for one chaos run."""

    seed: int = 0
    honest_batches: int = 60          # well-behaved ingest batches
    batch_arrivals: int = 6           # arrivals per honest batch
    slow_clients: int = 4             # tricklers + stallers
    disconnect_waves: int = 3
    connections_per_wave: int = 8
    poison_batches: int = 12
    header_deadline_s: float = 0.5    # tight, so slow clients 408 fast
    queue_capacity_updates: int = 4096


@dataclass
class ServiceChaosReport:
    """What the storm did and how the service held up."""

    seed: int
    honest_acked: int = 0             # 202-acknowledged honest batches
    honest_throttled: int = 0         # 429/503 absorbed by retries
    honest_failed: int = 0            # honest batches lost for good
    slow_client_408s: int = 0
    slow_client_other: int = 0
    disconnects: int = 0
    poison_rejected_4xx: int = 0      # stopped at the HTTP layer
    poison_accepted: int = 0          # reached the engine (NaN case)
    quarantined: int = 0              # engine-side guard dead-letters
    engine_errors: int = 0
    acked_seq: int = -1
    processed_seq: int = -1
    ready_after: bool = False
    drained: bool = False
    tier_after: str = ""
    failures: List[str] = field(default_factory=list)

    @property
    def survived(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "honest_acked": self.honest_acked,
            "honest_throttled": self.honest_throttled,
            "honest_failed": self.honest_failed,
            "slow_client_408s": self.slow_client_408s,
            "slow_client_other": self.slow_client_other,
            "disconnects": self.disconnects,
            "poison_rejected_4xx": self.poison_rejected_4xx,
            "poison_accepted": self.poison_accepted,
            "quarantined": self.quarantined,
            "engine_errors": self.engine_errors,
            "acked_seq": self.acked_seq,
            "processed_seq": self.processed_seq,
            "ready_after": self.ready_after,
            "drained": self.drained,
            "tier_after": self.tier_after,
            "survived": self.survived,
            "failures": list(self.failures),
        }


_CHAIN_SPEC = {
    "kind": "chain",
    "params": {"window_r": 32, "window_s": 32, "window_t": 32},
}


def _slow_client(host: str, port: int, rng: random.Random,
                 report: ServiceChaosReport) -> None:
    """Trickle a request head; expect the header deadline to 408 us."""
    try:
        sock = socket.create_connection((host, port), timeout=5.0)
    except OSError:
        report.slow_client_other += 1
        return
    try:
        head = b"GET /healthz HTTP/1.1\r\nHost: chaos\r\n"
        # Send a prefix, then stall past the header deadline.
        cut = rng.randrange(1, len(head))
        sock.sendall(head[:cut])
        sock.settimeout(5.0)
        data = b""
        try:
            while b"\r\n\r\n" not in data:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                data += chunk
        except socket.timeout:
            pass
        if b" 408 " in data:
            report.slow_client_408s += 1
        else:
            report.slow_client_other += 1
    except OSError:
        report.slow_client_other += 1
    finally:
        sock.close()


def _disconnect_wave(host: str, port: int, query: str, n: int,
                     rng: random.Random,
                     report: ServiceChaosReport) -> None:
    """Open n connections (some mid-request, some mid-subscribe), drop all."""
    socks = []
    for i in range(n):
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
        except OSError:
            continue
        mode = rng.randrange(3)
        try:
            if mode == 0:
                # Vanish before sending anything.
                pass
            elif mode == 1:
                # Vanish mid-request-head.
                sock.sendall(b"POST /v1/queries/"
                             + query.encode() + b"/ingest HTTP/1.1\r\n")
            else:
                # Complete a WS handshake, then vanish mid-stream.
                sock.sendall(
                    (
                        f"GET /v1/queries/{query}/subscribe HTTP/1.1\r\n"
                        f"Host: chaos\r\n"
                        "Upgrade: websocket\r\n"
                        "Connection: Upgrade\r\n"
                        "Sec-WebSocket-Key: Y2hhb3MtY2hhb3MtY2hhb3M=\r\n"
                        "Sec-WebSocket-Version: 13\r\n\r\n"
                    ).encode("latin-1")
                )
        except OSError:
            pass
        socks.append(sock)
    for sock in socks:
        # Abort, don't linger: RST instead of FIN where the stack allows.
        try:
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                b"\x01\x00\x00\x00\x00\x00\x00\x00",
            )
        except OSError:
            pass
        sock.close()
        report.disconnects += 1


_POISON_BODIES = [
    b"{not json at all",
    b"[]",
    b'{"arrivals": "nope"}',
    b'{"arrivals": []}',
    b'{"arrivals": [["Z", [1]]]}',                  # unknown relation
    b'{"arrivals": [["R", [1, 2, 3, 4]]]}',         # arity mismatch
    b'{"arrivals": [["R", [true]]]}',               # bool is not a value
    b'{"arrivals": [["R", [NaN]]]}',                # passes wire, guard's job
]


def _poison_batch(client: ServiceClient, query: str, body: bytes,
                  report: ServiceChaosReport) -> None:
    import http.client

    connection = http.client.HTTPConnection(
        client.host, client.port, timeout=10.0
    )
    try:
        connection.request(
            "POST", f"/v1/queries/{query}/ingest", body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        response.read()
        if 400 <= response.status < 500:
            report.poison_rejected_4xx += 1
        elif response.status == 202:
            report.poison_accepted += 1
        else:
            report.failures.append(
                f"poison batch answered {response.status}: {body[:40]!r}"
            )
    except OSError as exc:
        report.failures.append(f"poison batch transport error: {exc}")
    finally:
        connection.close()


def run_service_chaos(
    config: Optional[ServiceChaosConfig] = None,
    wal_root: Optional[str] = None,
) -> ServiceChaosReport:
    """Boot a service, attack it, verify it survived. See module doc."""
    config = config if config is not None else ServiceChaosConfig()
    rng = random.Random(config.seed)
    report = ServiceChaosReport(seed=config.seed)
    if wal_root is None:
        wal_root = tempfile.mkdtemp(prefix="repro-service-chaos-")
    service_config = ServiceConfig(
        wal_root=wal_root,
        header_deadline_s=config.header_deadline_s,
        queue_capacity_updates=config.queue_capacity_updates,
    )
    thread = ServiceThread(service_config)
    url = thread.start()
    host, port = thread.config.host, thread.port
    try:
        client = ServiceClient(
            url, retry=RetryPolicy(max_retries=6, seed=config.seed)
        )
        client.register("chaos", _CHAIN_SPEC)

        poison_iter = iter(
            _POISON_BODIES[i % len(_POISON_BODIES)]
            for i in range(config.poison_batches)
        )
        slow_left = config.slow_clients
        waves_left = config.disconnect_waves
        value = 0
        for batch_index in range(config.honest_batches):
            # Interleave attacks between honest batches, seeded order.
            roll = rng.random()
            if slow_left and roll < 0.25:
                slow_left -= 1
                _slow_client(host, port, rng, report)
            elif waves_left and roll < 0.45:
                waves_left -= 1
                _disconnect_wave(
                    host, port, "chaos", config.connections_per_wave,
                    rng, report,
                )
            if batch_index % 5 == 0:
                poison = next(poison_iter, None)
                if poison is not None:
                    _poison_batch(client, "chaos", poison, report)
            arrivals = []
            for i in range(config.batch_arrivals):
                if i % 3 == 0:
                    value += 1
                relation = ("R", "S", "T")[i % 3]
                row = {
                    "R": (value,), "S": (value, value), "T": (value,)
                }[relation]
                arrivals.append((relation, row))
            try:
                status, payload = client.ingest("chaos", arrivals)
            except ServiceError:
                report.honest_failed += 1
                continue
            if status == 202:
                report.honest_acked += 1
            else:
                report.honest_failed += 1
        # Fire any poison bodies the interleave did not reach.
        for poison in poison_iter:
            _poison_batch(client, "chaos", poison, report)
        for _ in range(slow_left):
            _slow_client(host, port, rng, report)
        for _ in range(waves_left):
            _disconnect_wave(
                host, port, "chaos", config.connections_per_wave, rng, report
            )
        report.honest_throttled = client.throttled

        # Let the worker catch up, then interrogate the survivor.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status_payload = client.status("chaos")
            if status_payload["processed_seq"] >= status_payload["acked_seq"]:
                break
            time.sleep(0.1)
        status_payload = client.status("chaos")
        report.acked_seq = status_payload["acked_seq"]
        report.processed_seq = status_payload["processed_seq"]
        report.engine_errors = status_payload["engine_errors"]
        report.tier_after = status_payload["tier"]
        shedding = status_payload.get("shedding") or {}
        report.quarantined = shedding.get("quarantined", 0)
        ready, _ = client.readyz()
        report.ready_after = ready

        if report.processed_seq < report.acked_seq:
            report.failures.append(
                f"acknowledged updates lost: processed_seq "
                f"{report.processed_seq} < acked_seq {report.acked_seq}"
            )
        if not ready:
            report.failures.append("service not ready after the storm")
        if report.honest_failed:
            report.failures.append(
                f"{report.honest_failed} honest batches failed despite retries"
            )
        if report.poison_accepted and not report.quarantined:
            report.failures.append(
                "NaN poison was accepted but never quarantined by the guard"
            )
        drained = client.drain()
        report.drained = all(drained.get("drained", {}).values())
        if not report.drained:
            report.failures.append("drain did not empty every queue")
    finally:
        thread.stop()
    return report


def format_service_chaos_report(report: ServiceChaosReport) -> str:
    lines = [
        f"service chaos (seed {report.seed}): "
        + ("SURVIVED" if report.survived else "FAILED"),
        f"  honest batches    acked {report.honest_acked}, "
        f"throttle-retries {report.honest_throttled}, "
        f"failed {report.honest_failed}",
        f"  slow clients      408s {report.slow_client_408s}, "
        f"other {report.slow_client_other}",
        f"  disconnect storm  {report.disconnects} connections dropped",
        f"  poison batches    4xx {report.poison_rejected_4xx}, "
        f"accepted {report.poison_accepted}, "
        f"quarantined {report.quarantined}, "
        f"engine errors {report.engine_errors}",
        f"  after the storm   ready={report.ready_after} "
        f"tier={report.tier_after} acked_seq={report.acked_seq} "
        f"processed_seq={report.processed_seq} drained={report.drained}",
    ]
    for failure in report.failures:
        lines.append(f"  FAILURE: {failure}")
    return "\n".join(lines)


def verify_service_chaos(report: ServiceChaosReport) -> None:
    """Raise :class:`ResilienceError` if the service did not survive."""
    if not report.survived:
        raise ResilienceError(
            "service chaos failures: " + "; ".join(report.failures)
        )
