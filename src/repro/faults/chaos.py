"""The chaos harness: run any experiment under a fault schedule.

``python -m repro chaos <experiment> --seed N [--faults k=v,...]`` drives
two runs of the same workload through an adaptive A-Caching engine:

1. a **clean** run (no faults, no resilience) establishing ground truth —
   the emitted-result multiset and the baseline cost per update;
2. a **faulted** run: the update stream rewritten by a seeded
   :class:`FaultPlan`, the engine hardened by a
   :class:`ResilienceController`, and one cache entry deliberately
   poisoned mid-run so the coherence auditor has something to catch.

The report compares the two output multisets (keyed on relation + values,
not rids, so injected rows with fresh identities count only when they
change actual results) and surfaces every degradation counter. With the
same seed the entire faulted run — schedule, decisions, JSONL export —
is byte-identical across invocations.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.api import EngineConfig, build_adaptive_engine
from repro.core.acaching import ACaching, ACachingConfig
from repro.core.profiler import ProfilerConfig
from repro.core.reoptimizer import ReoptimizerConfig
from repro.errors import ResilienceError
from repro.faults.auditor import AuditorConfig
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.resilience import ResilienceConfig
from repro.faults.shedding import SheddingConfig
from repro.ordering.agreedy import OrderingConfig
from repro.parallel.engine import ParallelConfig, run_sharded
from repro.parallel.spec import ExperimentSpec
from repro.streams.events import OutputDelta, batched, canonical_delta
from repro.streams.tuples import CompositeTuple, Row
from repro.streams.workloads import (
    Workload,
    fig6_workload,
    fig7_workload,
    fig8_workload,
    fig9_workload,
    fig10_workload,
    fig12_workload,
    three_way_chain,
)

POISON_RID = 999_999_983  # a rid no RowFactory or FaultPlan ever assigns


@dataclass(frozen=True)
class ChaosExperiment:
    """One runnable experiment: a workload factory plus chaos defaults."""

    name: str
    build: Callable[[int], Workload]  # arrivals -> fresh workload
    arrivals: int                     # default arrival count
    burst_stream: str                 # stream the default burst rides on


CHAOS_EXPERIMENTS: Dict[str, ChaosExperiment] = {
    "demo": ChaosExperiment(
        "demo",
        lambda a: three_way_chain(
            t_multiplicity=5.0, window_r=96, window_s=96
        ),
        6_000,
        "R",
    ),
    "fig6": ChaosExperiment(
        "fig6", lambda a: fig6_workload(5), 8_000, "R"
    ),
    "fig7": ChaosExperiment(
        "fig7", lambda a: fig7_workload(0.5), 8_000, "R"
    ),
    "fig8": ChaosExperiment(
        "fig8", lambda a: fig8_workload(1.0), 8_000, "R"
    ),
    "fig9": ChaosExperiment(
        "fig9", lambda a: fig9_workload(4), 6_000, "R1"
    ),
    "fig10": ChaosExperiment(
        "fig10", lambda a: fig10_workload(128), 6_000, "R"
    ),
    "fig12": ChaosExperiment(
        "fig12",
        lambda a: fig12_workload(burst_after_arrivals=a // 2),
        12_000,
        "R",
    ),
}


def resolve_experiment(experiment: str) -> ChaosExperiment:
    """Resolve an experiment name: the built-in registry first, then the
    scenario library's ``scenario:``/``scenario-file:``/``trace:`` prefixes.

    The scenario import is lazy — :mod:`repro.scenarios.library` imports
    this module for :class:`ChaosExperiment`.
    """
    exp = CHAOS_EXPERIMENTS.get(experiment)
    if exp is not None:
        return exp
    if experiment.startswith(("scenario:", "scenario-file:", "trace:")):
        from repro.scenarios.library import resolve_chaos_experiment

        return resolve_chaos_experiment(experiment)
    raise ResilienceError(
        f"unknown chaos experiment {experiment!r}; available: "
        f"{sorted(CHAOS_EXPERIMENTS)}, any 'scenario:NAME' from the "
        "scenario library, or a 'scenario-file:PATH'/'trace:PATH' reference"
    )


def _build_workload(experiment: str, arrivals: int) -> Workload:
    """Module level so ``partial(_build_workload, name, n)`` pickles."""
    return resolve_experiment(experiment).build(arrivals)


@dataclass
class ChaosReport:
    """Everything one chaos run measured."""

    experiment: str
    seed: int
    arrivals: int
    spec: FaultSpec
    shards: int = 1
    backend: str = "serial"
    injected: Dict[str, int] = field(default_factory=dict)
    poisonings: int = 0
    summary: Dict[str, object] = field(default_factory=dict)
    clean_outputs: int = 0
    faulted_outputs: int = 0
    missing_outputs: int = 0   # in clean, absent from faulted
    extra_outputs: int = 0     # in faulted, absent from clean
    clean_throughput: float = 0.0
    faulted_throughput: float = 0.0
    decisions: List[Dict[str, object]] = field(default_factory=list)
    # Quarantined updates the dead-letter buffer retained, in global seq
    # order (``repro chaos --dump-dead-letters`` prints them).
    dead_letters: List[object] = field(default_factory=list)

    @property
    def discrepancy(self) -> int:
        """Symmetric-difference size of the two output multisets."""
        return self.missing_outputs + self.extra_outputs

    @property
    def discrepancy_ratio(self) -> float:
        return self.discrepancy / max(1, self.clean_outputs)


def parse_fault_overrides(text: Optional[str]) -> Dict[str, str]:
    """Parse a ``k=v,k=v`` ``--faults`` argument into an override dict."""
    if not text:
        return {}
    overrides: Dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ResilienceError(
                f"bad --faults entry {part!r}: expected key=value"
            )
        key, _, value = part.partition("=")
        overrides[key.strip()] = value.strip()
    return overrides


def _chaos_config(resilience: Optional[ResilienceConfig]) -> ACachingConfig:
    return ACachingConfig(
        profiler=ProfilerConfig(
            window=10, profile_probability=0.05, bloom_window_tuples=256
        ),
        reoptimizer=ReoptimizerConfig(
            reopt_interval_updates=1500,
            profiling_phase_updates=300,
            global_quota=6,
        ),
        ordering=OrderingConfig(interval_updates=1500),
        adaptive_ordering=True,
        resilience=resilience,
    )


def _engine(workload: Workload, resilience: Optional[ResilienceConfig]) -> ACaching:
    return build_adaptive_engine(
        workload, EngineConfig(tuning=_chaos_config(resilience))
    )


def _canonical(delta: OutputDelta) -> Tuple:
    """A rid-free identity for one result delta: values, not identities,
    so injected rows matter only when they change actual join results."""
    return canonical_delta(delta)


def _drive(
    engine: ACaching, updates: Iterator, batch_size: int = 1
) -> Counter:
    outputs: Counter = Counter()
    if batch_size > 1:
        for batch in batched(updates, batch_size):
            for deltas in engine.process_batch(batch):
                for delta in deltas:
                    outputs[_canonical(delta)] += 1
        return outputs
    for update in updates:
        for delta in engine.process(update):
            outputs[_canonical(delta)] += 1
    return outputs


def _poison_one_entry(engine: ACaching) -> bool:
    """Swap one cached row for a fake-rid impostor (deterministically the
    first entry of the first wired cache that has one). Returns success."""
    wiring = engine.reoptimizer.wiring
    for candidate_id in sorted(wiring.wired):
        wired = wiring.wired[candidate_id]
        for _key, value in wired.cache.store.entries():
            for identity, composite in value.items():
                relation = wired.cache.segment[0]
                rows = {r: composite.row(r) for r in composite.relations()}
                rows[relation] = Row(POISON_RID, rows[relation].values)
                value[identity] = CompositeTuple(rows)
                return True
    return False


def _run_chaos_sharded(
    experiment: str,
    exp: ChaosExperiment,
    seed: int,
    total: int,
    spec: FaultSpec,
    parallel: ParallelConfig,
    batch_size: int = 1,
) -> ChaosReport:
    """The sharded chaos run: both the clean and the faulted pass go
    through the parallel engine, so resilience is exercised per shard and
    the report's degradation counters are the merged fleet-wide view.

    The adaptivity decision log stays empty here — decisions are made
    inside worker processes; ``decision_count`` still surfaces via the
    merged stats.
    """
    factory = partial(_build_workload, experiment, total)

    clean = run_sharded(
        ExperimentSpec(
            workload_factory=factory,
            arrivals=total,
            engine=EngineConfig(
                tuning=_chaos_config(None)
            ).engine_spec("adaptive"),
            output_mode="canonical",
            batch_size=batch_size,
        ),
        parallel,
    )
    clean_outputs = clean.merged_canonical()
    clean_cost = clean.stats.total_work_us / max(
        1, clean.stats.updates_processed
    )

    resilience = ResilienceConfig(
        shedding=SheddingConfig(
            budget_us_per_update=max(1.0, clean_cost * 3.0),
            window_updates=200,
        ),
        auditor=AuditorConfig(
            audit_every_updates=400,
            entries_per_audit=6,
            rebuild_after_updates=1500,
        ),
    )
    faulted = run_sharded(
        ExperimentSpec(
            workload_factory=factory,
            arrivals=total,
            engine=EngineConfig(
                tuning=_chaos_config(resilience)
            ).engine_spec("adaptive"),
            fault_spec=spec,
            fault_seed=seed,
            output_mode="canonical",
            poison_at=spec.poison_at,
            batch_size=batch_size,
        ),
        parallel,
    )
    faulted_outputs = faulted.merged_canonical()

    # Injected-fault counts describe the global stream, which every shard
    # replays identically; one engine-free pass recovers them.
    plan = FaultPlan(spec, seed=seed)
    for _ in plan.updates(exp.build(total).updates(total)):
        pass

    missing = clean_outputs - faulted_outputs
    extra = faulted_outputs - clean_outputs
    return ChaosReport(
        experiment=experiment,
        seed=seed,
        arrivals=total,
        spec=spec,
        shards=parallel.shards,
        backend=parallel.backend,
        injected=dict(plan.counts),
        poisonings=faulted.stats.poisonings,
        summary=faulted.merged_resilience_summary(),
        clean_outputs=sum(clean_outputs.values()),
        faulted_outputs=sum(faulted_outputs.values()),
        missing_outputs=sum(missing.values()),
        extra_outputs=sum(extra.values()),
        clean_throughput=clean.stats.modeled_throughput,
        faulted_throughput=faulted.stats.modeled_throughput,
        decisions=[],
        dead_letters=faulted.merged_dead_letters(),
    )


def run_chaos(
    experiment: str,
    seed: int = 0,
    arrivals: Optional[int] = None,
    overrides: Optional[Dict[str, str]] = None,
    shards: int = 1,
    backend: str = "serial",
    batch_size: int = 1,
) -> ChaosReport:
    """Run one experiment clean and faulted; return the comparison.

    ``batch_size > 1`` drives both passes through micro-batched
    execution. Join results are per-update identical, but the faulted
    comparison may legitimately drift slightly: load shedding triggers on
    virtual time, which batching changes.
    """
    exp = resolve_experiment(experiment)
    total = arrivals if arrivals is not None else exp.arrivals
    if total <= 0:
        raise ResilienceError("arrivals must be positive")
    if batch_size < 1:
        raise ResilienceError(
            f"batch_size must be >= 1, got {batch_size}"
        )
    parallel = ParallelConfig(shards=shards, backend=backend)

    # Validate the fault schedule up front: a bad --faults value should
    # fail fast, not after a full clean run.
    spec = FaultSpec.default_schedule(exp.burst_stream, total)
    if overrides:
        spec = spec.with_overrides(overrides)

    if parallel.active:
        return _run_chaos_sharded(
            experiment, exp, seed, total, spec, parallel, batch_size
        )

    # Clean run: ground truth, and the shedding budget's baseline.
    clean_engine = _engine(exp.build(total), None)
    clean_outputs = _drive(
        clean_engine, exp.build(total).updates(total), batch_size
    )
    clean_ctx = clean_engine.ctx
    clean_cost = clean_ctx.clock.now_us / max(
        1, clean_ctx.metrics.updates_processed
    )

    plan = FaultPlan(spec, seed=seed)
    resilience = ResilienceConfig(
        shedding=SheddingConfig(
            budget_us_per_update=max(1.0, clean_cost * 3.0),
            window_updates=200,
        ),
        auditor=AuditorConfig(
            audit_every_updates=400,
            entries_per_audit=6,
            rebuild_after_updates=1500,
        ),
    )
    engine = _engine(exp.build(total), resilience)
    ctx = engine.ctx

    faulted_outputs: Counter = Counter()
    poisonings = 0
    processed = 0

    def maybe_poison() -> None:
        nonlocal poisonings
        if (
            spec.poison_at is not None
            and poisonings == 0
            and processed >= spec.poison_at
            and _poison_one_entry(engine)
        ):
            poisonings = 1

    stream = plan.updates(exp.build(total).updates(total))
    if batch_size > 1:
        # Poisoning lands at the first batch boundary past poison_at.
        for batch in batched(stream, batch_size):
            for deltas in engine.process_batch(batch):
                for delta in deltas:
                    faulted_outputs[_canonical(delta)] += 1
            processed += len(batch)
            maybe_poison()
    else:
        for update in stream:
            for delta in engine.process(update):
                faulted_outputs[_canonical(delta)] += 1
            processed += 1
            maybe_poison()

    missing = clean_outputs - faulted_outputs
    extra = faulted_outputs - clean_outputs
    assert engine.resilience is not None
    return ChaosReport(
        experiment=experiment,
        seed=seed,
        arrivals=total,
        spec=spec,
        injected=dict(plan.counts),
        poisonings=poisonings,
        summary=engine.resilience.summary(),
        clean_outputs=sum(clean_outputs.values()),
        faulted_outputs=sum(faulted_outputs.values()),
        missing_outputs=sum(missing.values()),
        extra_outputs=sum(extra.values()),
        clean_throughput=clean_ctx.metrics.throughput(
            clean_ctx.clock.now_seconds
        ),
        faulted_throughput=ctx.metrics.throughput(ctx.clock.now_seconds),
        decisions=[r.to_dict() for r in ctx.obs.decisions.entries()],
        dead_letters=(
            list(engine.resilience.guard.dead_letters.entries())
            if engine.resilience.guard is not None
            else []
        ),
    )


def format_chaos_report(report: ChaosReport) -> str:
    """Human-readable chaos summary for the CLI."""
    s = report.summary
    sharding = (
        f", {report.shards} shards ({report.backend})"
        if report.shards > 1
        else ""
    )
    lines = [
        f"chaos {report.experiment} — seed {report.seed}, "
        f"{report.arrivals} arrivals{sharding}",
        "=" * 60,
        "injected faults:",
    ]
    for kind, count in sorted(report.injected.items()):
        lines.append(f"  {kind:<20} {count:>8}")
    lines.append(f"  {'cache_poisonings':<20} {report.poisonings:>8}")
    lines.append("degradation response:")
    lines.append(f"  {'quarantined':<20} {s.get('quarantined', 0):>8}")
    for reason, count in sorted(
        dict(s.get("quarantined_by_reason", {})).items()
    ):
        lines.append(f"    {reason:<18} {count:>8}")
    lines.append(f"  {'shed updates':<20} {s.get('shed_total', 0):>8}")
    for stream, count in sorted(dict(s.get("shed_by_stream", {})).items()):
        lines.append(f"    ∆{stream:<17} {count:>8}")
    lines.append(
        f"  {'coherence detached':<20} {s.get('coherence_detached', 0):>8}"
    )
    lines.append(
        f"  {'coherence rebuilt':<20} {s.get('coherence_rebuilt', 0):>8}"
    )
    lines.append(
        f"  degraded at end: {'yes' if s.get('degraded') else 'no'}"
    )
    lines.append("result fidelity vs clean run:")
    lines.append(f"  {'clean outputs':<20} {report.clean_outputs:>8}")
    lines.append(f"  {'faulted outputs':<20} {report.faulted_outputs:>8}")
    lines.append(
        f"  {'discrepancy':<20} {report.discrepancy:>8}  "
        f"(missing {report.missing_outputs}, extra {report.extra_outputs}; "
        f"{report.discrepancy_ratio:.1%} of clean)"
    )
    lines.append(
        f"  throughput: clean {report.clean_throughput:,.0f}/s, "
        f"faulted {report.faulted_throughput:,.0f}/s"
    )
    return "\n".join(lines)


def format_dead_letters(report: ChaosReport) -> str:
    """The retained quarantined updates, one line each, oldest first."""
    lines = [
        f"dead letters ({len(report.dead_letters)} retained):",
    ]
    if not report.dead_letters:
        lines.append("  (none)")
        return "\n".join(lines)
    for entry in report.dead_letters:
        sign = "+" if entry.sign == "INSERT" else "-"
        lines.append(
            f"  seq={entry.seq:<8} {sign}∆{entry.relation:<4} "
            f"rid={entry.rid:<12} {entry.reason}"
        )
    return "\n".join(lines)


def chaos_to_jsonl(report: ChaosReport) -> str:
    """Deterministic JSONL export: one summary line + every decision."""
    summary_payload = {
        "kind": "chaos_summary",
        "experiment": report.experiment,
        "seed": report.seed,
        "arrivals": report.arrivals,
        "shards": report.shards,
        "backend": report.backend,
        "injected": dict(sorted(report.injected.items())),
        "poisonings": report.poisonings,
        "resilience": report.summary,
        "clean_outputs": report.clean_outputs,
        "faulted_outputs": report.faulted_outputs,
        "missing_outputs": report.missing_outputs,
        "extra_outputs": report.extra_outputs,
        "discrepancy": report.discrepancy,
        "discrepancy_ratio": report.discrepancy_ratio,
    }
    lines = [json.dumps(summary_payload, sort_keys=True)]
    for decision in report.decisions:
        lines.append(json.dumps(decision, sort_keys=True))
    return "\n".join(lines)
