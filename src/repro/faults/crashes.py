"""Crash-injection chaos: kill a journaled run, recover it, verify.

``python -m repro chaos <experiment> --crash <kind>`` drives the same
experiment twice:

1. a **clean** run — no journaling, no crash — establishing the exact
   output multiset and final window contents;
2. a **recorded** run under a :class:`~repro.recovery.manager.Recorder`
   that is killed at a seeded point, damaged on disk according to the
   crash kind, restored through :class:`~repro.recovery.manager.
   RecoveryManager`, and resumed to completion.

The report's one-line verdict is whether the recovered run's outputs and
windows are **identical** to the clean run's — the durability contract.

Crash kinds model the distinct ways a real kill hurts the on-disk state:

* ``at_event`` — plain ``kill -9`` between updates: every WAL byte past
  the last fsync is lost (truncate to ``durable_offset``).
* ``torn_tail`` — the OS flushed part of a page before the kill: the WAL
  ends mid-record, exercising the reader's framing check and the
  restore-time repair truncation.
* ``during_checkpoint`` — the kill lands inside a checkpoint write: a
  partial snapshot file sits newest in the store and must fail its
  checksum so restore falls back to the previous valid checkpoint.

Sharded runs (``--shards N``) go through the
:class:`~repro.parallel.supervisor.Supervisor` instead: a seeded shard's
worker is killed with ``os._exit`` mid-run and the supervisor restarts
it from its last checkpoint — the ``at_event`` kind at process
granularity (a real kill naturally produces the torn tail too).

With ``--wal-dir DIR`` the journal survives the command and a
``manifest.json`` describing the run is dropped next to it, so
``python -m repro recover DIR`` can restore and verify it later — with
``--no-recover`` the command stops right after the damage, leaving a
genuinely crashed directory for ``recover`` to pick up.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import tempfile
from collections import Counter
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, Optional, Tuple

from repro.api import EngineConfig
from repro.errors import RecoveryError, ReproError
from repro.faults.chaos import (
    _build_workload,
    _chaos_config,
    _engine,
    resolve_experiment,
)
from repro.parallel.engine import ParallelConfig, run_sharded
from repro.parallel.spec import ExperimentSpec
from repro.parallel.supervisor import (
    SupervisedRun,
    SupervisionConfig,
    Supervisor,
    WorkerCrash,
)
from repro.recovery.manager import (
    CACHE_MODES,
    Recorder,
    RecoveryConfig,
    RecoveryManager,
    _window_rows,
    build_payload,
)
from repro.recovery.snapshot import encode_snapshot
from repro.streams.events import canonical_delta

CRASH_KINDS = ("at_event", "torn_tail", "during_checkpoint")

MANIFEST_NAME = "manifest.json"


@dataclass
class CrashReport:
    """One crash-and-recover cycle, measured."""

    experiment: str
    seed: int
    arrivals: int
    kind: str
    cache_mode: str
    checkpoint_interval: int
    fsync_every: int
    shards: int = 1
    kill_at: int = 0               # processed-update count the kill fired at
    crash_shard: Optional[int] = None
    checkpoint_seq: int = 0        # checkpoint restore resumed from
    replayed: int = 0              # WAL records replayed past it
    wal_torn: bool = False
    skipped_checkpoints: int = 0   # corrupt/partial snapshots skipped
    restarts: int = 0              # supervised restarts (sharded runs)
    fallbacks: int = 0             # circuit-broken shards (sharded runs)
    outputs_clean: int = 0
    outputs_recovered: int = 0
    outputs_identical: bool = False
    windows_identical: bool = False
    recovered: bool = True         # False when --no-recover left the crash
    wal_dir: Optional[str] = None

    @property
    def verified(self) -> bool:
        return self.outputs_identical and self.windows_identical


def _seeded_kill_point(seed: int, total_updates: int) -> int:
    """A deterministic kill index in the middle half of the stream."""
    rng = random.Random(seed)
    low = max(1, total_updates // 4)
    high = max(low, (3 * total_updates) // 4)
    return rng.randint(low, high)


def _clean_serial(
    experiment: str, total: int
) -> Tuple[Counter, Dict[str, list]]:
    """Ground truth: outputs + final windows of an unjournaled run."""
    exp = resolve_experiment(experiment)
    engine = _engine(exp.build(total), None)
    outputs: Counter = Counter()
    for update in exp.build(total).updates(total):
        for delta in engine.process(update):
            outputs[canonical_delta(delta)] += 1
    return outputs, _window_rows(engine)


def _run_recorded_until_crash(
    experiment: str,
    total: int,
    config: RecoveryConfig,
    kill_at: int,
    kind: str,
) -> int:
    """Drive a journaled run to the kill point, then damage the disk.

    Returns the seq of the last update the doomed process handled. The
    engine object is simply dropped — exactly what ``kill -9`` leaves.
    """
    exp = resolve_experiment(experiment)
    engine = _engine(exp.build(total), None)
    recorder = Recorder(engine, config)
    outputs: Counter = Counter()
    processed = 0
    crash_seq = 0
    for update in exp.build(total).updates(total):
        recorder.log(update)
        for delta in engine.process(update):
            outputs[canonical_delta(delta)] += 1
        processed += 1
        recorder.mark_processed()
        if recorder.due():
            recorder.checkpoint(
                update.seq,
                {"canonical": dict(outputs), "processed": processed},
            )
        if processed >= kill_at:
            crash_seq = update.seq
            break
    if kind == "during_checkpoint":
        # The kill lands inside a checkpoint write: the WAL was synced
        # first (the Recorder's ordering), then the snapshot file got
        # half its bytes. It must fail its checksum on restore.
        recorder.wal.sync()
        payload = build_payload(
            engine,
            config.cache_mode,
            crash_seq,
            {"canonical": dict(outputs), "processed": processed},
        )
        data = encode_snapshot(payload)
        with open(recorder.store.path_for(crash_seq), "wb") as handle:
            handle.write(data[: max(1, len(data) // 2)])
    recorder.crash()  # truncate the WAL back to its last fsync
    if kind == "torn_tail":
        # Some of the lost page made it to disk: a record cut mid-payload.
        with open(config.wal_path, "ab") as handle:
            handle.write(b'120 {"relation":"R","rid":')
    return crash_seq


def _resume_serial(
    experiment: str, total: int, config: RecoveryConfig
) -> Tuple[Counter, Dict[str, list], "RecoveredState"]:
    """Restore from ``config``'s directory and run to completion."""
    exp = resolve_experiment(experiment)
    manager = RecoveryManager(
        config, builder=lambda: _engine(exp.build(total), None)
    )
    restored = manager.restore()
    engine = restored.plan
    state = restored.runner_state or {}
    outputs: Counter = Counter(state.get("canonical") or {})
    processed = state.get("processed", 0)
    for _seq, deltas in restored.replayed:
        for delta in deltas:
            outputs[canonical_delta(delta)] += 1
        processed += 1
    recorder = Recorder(engine, config)
    recorder.mark_processed(len(restored.replayed))
    for update in exp.build(total).updates(total):
        if update.seq <= restored.last_seq:
            continue
        recorder.log(update)
        for delta in engine.process(update):
            outputs[canonical_delta(delta)] += 1
        processed += 1
        recorder.mark_processed()
        if recorder.due():
            recorder.checkpoint(
                update.seq,
                {"canonical": dict(outputs), "processed": processed},
            )
    recorder.close()
    return outputs, _window_rows(engine), restored


def _experiment_spec(experiment: str, total: int) -> ExperimentSpec:
    return ExperimentSpec(
        workload_factory=partial(_build_workload, experiment, total),
        arrivals=total,
        engine=EngineConfig(tuning=_chaos_config(None)).engine_spec(
            "adaptive"
        ),
        output_mode="canonical",
        collect_windows=True,
    )


def _run_crash_sharded(
    experiment: str,
    seed: int,
    total: int,
    config: RecoveryConfig,
    shards: int,
) -> Tuple[SupervisedRun, "ParallelRun", int, int]:
    """Supervised sharded crash: kill one worker, let supervision heal."""
    spec = _experiment_spec(experiment, total)
    clean = run_sharded(spec, ParallelConfig(shards=shards, backend="serial"))
    rng = random.Random(seed)
    crash_shard = rng.randrange(shards)
    per_shard = max(2, clean.stats.updates_processed // shards)
    kill_after = rng.randint(max(1, per_shard // 4), max(1, (3 * per_shard) // 4))
    supervisor = Supervisor(
        SupervisionConfig(
            heartbeat_every_updates=200, backoff_base_s=0.01, backoff_max_s=0.1
        ),
        recovery=config,
    )
    run = supervisor.run(
        spec, shards, crashes=[WorkerCrash(crash_shard, kill_after)]
    )
    return run, clean, crash_shard, kill_after


def write_manifest(wal_dir: str, report: CrashReport) -> str:
    """Persist the run parameters ``repro recover`` needs next to the WAL."""
    manifest = {
        "experiment": report.experiment,
        "seed": report.seed,
        "arrivals": report.arrivals,
        "kind": report.kind,
        "cache_mode": report.cache_mode,
        "checkpoint_interval": report.checkpoint_interval,
        "fsync_every": report.fsync_every,
        "shards": report.shards,
    }
    path = os.path.join(wal_dir, MANIFEST_NAME)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def read_manifest(wal_dir: str) -> Dict[str, object]:
    path = os.path.join(wal_dir, MANIFEST_NAME)
    if not os.path.exists(path):
        raise RecoveryError(
            f"no {MANIFEST_NAME} in {wal_dir!r} — was this directory "
            f"written by `repro chaos --crash ... --wal-dir`?"
        )
    with open(path, "r", encoding="utf-8") as handle:
        try:
            return json.load(handle)
        except ValueError as error:
            raise RecoveryError(
                f"unreadable {MANIFEST_NAME} in {wal_dir!r}: {error}"
            ) from None


def run_crash_chaos(
    experiment: str,
    seed: int = 0,
    arrivals: Optional[int] = None,
    kind: str = "at_event",
    cache_mode: str = "snapshot",
    checkpoint_interval: int = 500,
    fsync_every: int = 32,
    wal_dir: Optional[str] = None,
    shards: int = 1,
    recover: bool = True,
) -> CrashReport:
    """One full crash-and-recover cycle; see the module docstring."""
    try:
        exp = resolve_experiment(experiment)
    except ReproError as exc:
        raise RecoveryError(str(exc)) from None
    if kind not in CRASH_KINDS:
        raise RecoveryError(
            f"crash kind must be one of {CRASH_KINDS}, got {kind!r}"
        )
    if cache_mode not in CACHE_MODES:
        raise RecoveryError(
            f"cache mode must be one of {CACHE_MODES}, got {cache_mode!r}"
        )
    total = arrivals if arrivals is not None else max(
        1_000, exp.arrivals // 4
    )
    if shards > 1 and kind != "at_event":
        raise RecoveryError(
            f"sharded crash chaos only supports kind 'at_event' (a worker "
            f"kill); {kind!r} damages files a single serial journal owns"
        )
    if not recover and shards > 1:
        raise RecoveryError(
            "--no-recover needs a serial run: the supervisor recovers "
            "crashed shards as part of the run itself"
        )
    if not recover and wal_dir is None:
        raise RecoveryError(
            "--no-recover needs --wal-dir: the crashed journal must "
            "outlive the command for `repro recover` to restore it"
        )

    owns_dir = wal_dir is None
    directory = wal_dir or tempfile.mkdtemp(prefix="repro-crash-")
    config = RecoveryConfig(
        wal_dir=directory,
        checkpoint_interval=checkpoint_interval,
        fsync_every=fsync_every,
        cache_mode=cache_mode,
    )
    report = CrashReport(
        experiment=experiment,
        seed=seed,
        arrivals=total,
        kind=kind,
        cache_mode=cache_mode,
        checkpoint_interval=checkpoint_interval,
        fsync_every=fsync_every,
        shards=shards,
        wal_dir=None if owns_dir else directory,
    )
    try:
        if shards > 1:
            run, clean, crash_shard, kill_after = _run_crash_sharded(
                experiment, seed, total, config, shards
            )
            report.crash_shard = crash_shard
            report.kill_at = kill_after
            report.restarts = run.total_restarts
            report.fallbacks = len(run.fallbacks)
            clean_outputs = clean.merged_canonical()
            recovered_outputs = run.merged_canonical()
            report.outputs_identical = recovered_outputs == clean_outputs
            report.windows_identical = (
                run.merged_windows() == clean.merged_windows()
            )
            report.outputs_clean = sum(clean_outputs.values())
            report.outputs_recovered = sum(recovered_outputs.values())
        else:
            clean_outputs, clean_windows = _clean_serial(experiment, total)
            total_updates = sum(
                1 for _ in exp.build(total).updates(total)
            )
            report.kill_at = _seeded_kill_point(seed, total_updates)
            _run_recorded_until_crash(
                experiment, total, config, report.kill_at, kind
            )
            if not recover:
                report.recovered = False
                report.outputs_clean = sum(clean_outputs.values())
                write_manifest(directory, report)
                return report
            outputs, windows, restored = _resume_serial(
                experiment, total, config
            )
            report.checkpoint_seq = restored.checkpoint_seq
            report.replayed = len(restored.replayed)
            report.wal_torn = restored.wal_torn
            report.skipped_checkpoints = restored.skipped_checkpoints
            report.outputs_identical = outputs == clean_outputs
            report.windows_identical = windows == clean_windows
            report.outputs_clean = sum(clean_outputs.values())
            report.outputs_recovered = sum(outputs.values())
        if not owns_dir:
            write_manifest(directory, report)
        return report
    finally:
        if owns_dir:
            shutil.rmtree(directory, ignore_errors=True)


def recover_and_verify(wal_dir: str) -> CrashReport:
    """``repro recover DIR``: restore a journaled directory and verify.

    Reads the manifest ``chaos --crash --wal-dir`` left, restores from
    whatever checkpoints + WAL survive, resumes the deterministic source
    to completion, and checks the result against a fresh clean run.
    Idempotent: recovering an already-recovered directory replays its
    (complete) journal and verifies again.
    """
    manifest = read_manifest(wal_dir)
    experiment = str(manifest["experiment"])
    try:
        resolve_experiment(experiment)
    except ReproError:
        raise RecoveryError(
            f"manifest names unknown experiment {experiment!r}"
        ) from None
    total = int(manifest["arrivals"])
    shards = int(manifest.get("shards", 1))
    config = RecoveryConfig(
        wal_dir=wal_dir,
        checkpoint_interval=int(manifest["checkpoint_interval"]),
        fsync_every=int(manifest["fsync_every"]),
        cache_mode=str(manifest["cache_mode"]),
    )
    report = CrashReport(
        experiment=experiment,
        seed=int(manifest.get("seed", 0)),
        arrivals=total,
        kind=str(manifest.get("kind", "at_event")),
        cache_mode=config.cache_mode,
        checkpoint_interval=config.checkpoint_interval,
        fsync_every=config.fsync_every,
        shards=shards,
        wal_dir=wal_dir,
    )
    if shards > 1:
        spec = _experiment_spec(experiment, total)
        clean = run_sharded(
            spec, ParallelConfig(shards=shards, backend="serial")
        )
        run = Supervisor(SupervisionConfig(), recovery=config).run(
            spec, shards
        )
        clean_outputs = clean.merged_canonical()
        recovered_outputs = run.merged_canonical()
        report.outputs_identical = recovered_outputs == clean_outputs
        report.windows_identical = (
            run.merged_windows() == clean.merged_windows()
        )
        report.outputs_clean = sum(clean_outputs.values())
        report.outputs_recovered = sum(recovered_outputs.values())
        return report
    clean_outputs, clean_windows = _clean_serial(experiment, total)
    outputs, windows, restored = _resume_serial(experiment, total, config)
    report.checkpoint_seq = restored.checkpoint_seq
    report.replayed = len(restored.replayed)
    report.wal_torn = restored.wal_torn
    report.skipped_checkpoints = restored.skipped_checkpoints
    report.outputs_identical = outputs == clean_outputs
    report.windows_identical = windows == clean_windows
    report.outputs_clean = sum(clean_outputs.values())
    report.outputs_recovered = sum(outputs.values())
    return report


def format_crash_report(report: CrashReport) -> str:
    """Human-readable crash-chaos summary for the CLI."""
    sharding = f", {report.shards} shards" if report.shards > 1 else ""
    lines = [
        f"crash chaos {report.experiment} — kind {report.kind}, seed "
        f"{report.seed}, {report.arrivals} arrivals{sharding}",
        "=" * 60,
        f"journal: mode={report.cache_mode} "
        f"checkpoint_interval={report.checkpoint_interval} "
        f"fsync_every={report.fsync_every}",
    ]
    if report.shards > 1:
        lines.append(
            f"killed shard {report.crash_shard} after {report.kill_at} "
            f"updates; supervisor restarts={report.restarts} "
            f"fallbacks={report.fallbacks}"
        )
    else:
        lines.append(f"killed after {report.kill_at} processed updates")
    if not report.recovered:
        lines.append(
            f"left crashed (--no-recover); restore with: "
            f"python -m repro recover {report.wal_dir}"
        )
        return "\n".join(lines)
    if report.shards == 1:
        lines.append(
            f"restore: checkpoint seq {report.checkpoint_seq}, "
            f"{report.replayed} WAL records replayed, "
            f"{report.skipped_checkpoints} corrupt checkpoints skipped, "
            f"torn tail: {'yes' if report.wal_torn else 'no'}"
        )
    lines.append(
        f"outputs: clean {report.outputs_clean}, recovered "
        f"{report.outputs_recovered} — "
        f"{'identical' if report.outputs_identical else 'DIVERGED'}"
    )
    lines.append(
        f"windows: "
        f"{'identical' if report.windows_identical else 'DIVERGED'}"
    )
    lines.append(
        f"verdict: {'RECOVERED' if report.verified else 'FAILED'}"
    )
    if report.wal_dir:
        lines.append(f"journal kept at {report.wal_dir}")
    return "\n".join(lines)
