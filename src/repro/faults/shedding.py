"""Overload detection and deterministic load shedding.

The :class:`LoadShedder` watches the virtual-clock cost of processing,
averaged over windows of ``window_updates`` admitted updates. When the
average exceeds ``budget_us_per_update`` the engine enters *degraded*
mode: a fixed fraction of arriving inserts is dropped (every ``stride``-th
insert — deterministic, no randomness), and the deletes paired with shed
inserts are silently dropped too (even after recovery), so shedding never
manufactures orphans. Mode transitions are recorded in the obs decision
log; per-update sheds are counters only, so heavy shedding cannot flood
the bounded log.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.errors import ConfigError
from repro.obs.decisions import SHED_START, SHED_STOP
from repro.streams.events import Sign, Update


@dataclass(frozen=True)
class SheddingConfig:
    """Overload budget and response.

    With ``wall_clock`` set, the per-update cost is measured in real
    elapsed microseconds (``perf_counter``) instead of the virtual
    clock. That makes the trigger track *actual* machine lag — what a
    live service cares about — at the price of determinism: identical
    runs may shed different updates. Batch-equivalence and recovery
    byte-identity guarantees therefore only hold with the default
    virtual-clock trigger (see ``docs/robustness.md``).
    """

    budget_us_per_update: float = 400.0  # virtual µs per admitted update
    window_updates: int = 200            # averaging window
    shed_fraction: float = 0.5           # inserts dropped while degraded
    recover_windows: int = 2             # consecutive good windows to exit
    recover_factor: float = 0.8          # hysteresis: good = below this × budget
    wall_clock: bool = False             # measure real time, not virtual


class LoadShedder:
    """Sheds arriving updates when processing cost exceeds the budget."""

    def __init__(self, config: Optional[SheddingConfig] = None):
        self.config = config if config is not None else SheddingConfig()
        if self.config.window_updates <= 0:
            raise ConfigError(
                "shedding window_updates must be positive, got "
                f"{self.config.window_updates}"
            )
        if not 0.0 < self.config.shed_fraction <= 1.0:
            raise ConfigError(
                "shedding shed_fraction must be in (0, 1], got "
                f"{self.config.shed_fraction}"
            )
        self.degraded = False
        self.shed_by_stream: Dict[str, int] = {}
        self.shed_total = 0
        self.shed_events = 0  # shed_start transitions
        self._stride = max(1, round(1.0 / self.config.shed_fraction))
        self._insert_tick = 0
        self._shed_rids: Set[int] = set()
        self._window_updates = 0
        self._window_started_us: Optional[float] = None
        self._good_windows = 0

    def should_shed(self, update: Update, ctx) -> bool:
        """True if this update must be dropped before processing."""
        if update.sign is Sign.DELETE:
            # The pair of a shed insert: the row never entered the window,
            # so its delete must vanish too (it would be an orphan).
            if update.row.rid in self._shed_rids:
                self._shed_rids.discard(update.row.rid)
                return True
            return False
        if not self.degraded:
            return False
        self._insert_tick += 1
        if self._insert_tick % self._stride:
            return False
        self._shed_rids.add(update.row.rid)
        self.shed_total += 1
        self.shed_by_stream[update.relation] = (
            self.shed_by_stream.get(update.relation, 0) + 1
        )
        if ctx.obs.enabled:
            ctx.obs.registry.counter(
                "repro_shed_updates_total", {"relation": update.relation}
            ).inc()
        return True

    def _now_us(self, ctx) -> float:
        if self.config.wall_clock:
            return time.perf_counter_ns() / 1000.0
        return ctx.clock.now_us

    def after_update(self, ctx) -> None:
        """Account one admitted update; check the window budget."""
        now_us = self._now_us(ctx)
        if self._window_started_us is None:
            self._window_started_us = now_us
        self._window_updates += 1
        if self._window_updates < self.config.window_updates:
            return
        avg = (now_us - self._window_started_us) / self._window_updates
        self._window_started_us = now_us
        self._window_updates = 0
        budget = self.config.budget_us_per_update
        if not self.degraded:
            if avg > budget:
                self.degraded = True
                self.shed_events += 1
                self._good_windows = 0
                ctx.obs.decisions.record(
                    now_us,
                    SHED_START,
                    "engine",
                    reason=(
                        f"avg {avg:.0f}µs/update over budget {budget:.0f}µs"
                    ),
                )
            return
        if avg <= budget * self.config.recover_factor:
            self._good_windows += 1
            if self._good_windows >= self.config.recover_windows:
                self.degraded = False
                self._good_windows = 0
                ctx.obs.decisions.record(
                    now_us,
                    SHED_STOP,
                    "engine",
                    reason=(
                        f"avg {avg:.0f}µs/update back under "
                        f"{budget * self.config.recover_factor:.0f}µs"
                    ),
                )
        else:
            self._good_windows = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "degraded" if self.degraded else "normal"
        return f"LoadShedder({mode}, shed={self.shed_total})"
