"""Fault injection and graceful degradation (the resilience subsystem).

Two halves:

* :mod:`repro.faults.plan` — a deterministic, seeded :class:`FaultPlan`
  that rewrites any update stream with duplicates, orphaned/dropped
  deletes, bounded reordering, value corruption, and rate bursts;
* the degradation side — :class:`IngressGuard` (quarantine to a bounded
  dead-letter buffer), :class:`LoadShedder` (overload detection and
  deterministic shedding), and :class:`CoherenceAuditor` (sampled cache
  cross-checks with detach/rebuild) — composed by
  :class:`ResilienceController` behind the executors' ``admit`` /
  ``after_update`` hooks.

``python -m repro chaos`` (see :mod:`repro.faults.chaos`) runs any
experiment under a fault schedule and reports the damage.
"""

from repro.faults.auditor import AuditorConfig, CoherenceAuditor
from repro.faults.guard import DeadLetterBuffer, IngressGuard
from repro.faults.plan import CORRUPT, CorruptValue, FaultPlan, FaultSpec
from repro.faults.resilience import ResilienceConfig, ResilienceController
from repro.faults.shedding import LoadShedder, SheddingConfig

__all__ = [
    "AuditorConfig",
    "CoherenceAuditor",
    "CORRUPT",
    "CorruptValue",
    "DeadLetterBuffer",
    "FaultPlan",
    "FaultSpec",
    "IngressGuard",
    "LoadShedder",
    "ResilienceConfig",
    "ResilienceController",
    "SheddingConfig",
]
