"""Deterministic, seeded fault injection for update streams.

A :class:`FaultPlan` wraps any ``Iterable[Update]`` (normally
``Workload.updates``) and rewrites it according to a :class:`FaultSpec`:

* **duplicate inserts** — an insert is re-emitted immediately after the
  original, and when the source later deletes that row the delete is also
  emitted twice, so a correctly hardened engine converges back to the
  clean run's state;
* **dropped deletes** — a source delete is swallowed, leaving the row in
  the window forever (a real divergence the chaos driver measures);
* **orphaned deletes** — a delete for a row that was never inserted;
* **corrupted values** — one attribute value of an insert is replaced by
  the unhashable :class:`CorruptValue` sentinel;
* **out-of-order delivery** — an update is held back and released within a
  bounded skew, never past the delete of its own row (per-rid
  insert-before-delete order is preserved);
* **rate bursts** — each insert of one stream spawns extra fresh-rid
  copies for a while, whose deletes follow after a linger period,
  modelling a transient overload.

All randomness flows through one ``random.Random(seed)`` consumed in a
fixed order, so the same (spec, seed, source) triple always yields the
same faulted stream — the property the chaos CLI's determinism check and
the CI smoke job rely on.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass
from random import Random
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import ResilienceError
from repro.streams.events import Sign, Update
from repro.streams.tuples import Row

# Injected rows get rids far above anything a RowFactory hands out, so
# they can never collide with real window tuples.
INJECTED_RID_BASE = 1_000_000_000
ORPHAN_RID_BASE = 2_000_000_000


class CorruptValue:
    """An unhashable sentinel standing in for a garbled attribute value."""

    __slots__ = ()
    __hash__ = None  # type: ignore[assignment]  # unhashable on purpose

    def __repr__(self) -> str:
        return "<corrupt>"


CORRUPT = CorruptValue()


@dataclass(frozen=True)
class FaultSpec:
    """Which faults to inject, and how often."""

    duplicate_prob: float = 0.0    # re-emit an insert (and later its delete)
    drop_delete_prob: float = 0.0  # swallow a source delete
    orphan_delete_prob: float = 0.0  # delete a row that never existed
    corrupt_prob: float = 0.0      # garble one value of an insert
    reorder_prob: float = 0.0      # hold an update back a few slots
    reorder_skew: int = 4          # max updates a held update lags behind
    burst_stream: Optional[str] = None
    burst_start: int = 0           # source-update index the burst begins at
    burst_length: int = 0          # source updates the burst lasts
    burst_copies: int = 0          # extra inserts per bursty source insert
    burst_linger: int = 64         # emitted updates before a copy is deleted
    poison_at: Optional[int] = None  # processed-update index for cache poisoning

    _PROBS = (
        "duplicate_prob", "drop_delete_prob", "orphan_delete_prob",
        "corrupt_prob", "reorder_prob",
    )

    def validate(self) -> None:
        """Raise :class:`ResilienceError` on out-of-range fields."""
        for name in self._PROBS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ResilienceError(
                    f"{name} must be a probability in [0, 1], got {value!r}"
                )
        for name in ("reorder_skew", "burst_start", "burst_length",
                     "burst_copies", "burst_linger"):
            value = getattr(self, name)
            if value < 0:
                raise ResilienceError(f"{name} must be non-negative")
        if self.reorder_prob and self.reorder_skew < 1:
            raise ResilienceError("reorder_skew must be >= 1 when reordering")
        if self.poison_at is not None and self.poison_at < 1:
            raise ResilienceError("poison_at must be >= 1")

    def with_overrides(self, overrides: Dict[str, object]) -> "FaultSpec":
        """A copy with ``overrides`` applied (unknown keys raise)."""
        fields = {f.name: f for f in dataclasses.fields(self)}
        coerced: Dict[str, object] = {}
        for key, raw in overrides.items():
            if key not in fields or key.startswith("_"):
                raise ResilienceError(
                    f"unknown fault parameter {key!r}; known: "
                    f"{sorted(n for n in fields if not n.startswith('_'))}"
                )
            try:
                if key == "burst_stream":
                    coerced[key] = None if raw in ("", "none") else str(raw)
                elif key.endswith("_prob"):
                    coerced[key] = float(raw)  # type: ignore[arg-type]
                elif key == "poison_at":
                    coerced[key] = (
                        None if raw in ("", "none") else int(raw)  # type: ignore[arg-type]
                    )
                else:
                    coerced[key] = int(raw)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise ResilienceError(
                    f"bad value for fault parameter {key!r}: {raw!r}"
                ) from None
        spec = dataclasses.replace(self, **coerced)
        spec.validate()
        return spec

    @classmethod
    def default_schedule(
        cls, burst_stream: Optional[str], arrivals: int
    ) -> "FaultSpec":
        """The chaos CLI's default mix, scaled to the run length:
        duplicates + orphaned deletes + dropped deletes + corruption +
        one rate burst + one cache poisoning."""
        return cls(
            duplicate_prob=0.01,
            drop_delete_prob=0.003,
            orphan_delete_prob=0.005,
            corrupt_prob=0.002,
            reorder_prob=0.01,
            reorder_skew=4,
            burst_stream=burst_stream,
            burst_start=max(1, arrivals // 3),
            burst_length=max(1, arrivals // 10),
            burst_copies=3,
            burst_linger=64,
            poison_at=max(1, arrivals // 2),
        )


class FaultPlan:
    """A seeded rewrite of one update stream according to a FaultSpec."""

    def __init__(self, spec: FaultSpec, seed: int = 0):
        spec.validate()
        self.spec = spec
        self.seed = seed
        self._rng = Random(seed)
        self._next_injected_rid = INJECTED_RID_BASE
        self._next_orphan_rid = ORPHAN_RID_BASE
        # Rids whose insert was duplicated: their source delete is emitted
        # twice, adjacent, so a hardened engine can pair the extras up.
        self._dup_rids: Set[int] = set()
        self.counts: Dict[str, int] = {
            "duplicates": 0,
            "duplicate_deletes": 0,
            "dropped_deletes": 0,
            "orphans": 0,
            "corrupted": 0,
            "reordered": 0,
            "burst_inserts": 0,
            "burst_deletes": 0,
        }
        self._seq = 0
        self._emitted = 0
        self._held: Optional[Update] = None
        self._held_for = 0
        self._burst_queue: Deque[Tuple[int, Update]] = deque()

    @property
    def injected_total(self) -> int:
        """Updates the plan added or perturbed, across all fault kinds."""
        return sum(self.counts.values())

    # ------------------------------------------------------------------
    # the stream rewrite
    # ------------------------------------------------------------------
    def updates(self, source: Iterable[Update]) -> Iterator[Update]:
        """Yield the faulted version of ``source`` (seq renumbered)."""
        for index, update in enumerate(source):
            for out in self._on_source(index, update):
                yield self._renumber(out)
        for out in self._flush():
            yield self._renumber(out)

    def _renumber(self, update: Update) -> Update:
        self._seq += 1
        self._emitted += 1
        return update._replace(seq=self._seq)

    def _on_source(self, index: int, update: Update) -> List[Update]:
        spec, rng = self.spec, self._rng
        batch: List[Update] = []

        # 1. burst copies whose linger expired get their deletes first.
        while self._burst_queue and self._burst_queue[0][0] <= self._emitted:
            batch.append(self._burst_queue.popleft()[1])
            self.counts["burst_deletes"] += 1

        # 2. release a held update: when its hold expires, or eagerly when
        # the current update deletes the same row (so per-rid
        # insert-before-delete order survives the reorder).
        if self._held is not None:
            self._held_for -= 1
            if self._held_for <= 0 or (
                update.sign is Sign.DELETE
                and update.row.rid == self._held.row.rid
            ):
                batch.extend(self._release(self._held))
                self._held = None

        # 3. maybe hold the current update back (bounded skew).
        if (
            self._held is None
            and spec.reorder_prob
            and rng.random() < spec.reorder_prob
        ):
            self._held = update
            self._held_for = rng.randint(1, spec.reorder_skew)
            self.counts["reordered"] += 1
            return batch

        if update.sign is Sign.DELETE:
            batch.extend(self._on_delete(update))
        else:
            batch.extend(self._on_insert(index, update))
        return batch

    def _on_delete(self, update: Update) -> List[Update]:
        spec, rng = self.spec, self._rng
        if update.row.rid in self._dup_rids:
            # The insert was duplicated: the delete rides twice, adjacent.
            self._dup_rids.discard(update.row.rid)
            self.counts["duplicate_deletes"] += 1
            return [update, update]
        if spec.drop_delete_prob and rng.random() < spec.drop_delete_prob:
            self.counts["dropped_deletes"] += 1
            return []
        return [update]

    def _on_insert(self, index: int, update: Update) -> List[Update]:
        spec, rng = self.spec, self._rng
        batch: List[Update] = []
        corrupted = False
        if spec.corrupt_prob and rng.random() < spec.corrupt_prob:
            slot = rng.randrange(len(update.row.values))
            values = tuple(
                CORRUPT if i == slot else v
                for i, v in enumerate(update.row.values)
            )
            # A fresh Row: mutating values in place would also garble the
            # CountWindow's copy (same object) and break its later delete.
            update = update._replace(row=Row(update.row.rid, values))
            self.counts["corrupted"] += 1
            corrupted = True
        batch.append(update)
        if (
            not corrupted
            and spec.duplicate_prob
            and rng.random() < spec.duplicate_prob
        ):
            batch.append(update)
            self._dup_rids.add(update.row.rid)
            self.counts["duplicates"] += 1
        if spec.orphan_delete_prob and rng.random() < spec.orphan_delete_prob:
            rid = self._next_orphan_rid
            self._next_orphan_rid += 1
            batch.append(
                Update(
                    update.relation,
                    Row(rid, update.row.values),
                    Sign.DELETE,
                    0,
                )
            )
            self.counts["orphans"] += 1
        if (
            spec.burst_stream == update.relation
            and spec.burst_copies > 0
            and spec.burst_start <= index < spec.burst_start + spec.burst_length
        ):
            for _ in range(spec.burst_copies):
                rid = self._next_injected_rid
                self._next_injected_rid += 1
                copy = Row(rid, update.row.values)
                batch.append(Update(update.relation, copy, Sign.INSERT, 0))
                self._burst_queue.append(
                    (
                        self._emitted + spec.burst_linger,
                        Update(update.relation, copy, Sign.DELETE, 0),
                    )
                )
                self.counts["burst_inserts"] += 1
        return batch

    def _release(self, held: Update) -> List[Update]:
        """Emit a previously held update; a held delete of a duplicated
        rid still expands to the adjacent pair (the guard consumes one)."""
        if held.sign is Sign.DELETE and held.row.rid in self._dup_rids:
            self._dup_rids.discard(held.row.rid)
            self.counts["duplicate_deletes"] += 1
            return [held, held]
        return [held]

    def _flush(self) -> List[Update]:
        batch: List[Update] = []
        if self._held is not None:
            batch.extend(self._release(self._held))
            self._held = None
        while self._burst_queue:
            batch.append(self._burst_queue.popleft()[1])
            self.counts["burst_deletes"] += 1
        return batch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, injected={self.injected_total})"
