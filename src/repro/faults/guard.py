"""Ingress validation: quarantine malformed updates instead of raising.

The guard sits in front of an executor's ``process``. Every update is
checked against the relation catalog (known relation, schema arity,
hashable non-NaN values) and against the live window state (duplicate
inserts, orphaned deletes). Anything that fails goes to a bounded
dead-letter buffer and is recorded in the obs decision log; the engine
never sees it.

Duplicate pairing: a :class:`~repro.faults.plan.FaultPlan` duplicate
re-emits the insert adjacent to the original and later emits the source
delete twice. The guard quarantines the extra insert and remembers one
*pending extra delete* for that rid; the first matching delete to arrive
is then quarantined too, so exactly one insert and one delete reach the
engine — the clean run's state, reached through a faulted stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.errors import ConfigError
from repro.obs.decisions import DEAD_LETTER_OVERFLOW, QUARANTINE
from repro.relations.relation import Relation
from repro.streams.events import Sign, Update

# Quarantine reasons.
UNKNOWN_RELATION = "unknown_relation"
ARITY_MISMATCH = "arity_mismatch"
CORRUPT_VALUE = "corrupt_value"
DUPLICATE_INSERT = "duplicate_insert"
DUPLICATE_DELETE = "duplicate_delete"
ORPHAN_DELETE = "orphan_delete"


@dataclass(frozen=True)
class QuarantinedUpdate:
    """One dead-lettered update: enough to debug, cheap to retain."""

    relation: str
    rid: int
    sign: str
    reason: str
    seq: int


class DeadLetterBuffer:
    """A bounded ring of quarantined updates (oldest dropped first)."""

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ConfigError(
                f"dead_letter_capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._entries: Deque[QuarantinedUpdate] = deque(maxlen=capacity)
        self.total = 0
        self.dropped = 0

    def add(self, entry: QuarantinedUpdate) -> None:
        if len(self._entries) == self.capacity:
            self.dropped += 1
        self._entries.append(entry)
        self.total += 1

    def entries(self) -> List[QuarantinedUpdate]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeadLetterBuffer({len(self)}/{self.capacity}, total={self.total})"


class IngressGuard:
    """Validates updates against catalog and window state at ingress."""

    def __init__(
        self,
        relations: Dict[str, Relation],
        dead_letters: Optional[DeadLetterBuffer] = None,
    ):
        self.relations = relations
        self.dead_letters = (
            dead_letters if dead_letters is not None else DeadLetterBuffer()
        )
        self.by_reason: Dict[str, int] = {}
        self._pending_extra_deletes: Dict[int, int] = {}

    @property
    def quarantined(self) -> int:
        """Total updates dead-lettered so far."""
        return self.dead_letters.total

    def admit(self, update: Update, ctx) -> Optional[str]:
        """None to admit; otherwise the quarantine reason (recorded)."""
        relation = self.relations.get(update.relation)
        if relation is None:
            return self._quarantine(update, UNKNOWN_RELATION, ctx)
        if len(update.row.values) != len(relation.schema.attributes):
            return self._quarantine(update, ARITY_MISMATCH, ctx)
        try:
            hash(update.row.values)
        except TypeError:
            return self._quarantine(update, CORRUPT_VALUE, ctx)
        for value in update.row.values:
            if value != value:  # NaN: comparable garbage, also poison
                return self._quarantine(update, CORRUPT_VALUE, ctx)
        rid = update.row.rid
        if update.sign is Sign.INSERT:
            if relation.live_row(rid) is not None:
                self._pending_extra_deletes[rid] = (
                    self._pending_extra_deletes.get(rid, 0) + 1
                )
                return self._quarantine(update, DUPLICATE_INSERT, ctx)
            return None
        pending = self._pending_extra_deletes.get(rid, 0)
        if pending:
            if pending == 1:
                del self._pending_extra_deletes[rid]
            else:
                self._pending_extra_deletes[rid] = pending - 1
            return self._quarantine(update, DUPLICATE_DELETE, ctx)
        if relation.live_row(rid) is None:
            return self._quarantine(update, ORPHAN_DELETE, ctx)
        return None

    def _quarantine(self, update: Update, reason: str, ctx) -> str:
        at_capacity = len(self.dead_letters) == self.dead_letters.capacity
        if at_capacity:
            # The buffer is about to evict its oldest entry. The drop is
            # itself a decision worth auditing: quarantined evidence is
            # being discarded to bound memory.
            oldest = self.dead_letters.entries()[0]
            ctx.obs.decisions.record(
                ctx.clock.now_us,
                DEAD_LETTER_OVERFLOW,
                f"∆{oldest.relation}",
                reason=(
                    f"buffer at {self.dead_letters.capacity}; dropped "
                    f"oldest rid={oldest.rid} ({oldest.reason})"
                ),
            )
        self.dead_letters.add(
            QuarantinedUpdate(
                relation=update.relation,
                rid=update.row.rid,
                sign=update.sign.name,
                reason=reason,
                seq=update.seq,
            )
        )
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1
        ctx.obs.decisions.record(
            ctx.clock.now_us,
            QUARANTINE,
            f"∆{update.relation}",
            reason=(
                f"{reason} rid={update.row.rid} sign={update.sign.name}"
            ),
        )
        if ctx.obs.enabled:
            ctx.obs.registry.counter(
                "repro_quarantined_updates_total",
                {"relation": update.relation, "reason": reason},
            ).inc()
        return reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IngressGuard(quarantined={self.quarantined})"
