"""The resilience controller: one object gating an executor's ingress.

Composes the three degradation mechanisms — ingress guard (quarantine),
load shedder (overload), coherence auditor (poisoned caches) — behind two
hooks the executors call: ``admit(update)`` before processing and
``after_update()`` once an update completes. An executor with no
controller attached pays nothing (a single ``is None`` test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.faults.auditor import AuditorConfig, CoherenceAuditor
from repro.faults.guard import DeadLetterBuffer, IngressGuard
from repro.faults.shedding import LoadShedder, SheddingConfig
from repro.streams.events import Update


@dataclass(frozen=True)
class ResilienceConfig:
    """Which degradation mechanisms to enable, and their tunables.

    ``shedding`` / ``auditor`` set to None disable that mechanism; the
    guard is a bool because it has a single knob (buffer capacity).
    """

    guard: bool = True
    dead_letter_capacity: int = 256
    shedding: Optional[SheddingConfig] = field(
        default_factory=SheddingConfig
    )
    auditor: Optional[AuditorConfig] = field(default_factory=AuditorConfig)


class ResilienceController:
    """Gates one executor's ingress and runs its degradation machinery."""

    def __init__(self, executor, config: Optional[ResilienceConfig] = None):
        self.config = config if config is not None else ResilienceConfig()
        self.executor = executor
        self.guard: Optional[IngressGuard] = None
        if self.config.guard:
            self.guard = IngressGuard(
                executor.relations,
                DeadLetterBuffer(self.config.dead_letter_capacity),
            )
        self.shedder: Optional[LoadShedder] = None
        if self.config.shedding is not None:
            self.shedder = LoadShedder(self.config.shedding)
        self.auditor: Optional[CoherenceAuditor] = None
        if self.config.auditor is not None:
            self.auditor = CoherenceAuditor(executor, self.config.auditor)

    def bind_wiring(self, wiring, state_listener=None) -> None:
        """Point the auditor at the plan's cache wiring (no-op without
        an auditor — e.g. XJoin plans, which have no caches to audit)."""
        if self.auditor is not None:
            self.auditor.bind_wiring(wiring, state_listener=state_listener)

    # ------------------------------------------------------------------
    # the two executor hooks
    # ------------------------------------------------------------------
    def admit(self, update: Update) -> bool:
        """False if the update must be dropped (quarantined or shed)."""
        ctx = self.executor.ctx
        if self.guard is not None and self.guard.admit(update, ctx) is not None:
            return False
        if self.shedder is not None and self.shedder.should_shed(update, ctx):
            return False
        return True

    def after_update(self) -> None:
        """Run post-update machinery for one admitted update."""
        ctx = self.executor.ctx
        if self.shedder is not None:
            self.shedder.after_update(ctx)
        if self.auditor is not None:
            self.auditor.after_update(ctx)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True while the overload detector is shedding load."""
        return self.shedder is not None and self.shedder.degraded

    @property
    def quarantined(self) -> int:
        return self.guard.quarantined if self.guard is not None else 0

    @property
    def shed_total(self) -> int:
        return self.shedder.shed_total if self.shedder is not None else 0

    def summary(self) -> Dict[str, object]:
        """Counters for reports: quarantine/shed/detach/rebuild state."""
        out: Dict[str, object] = {
            "quarantined": self.quarantined,
            "quarantined_by_reason": dict(
                sorted(self.guard.by_reason.items())
            ) if self.guard is not None else {},
            "dead_letter_dropped": (
                self.guard.dead_letters.dropped
                if self.guard is not None else 0
            ),
            "shed_total": self.shed_total,
            "shed_by_stream": dict(
                sorted(self.shedder.shed_by_stream.items())
            ) if self.shedder is not None else {},
            "shed_events": (
                self.shedder.shed_events if self.shedder is not None else 0
            ),
            "degraded": self.degraded,
            "coherence_detached": (
                self.auditor.detached if self.auditor is not None else 0
            ),
            "coherence_rebuilt": (
                self.auditor.rebuilt if self.auditor is not None else 0
            ),
            "coherence_rebuild_failures": (
                self.auditor.rebuild_failures
                if self.auditor is not None else 0
            ),
            "coherence_entries_checked": (
                self.auditor.entries_checked
                if self.auditor is not None else 0
            ),
        }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResilienceController(quarantined={self.quarantined}, "
            f"shed={self.shed_total}, degraded={self.degraded})"
        )
