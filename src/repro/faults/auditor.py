"""Sampling cache coherence auditor: detach poisoned caches, rebuild later.

Definition 3.1 promises present-key equality with the true segment join
and never completeness, so *dropping* a cache is always safe — which makes
"detach and fall back to the cache-free MJoin pipeline" the universally
correct response to a cache caught lying. The auditor cross-checks a few
store entries per audit round against recomputed truth:

* every segment relation is bound in each cached composite;
* each referenced row is still live in its window, with equal values;
* the intra-segment join predicates hold;
* the composite re-derives the entry key it is stored under.

Any violation (or any exception while checking — a poisoned entry may be
arbitrarily malformed) detaches the whole cache, records a
``coherence_detach`` decision, and schedules a rebuild: after
``rebuild_after_updates`` more updates the candidate is re-attached (and
repopulates through the normal miss path), unless the re-optimizer already
re-selected it or the pipeline's ordering changed underneath it.

Sampling is deterministic — a rotating cursor over the store's entries,
no randomness — so chaos runs stay reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigError, PlanError
from repro.obs.decisions import COHERENCE_DETACH, COHERENCE_REBUILD


@dataclass(frozen=True)
class AuditorConfig:
    """How often to audit, how much to check, when to rebuild."""

    audit_every_updates: int = 500   # audit round cadence
    entries_per_audit: int = 4       # store entries checked per cache
    rebuild_after_updates: int = 2000  # quarantine length before re-attach


class CoherenceAuditor:
    """Cross-checks wired cache entries against recomputed truth."""

    def __init__(
        self,
        executor,
        config: Optional[AuditorConfig] = None,
        state_listener=None,
    ):
        self.executor = executor
        self.config = config if config is not None else AuditorConfig()
        if self.config.audit_every_updates <= 0:
            raise ConfigError(
                "auditor audit_every_updates must be positive, got "
                f"{self.config.audit_every_updates}"
            )
        self.wiring = None
        # The re-optimizer (when adaptive): keeps its candidate-state
        # machine consistent with auditor-driven detach/attach.
        self.state_listener = state_listener
        self._updates = 0
        self._cursor = 0
        self._pending_rebuilds: List[Tuple[int, object]] = []
        self.entries_checked = 0
        self.detached = 0
        self.rebuilt = 0
        self.rebuild_failures = 0

    def bind_wiring(self, wiring, state_listener=None) -> None:
        """Point the auditor at the live cache wiring (and re-optimizer)."""
        self.wiring = wiring
        if state_listener is not None:
            self.state_listener = state_listener

    def after_update(self, ctx) -> None:
        """Advance the audit clock; run due rebuilds and audit rounds."""
        self._updates += 1
        if self.wiring is None:
            return
        if self._pending_rebuilds:
            self._run_due_rebuilds(ctx)
        if self._updates % self.config.audit_every_updates == 0:
            self._audit_round(ctx)

    # ------------------------------------------------------------------
    # auditing
    # ------------------------------------------------------------------
    def _audit_round(self, ctx) -> None:
        cm = ctx.cost_model
        for candidate_id in sorted(self.wiring.wired):
            wired = self.wiring.wired.get(candidate_id)
            if wired is None:
                continue
            entries = list(wired.cache.store.entries())
            if not entries:
                continue
            start = self._cursor % len(entries)
            checked = min(len(entries), self.config.entries_per_audit)
            poisoned = False
            for i in range(checked):
                key, value = entries[(start + i) % len(entries)]
                ctx.clock.charge(cm.cache_probe)
                self.entries_checked += 1
                if not self._entry_ok(wired.cache, key, value):
                    poisoned = True
                    break
            self._cursor += self.config.entries_per_audit
            if poisoned:
                self._detach(candidate_id, wired, ctx)

    def _entry_ok(self, cache, key, value) -> bool:
        try:
            graph = self.executor.graph
            segment = cache.segment
            intra = [
                p for p in graph.predicates
                if p.left.relation in segment and p.right.relation in segment
            ]
            for composite in value.values():
                for relation in segment:
                    row = composite.row(relation)  # KeyError → violation
                    live = self.executor.relations[relation].live_row(row.rid)
                    if live is None or live.values != row.values:
                        return False
                for pred in intra:
                    left = composite.value(
                        pred.left.relation, graph.attr_position(pred.left)
                    )
                    right = composite.value(
                        pred.right.relation, graph.attr_position(pred.right)
                    )
                    if left != right:
                        return False
                seg = composite
                if composite.relations() != frozenset(segment):
                    seg = composite.project(segment)
                if cache.key.entry_key(seg) != key:
                    return False
            return True
        except Exception:
            # A poisoned entry can be malformed in ways the checks above
            # never anticipated; any blow-up is itself the violation.
            return False

    # ------------------------------------------------------------------
    # detach / rebuild
    # ------------------------------------------------------------------
    def _detach(self, candidate_id: str, wired, ctx) -> None:
        candidate = wired.candidate
        self.wiring.detach(candidate_id)
        self.detached += 1
        ctx.obs.decisions.record(
            ctx.clock.now_us,
            COHERENCE_DETACH,
            candidate_id,
            reason=(
                "audit found entry inconsistent with recomputed truth; "
                "falling back to cache-free pipeline segment"
            ),
        )
        if ctx.obs.enabled:
            ctx.obs.registry.counter(
                "repro_coherence_detach_total", {"candidate": candidate_id}
            ).inc()
        if self.state_listener is not None:
            self.state_listener.on_cache_quarantined(candidate_id)
        self._pending_rebuilds.append(
            (self._updates + self.config.rebuild_after_updates, candidate)
        )

    def _run_due_rebuilds(self, ctx) -> None:
        due = [p for p in self._pending_rebuilds if p[0] <= self._updates]
        if not due:
            return
        self._pending_rebuilds = [
            p for p in self._pending_rebuilds if p[0] > self._updates
        ]
        for _, candidate in due:
            candidate_id = candidate.candidate_id
            if candidate_id in self.wiring.wired:
                # The re-optimizer re-selected it during the quarantine;
                # the store was rebuilt through the normal attach path.
                self.rebuilt += 1
                ctx.obs.decisions.record(
                    ctx.clock.now_us,
                    COHERENCE_REBUILD,
                    candidate_id,
                    reason="already re-attached by the re-optimizer",
                )
                continue
            try:
                self.wiring.attach(candidate)
            except PlanError as error:
                # Orderings moved on; the candidate no longer fits.
                self.rebuild_failures += 1
                ctx.obs.decisions.record(
                    ctx.clock.now_us,
                    COHERENCE_REBUILD,
                    candidate_id,
                    reason=f"rebuild abandoned: {error}",
                )
                continue
            self.rebuilt += 1
            ctx.obs.decisions.record(
                ctx.clock.now_us,
                COHERENCE_REBUILD,
                candidate_id,
                reason="re-attached after quarantine; store repopulates "
                       "through the miss path",
            )
            if self.state_listener is not None:
                self.state_listener.on_cache_rebuilt(candidate_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CoherenceAuditor(checked={self.entries_checked}, "
            f"detached={self.detached}, rebuilt={self.rebuilt})"
        )
