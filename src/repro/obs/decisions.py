"""The adaptivity decision log: *why* every cache was added or dropped.

The re-optimizer (and the runtime memory enforcer) record one
:class:`DecisionRecord` per cache add/drop/reject with everything that
justified the decision at that instant: the benefit/cost estimates from
the cost model, the profiler statistics they were computed from (``dij``,
``cij``, miss probability, maintenance rate), and the memory quota state.
A record is self-contained — reconstructing its
:class:`~repro.core.cost_model.CacheStatistics` and re-running the cost
model reproduces the recorded benefit/cost exactly, which is the
audit-trail property the log exists for.

Unlike the tracer, the log is **always on**: decisions happen at
re-optimization frequency (seconds of virtual time apart), so recording
them costs nothing measurable, and series runners can annotate throughput
curves with "cache X added here" markers without any opt-in.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

DEFAULT_CAPACITY = 4096

# Decision actions.
ATTACH = "attach"            # selection wired a cache in
DETACH = "detach"            # selection unwired a cache
MONITOR_DROP = "monitor_drop"    # continuous monitor saw negative net
MEMORY_REJECT = "memory_reject"  # selected but denied pages at admission
MEMORY_EVICT = "memory_evict"    # dropped at run time to fit the budget
KEEP = "keep"                # re-selected; left wired (not logged by default)
# Resilience actions (repro.faults): same log, so chaos runs interleave
# degradation events with the re-optimizer's own decisions chronologically.
QUARANTINE = "quarantine"              # ingress guard dead-lettered an update
SHED_START = "shed_start"              # overload detector began dropping load
SHED_STOP = "shed_stop"                # overload cleared; shedding ended
COHERENCE_DETACH = "coherence_detach"      # auditor dropped a poisoned cache
COHERENCE_REBUILD = "coherence_rebuild"    # auditor re-attach after quarantine
# Recovery actions (repro.recovery + parallel supervision): checkpoints,
# restores, and worker restarts land in the same chronological log.
CHECKPOINT = "checkpoint"              # snapshot written at an update seq
RECOVER = "recover"                    # restore from checkpoint + WAL replay
WORKER_RESTART = "worker_restart"      # supervisor restarted a shard worker
WORKER_FALLBACK = "worker_fallback"    # circuit breaker: shard ran serially
# Global adaptivity plane (repro.parallel.adaptivity): the coordinator's
# per-epoch merged re-optimization and elastic resharding events.
PLAN_PUSH = "plan_push"                # coordinator pushed a global cache plan
RESHARD = "reshard"                    # run repartitioned to a new shard count
EPOCH_STALL = "epoch_stall"            # a shard left an epoch barrier hanging
# Service actions (repro.service): the ingestion server's own overload
# ladder and lifecycle events join the same chronological log.
TIER_CHANGE = "tier_change"            # degradation ladder moved a step
DRAIN = "drain"                        # server began (or finished) draining
DEAD_LETTER_OVERFLOW = "dead_letter_overflow"  # quarantine dropped its oldest


@dataclass(frozen=True)
class DecisionRecord:
    """One cache add/drop decision, with its full justification."""

    seq: int                     # log-wide sequence number
    t_us: float                  # virtual-clock time of the decision
    action: str                  # one of the module's action constants
    candidate_id: str
    reason: str                  # free-text: which mechanism decided
    reopt_seq: int               # metrics.reoptimizations at decision time
    query_id: str = ""           # owning query in multi-tenant engines
    benefit: Optional[float] = None   # µs/sec saved (cost model estimate)
    cost: Optional[float] = None      # µs/sec of maintenance
    # The profiler statistics the estimates were computed from:
    segment_d: Tuple[float, ...] = ()   # dij per segment operator
    segment_c: Tuple[float, ...] = ()   # cij per segment operator
    d_out: Optional[float] = None
    miss_prob: Optional[float] = None
    maintenance_rate: Optional[float] = None
    key_width: Optional[int] = None
    anchor_size: Optional[int] = None
    # Memory quota state at decision time:
    memory_used_bytes: Optional[int] = None
    memory_budget_bytes: Optional[int] = None
    expected_bytes: Optional[float] = None

    @property
    def net(self) -> Optional[float]:
        """benefit − cost, when both estimates were recorded."""
        if self.benefit is None or self.cost is None:
            return None
        return self.benefit - self.cost

    def statistics(self):
        """Rebuild the :class:`CacheStatistics` this decision used.

        Returns None for records made without profiler statistics (e.g. a
        memory eviction of a cache whose stats were unavailable).
        """
        if not self.segment_d or self.miss_prob is None:
            return None
        from repro.core.cost_model import CacheStatistics

        return CacheStatistics(
            segment_d=tuple(self.segment_d),
            segment_c=tuple(self.segment_c),
            d_out=self.d_out if self.d_out is not None else 0.0,
            miss_prob=self.miss_prob,
            maintenance_rate=(
                self.maintenance_rate
                if self.maintenance_rate is not None else 0.0
            ),
            key_width=self.key_width if self.key_width is not None else 1,
            anchor_size=self.anchor_size if self.anchor_size is not None else 0,
        )

    def to_dict(self) -> Dict[str, object]:
        """Flat dict form used by the JSONL exporter."""
        return {
            "seq": self.seq,
            "kind": "decision",
            "t_us": self.t_us,
            "action": self.action,
            "candidate_id": self.candidate_id,
            "reason": self.reason,
            "reopt_seq": self.reopt_seq,
            "query_id": self.query_id,
            "benefit": self.benefit,
            "cost": self.cost,
            "net": self.net,
            "segment_d": list(self.segment_d),
            "segment_c": list(self.segment_c),
            "d_out": self.d_out,
            "miss_prob": self.miss_prob,
            "maintenance_rate": self.maintenance_rate,
            "key_width": self.key_width,
            "anchor_size": self.anchor_size,
            "memory_used_bytes": self.memory_used_bytes,
            "memory_budget_bytes": self.memory_budget_bytes,
            "expected_bytes": self.expected_bytes,
        }


class DecisionLog:
    """A bounded, always-on log of adaptivity decisions."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, query_id: str = ""):
        if capacity <= 0:
            raise ValueError("decision log capacity must be positive")
        self.capacity = capacity
        # Every record from this log is stamped with the owning query's id
        # ("" for single-query engines), so merged multi-tenant logs stay
        # attributable per tenant.
        self.query_id = query_id
        self._records: Deque[DecisionRecord] = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0

    def record(
        self,
        t_us: float,
        action: str,
        candidate_id: str,
        reason: str,
        reopt_seq: int = 0,
        stats=None,
        benefit: Optional[float] = None,
        cost: Optional[float] = None,
        memory_used_bytes: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
        expected_bytes: Optional[float] = None,
    ) -> DecisionRecord:
        """Append one decision; ``stats`` is an optional CacheStatistics."""
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._seq += 1
        record = DecisionRecord(
            seq=self._seq,
            t_us=t_us,
            action=action,
            candidate_id=candidate_id,
            reason=reason,
            reopt_seq=reopt_seq,
            query_id=self.query_id,
            benefit=benefit,
            cost=cost,
            segment_d=tuple(stats.segment_d) if stats is not None else (),
            segment_c=tuple(stats.segment_c) if stats is not None else (),
            d_out=stats.d_out if stats is not None else None,
            miss_prob=stats.miss_prob if stats is not None else None,
            maintenance_rate=(
                stats.maintenance_rate if stats is not None else None
            ),
            key_width=stats.key_width if stats is not None else None,
            anchor_size=stats.anchor_size if stats is not None else None,
            memory_used_bytes=memory_used_bytes,
            memory_budget_bytes=memory_budget_bytes,
            expected_bytes=expected_bytes,
        )
        self._records.append(record)
        return record

    def entries(self) -> List[DecisionRecord]:
        """All retained records, oldest first."""
        return list(self._records)

    def since(self, seq: int) -> List[DecisionRecord]:
        """Records with sequence number strictly greater than ``seq``.

        The series runner uses this to attribute decisions to the sample
        window they fired in.
        """
        return [r for r in self._records if r.seq > seq]

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent record (0 when empty)."""
        return self._seq

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecisionLog({len(self)} records, dropped={self.dropped})"
