"""A named-metrics registry: counters, gauges, fixed-bucket histograms.

Subsumes and extends the flat counter bag of
:class:`repro.engine.metrics.Metrics`: where ``Metrics`` keeps the handful
of hot-path totals the engine has always tracked (and stays the stable
API for them), the registry holds arbitrarily many *named*, *labelled*
instruments — per-operator virtual-time histograms, per-cache
probe/hit/maintenance counters, per-pipeline update latency — and renders
them in a Prometheus-style text format (:mod:`repro.obs.export`).

Instruments are get-or-create: ``registry.counter("x", {"cache": "c"})``
always returns the same object for the same name + labels, so call sites
can either cache the handle (hot paths) or re-look it up (cold paths).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

# Upper bucket bounds, in microseconds of virtual time, chosen to resolve
# the engine's per-update / per-operator costs (single probes are ~1-10 µs,
# a nested-loop scan can run to milliseconds). +Inf is implicit.
DEFAULT_TIME_BUCKETS_US: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can move both ways (memory in use, quota state, …)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge by ``amount`` (either sign)."""
        self.value += amount


class Histogram:
    """A fixed-bucket histogram (cumulative counts, Prometheus-style).

    ``buckets`` are upper bounds in ascending order; a ``+Inf`` bucket is
    implicit. ``observe`` is O(#buckets) with no allocation, cheap enough
    for per-operator timing when observability is on.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "inf_count",
                 "sum", "count")

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_US,
    ):
        ordered = tuple(float(b) for b in buckets)
        if list(ordered) != sorted(ordered) or len(set(ordered)) != len(ordered):
            raise ValueError("histogram buckets must be strictly increasing")
        if not ordered:
            raise ValueError("a histogram needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.buckets = ordered
        self.counts = [0] * len(ordered)
        self.inf_count = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.inf_count += 1

    def cumulative_counts(self) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending with +Inf."""
        running = 0
        result: List[Tuple[float, int]] = []
        for bound, count in zip(self.buckets, self.counts):
            running += count
            result.append((bound, running))
        result.append((float("inf"), running + self.inf_count))
        return result

    @property
    def mean(self) -> float:
        """Mean observed value (0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.sum / self.count


class MetricsRegistry:
    """Holds every named instrument of one observability session."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    # get-or-create
    # ------------------------------------------------------------------
    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        """The counter for ``name`` + ``labels`` (created on first use)."""
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = Counter(name, key[1])
            self._counters[key] = instrument
        return instrument

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        """The gauge for ``name`` + ``labels`` (created on first use)."""
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = Gauge(name, key[1])
            self._gauges[key] = instrument
        return instrument

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_US,
    ) -> Histogram:
        """The histogram for ``name`` + ``labels`` (created on first use).

        ``buckets`` only applies at creation; later calls reuse the
        existing instrument unchanged.
        """
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = Histogram(name, key[1], buckets)
            self._histograms[key] = instrument
        return instrument

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def counters(self) -> List[Counter]:
        """All counters, sorted by (name, labels)."""
        return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> List[Gauge]:
        """All gauges, sorted by (name, labels)."""
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> List[Histogram]:
        """All histograms, sorted by (name, labels)."""
        return [self._histograms[k] for k in sorted(self._histograms)]

    def value(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[float]:
        """The current value of a counter or gauge, or None if absent."""
        key = (name, _label_key(labels))
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        return None

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )

    # ------------------------------------------------------------------
    # the Metrics façade bridge
    # ------------------------------------------------------------------
    def ingest_metrics(self, metrics) -> None:
        """Publish a :class:`repro.engine.metrics.Metrics` bag here.

        The flat hot-path counters map onto canonically named gauges
        (gauges, not counters: ingestion is idempotent snapshotting, not
        incrementing). Per-cache hit counts become one labelled gauge
        family. Safe to call repeatedly, e.g. once per export.
        """
        for attr, metric_name in METRICS_FACADE_NAMES.items():
            self.gauge(metric_name).set(getattr(metrics, attr))
        self.gauge("repro_cache_hit_rate").set(metrics.hit_rate)
        for cache_name, hits in metrics.per_cache_hits.items():
            self.gauge(
                "repro_cache_hits", {"cache": cache_name}
            ).set(hits)


# Canonical registry names of the legacy Metrics counters: the registry
# "subsumes" Metrics through this mapping (see ingest_metrics).
METRICS_FACADE_NAMES: Dict[str, str] = {
    "updates_processed": "repro_updates_processed_total",
    "outputs_emitted": "repro_outputs_emitted_total",
    "cache_probes": "repro_cache_probes_total",
    "cache_hits": "repro_cache_hits_total",
    "cache_creates": "repro_cache_creates_total",
    "cache_maintenance_calls": "repro_cache_maintenance_calls_total",
    "profiled_tuples": "repro_profiled_tuples_total",
    "reoptimizations": "repro_reoptimizations_total",
    "caches_added": "repro_caches_added_total",
    "caches_dropped": "repro_caches_dropped_total",
}
