"""Cross-shard telemetry: serialize worker observability, merge in parent.

The parallel backends rebuild a full engine per shard, so each worker
accumulates its own ``MetricsRegistry``, tracer ring, decision log, and
span profiler — state that previously died with the worker process (the
ROADMAP's "sharded hit_rate reads 0.0" blind spot). This module defines
the picklable :class:`TelemetrySnapshot` a shard attaches to its
:class:`~repro.parallel.shard.ShardResult` (crossing the existing
``pool.map`` / Supervisor pipe paths unchanged) and the parent-side
merge that reassembles one global view:

* every counter/gauge/histogram reappears twice — once under a
  ``shard="N"`` label (the per-shard starvation signal) and once as the
  unlabelled global aggregate (sum for counters and summable gauges,
  element-wise for histograms, max for level gauges);
* ``repro_cache_hit_rate`` is recomputed from the global sums rather
  than averaged, so it means what the serial number means;
* trace events and decision records gain a ``shard`` key and merge into
  one virtual-time chronology;
* profiler snapshots merge with per-shard folded-stack prefixes
  (``shard 0;run;...``) so one flamegraph shows all workers side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.profile import ProfileSnapshot
from repro.obs.registry import (
    LabelKey,
    METRICS_FACADE_NAMES,
    MetricsRegistry,
)

# Gauges whose global value is the sum of the shard values. The facade
# totals are snapshot counters (ingest_metrics publishes them as gauges
# for idempotence) and per-cache hit counts sum the same way.
SUMMABLE_GAUGES = frozenset(METRICS_FACADE_NAMES.values()) | {
    "repro_cache_hits",
}

# Recomputed from global sums after the merge, never aggregated directly.
_DERIVED_GAUGES = frozenset({"repro_cache_hit_rate"})


@dataclass
class TelemetrySnapshot:
    """One worker's full observability state, as plain picklable data."""

    shard: Optional[int] = None
    counters: List[Tuple[str, LabelKey, float]] = field(default_factory=list)
    gauges: List[Tuple[str, LabelKey, float]] = field(default_factory=list)
    histograms: List[dict] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)
    dropped_events: Dict[str, int] = field(default_factory=dict)
    decisions: List[dict] = field(default_factory=list)
    profile: Optional[ProfileSnapshot] = None


def collect_telemetry(
    observability,
    metrics=None,
    shard: Optional[int] = None,
) -> TelemetrySnapshot:
    """Freeze one :class:`~repro.obs.Observability` into a snapshot.

    ``metrics`` (the engine's legacy ``Metrics`` bag), when given, is
    ingested into the registry first so the snapshot subsumes the flat
    hot-path counters too.
    """
    registry = observability.registry
    if metrics is not None:
        registry.ingest_metrics(metrics)
    profiler = getattr(observability, "profiler", None)
    return TelemetrySnapshot(
        shard=shard,
        counters=[
            (c.name, c.labels, c.value) for c in registry.counters()
        ],
        gauges=[(g.name, g.labels, g.value) for g in registry.gauges()],
        histograms=[
            {
                "name": h.name,
                "labels": h.labels,
                "buckets": h.buckets,
                "counts": list(h.counts),
                "inf_count": h.inf_count,
                "sum": h.sum,
                "count": h.count,
            }
            for h in registry.histograms()
        ],
        events=[e.to_dict() for e in observability.tracer.events()],
        dropped_events=dict(observability.tracer.dropped)
        if observability.tracer.enabled
        else {},
        decisions=[r.to_dict() for r in observability.decisions.entries()],
        profile=(
            profiler.snapshot()
            if profiler is not None and profiler.enabled
            else None
        ),
    )


@dataclass
class MergedTelemetry:
    """The parent's reassembled global view of a sharded run."""

    registry: MetricsRegistry
    events: List[dict] = field(default_factory=list)
    decisions: List[dict] = field(default_factory=list)
    profile: Optional[ProfileSnapshot] = None
    shards: List[int] = field(default_factory=list)
    dropped_events: Dict[str, int] = field(default_factory=dict)

    def to_prometheus(self) -> str:
        """The merged registry in Prometheus text exposition format."""
        from repro.obs.export import registry_to_prometheus

        return registry_to_prometheus(self.registry)

    def chronology(self) -> List[dict]:
        """Events + decisions in one (virtual time, shard) order."""
        records = list(self.events)
        records.extend(self.decisions)
        records.sort(
            key=lambda r: (
                r.get("t_us", 0.0),
                r.get("shard", -1),
                r.get("seq", 0),
            )
        )
        return records


def _with_shard(labels: LabelKey, shard: Optional[int]) -> Dict[str, str]:
    merged = dict(labels)
    if shard is not None:
        merged["shard"] = str(shard)
    return merged


def merge_telemetry(
    snapshots: List[TelemetrySnapshot],
    coordinator_decisions: Optional[List[dict]] = None,
) -> MergedTelemetry:
    """Merge worker snapshots into one shard-labelled global registry.

    ``coordinator_decisions`` are parent-side records from the global
    adaptivity plane (:class:`repro.parallel.adaptivity.EpochCoordinator`);
    they join the decision chronology tagged ``source="coordinator"`` so
    the merged timeline shows both what each shard measured and what the
    coordinator pushed back.
    """
    registry = MetricsRegistry()
    events: List[dict] = []
    decisions: List[dict] = []
    dropped: Dict[str, int] = {}
    profiles: List[ProfileSnapshot] = []
    prefixes: List[str] = []
    shards: List[int] = []

    for snapshot in snapshots:
        shard = snapshot.shard
        if shard is not None:
            shards.append(shard)
        labelled = shard is not None and len(snapshots) > 1
        for name, labels, value in snapshot.counters:
            if labelled:
                registry.counter(
                    name, _with_shard(labels, shard)
                ).inc(value)
            registry.counter(name, dict(labels)).inc(value)
        for name, labels, value in snapshot.gauges:
            if labelled:
                registry.gauge(name, _with_shard(labels, shard)).set(value)
            if name in _DERIVED_GAUGES and labelled:
                continue
            target = registry.gauge(name, dict(labels))
            if name in SUMMABLE_GAUGES and labelled:
                target.inc(value)
            elif labelled:
                # Level gauges (memory in use, quota state): the global
                # figure is the worst shard, not the sum.
                target.set(max(target.value, value))
            else:
                target.set(value)
        for data in snapshot.histograms:
            targets = [
                registry.histogram(
                    data["name"], dict(data["labels"]),
                    buckets=data["buckets"],
                )
            ]
            if labelled:
                targets.append(
                    registry.histogram(
                        data["name"],
                        _with_shard(data["labels"], shard),
                        buckets=data["buckets"],
                    )
                )
            for target in targets:
                if target.buckets != tuple(data["buckets"]):
                    continue  # bucket mismatch: keep shard copy only
                for index, count in enumerate(data["counts"]):
                    target.counts[index] += count
                target.inf_count += data["inf_count"]
                target.sum += data["sum"]
                target.count += data["count"]
        for event in snapshot.events:
            record = dict(event)
            if shard is not None:
                record["shard"] = shard
            events.append(record)
        for record in snapshot.decisions:
            merged_record = dict(record)
            if shard is not None:
                merged_record["shard"] = shard
            decisions.append(merged_record)
        for kind, count in snapshot.dropped_events.items():
            dropped[kind] = dropped.get(kind, 0) + count
        if snapshot.profile is not None:
            profiles.append(snapshot.profile)
            prefixes.append(
                f"shard {shard}" if shard is not None else "shard ?"
            )

    for record in coordinator_decisions or ():
        merged_record = dict(record)
        merged_record.setdefault("source", "coordinator")
        decisions.append(merged_record)

    # The global hit rate must be hits/probes over the whole run, not an
    # average of per-shard ratios (a starved shard would skew it).
    hits = registry.value("repro_cache_hits_total")
    probes = registry.value("repro_cache_probes_total")
    if probes:
        registry.gauge("repro_cache_hit_rate").set(
            (hits or 0.0) / probes
        )

    profile = None
    if profiles:
        if len(profiles) == 1 and len(snapshots) == 1:
            profile = profiles[0]
        else:
            profile = ProfileSnapshot.merged(profiles, prefixes)

    events.sort(key=lambda r: (r.get("t_us", 0.0), r.get("shard", -1),
                               r.get("seq", 0)))
    decisions.sort(key=lambda r: (r.get("t_us", 0.0), r.get("shard", -1),
                                  r.get("seq", 0)))
    return MergedTelemetry(
        registry=registry,
        events=events,
        decisions=decisions,
        profile=profile,
        shards=sorted(set(shards)),
        dropped_events=dropped,
    )
