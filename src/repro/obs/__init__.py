"""Observability for the A-Caching engine: metrics, traces, decisions.

Three layers, bundled into one :class:`Observability` object carried by
every :class:`~repro.operators.base.ExecContext`:

* :mod:`repro.obs.registry` — named counters/gauges/histograms (the
  superset of the legacy ``Metrics`` bag; Prometheus-style export);
* :mod:`repro.obs.tracer` — a bounded ring buffer of typed events
  stamped with virtual-clock time (off by default, one attribute check
  on hot paths when off);
* :mod:`repro.obs.decisions` — the always-on adaptivity decision log:
  every cache add/drop with the estimates that justified it.

Enabling for a run::

    from repro import obs
    from repro.api import Session

    with obs.session() as active:
        engine = Session.adaptive(workload).plan   # picks up the session
        engine.run(workload.updates(20_000))
    print(obs.export.observability_to_jsonl(active, engine.ctx.metrics))

Engines built *inside* an active session adopt it automatically (the
``ExecContext`` default factory consults :func:`current`), which is how
the CLI's ``--obs-jsonl`` flag instruments experiment code it never
constructs directly.
"""

from __future__ import annotations

import threading as _threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.obs.decisions import DecisionLog, DecisionRecord
from repro.obs.profile import (
    NULL_PROFILER,
    NullSpanProfiler,
    ProfileSnapshot,
    SpanProfiler,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, TraceEvent, Tracer


@dataclass
class Observability:
    """One session's observability surface.

    ``enabled`` gates everything with per-update cost (trace emission,
    per-operator histograms); the decision log stays live regardless
    because decisions are rare and always worth keeping. ``profiler``
    carries its own ``enabled`` flag (checked separately on hot paths)
    so wall-clock span profiling can run with or without tracing.
    """

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Union[Tracer, NullTracer] = NULL_TRACER
    decisions: DecisionLog = field(default_factory=DecisionLog)
    enabled: bool = False
    profiler: Union[SpanProfiler, NullSpanProfiler] = NULL_PROFILER

    @classmethod
    def disabled(cls) -> "Observability":
        """The default: no tracing, fresh registry and decision log."""
        return cls()

    @classmethod
    def tracing(
        cls,
        capacity_per_kind: int = 4096,
        decision_capacity: int = 4096,
        profile: bool = False,
    ) -> "Observability":
        """A fully enabled session (live tracer, detailed metrics).

        ``profile=True`` additionally attaches a live
        :class:`~repro.obs.profile.SpanProfiler` recording dual-clock
        spans into folded stacks and latency aggregates.
        """
        return cls(
            registry=MetricsRegistry(),
            tracer=Tracer(capacity_per_kind=capacity_per_kind),
            decisions=DecisionLog(capacity=decision_capacity),
            enabled=True,
            profiler=SpanProfiler() if profile else NULL_PROFILER,
        )


# The session-scoped override consulted by ExecContext's default factory.
# Thread-local: the coordinated serial backend runs one shard per thread,
# each under its own enabled session, and a module-global would make
# every engine adopt whichever worker activated last. Sessions have
# always been opened in the thread that builds the engines they scope
# (CLI, api.Session, shard workers, the service layer), so thread-local
# visibility is the same visibility with the cross-thread races removed.
_STATE = _threading.local()


def current() -> Optional[Observability]:
    """This thread's active session observability, or None."""
    return getattr(_STATE, "active", None)


def activate(observability: Observability) -> Observability:
    """Make ``observability`` the session default for new ExecContexts."""
    _STATE.active = observability
    return observability


def deactivate() -> None:
    """Clear the session default."""
    _STATE.active = None


@contextmanager
def session(
    observability: Optional[Observability] = None,
) -> Iterator[Observability]:
    """Scope an (enabled, unless given) observability to a ``with`` block."""
    active = (
        observability if observability is not None else Observability.tracing()
    )
    previous = current()
    _STATE.active = active
    try:
        yield active
    finally:
        _STATE.active = previous


def default_observability() -> Observability:
    """ExecContext default: the active session, else a disabled bundle."""
    active = current()
    return active if active is not None else Observability.disabled()


from repro.obs import export  # noqa: E402  (exporters need the types above)

__all__ = [
    "DecisionLog",
    "DecisionRecord",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullSpanProfiler",
    "NullTracer",
    "Observability",
    "ProfileSnapshot",
    "SpanProfiler",
    "TraceEvent",
    "Tracer",
    "activate",
    "current",
    "deactivate",
    "default_observability",
    "export",
    "session",
]
