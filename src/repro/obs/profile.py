"""A hierarchical dual-clock span profiler for real wall-time attribution.

Every BENCH baseline so far reports *modeled* (virtual-clock) numbers;
this module measures where the real time goes. A span is one region of
the engine's hierarchy — ``run`` → ``update:∆R``/``batch`` → operator →
cache probe/store — and each span records **both clocks**:

* wall time via :func:`time.perf_counter_ns` (inclusive and self, i.e.
  minus enclosed child spans), and
* virtual-clock cost, passed in by the instrumentation site (the same
  ``clock.now_us`` deltas the cost model charges).

Aggregation is allocation-light: self times accumulate into a folded
call-path table (the flamegraph ``a;b;c self_ns`` format) and per-name
:class:`SpanAggregate` totals with log2 wall-latency buckets, from which
p50/p95/p99 are read without storing observations.

The disabled path is a single attribute check against the slotted
:data:`NULL_PROFILER` singleton — the same pattern as ``NULL_TRACER`` —
and :func:`noop_overhead_ns` measures exactly that guard's cost so the
wall benchmark (``repro bench --wall``) can prove the ≤3% budget.
"""

from __future__ import annotations

import marshal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

# Log2 wall-latency buckets: observation ns with bit_length i lands in
# bucket i, i.e. bucket i covers [2^(i-1), 2^i). 64 buckets span past
# any representable perf_counter_ns delta.
WALL_BUCKET_COUNT = 64

# The synthetic "file" pstats exports attribute span rows to.
PSTATS_FILE = "~repro-span"


class NullSpanProfiler:
    """The disabled profiler: ``enabled`` is False, methods are no-ops.

    Hot paths guard with one attribute check (``if prof.enabled:``); the
    slotted singleton guarantees no per-span allocation can sneak in.
    """

    __slots__ = ()
    enabled = False

    def begin(self, name: str, t_us: float = 0.0) -> None:
        return None

    def end(self, t_us: float = 0.0) -> None:
        return None

    @contextmanager
    def span(self, name: str, clock=None) -> Iterator[None]:
        yield


NULL_PROFILER = NullSpanProfiler()


class SpanAggregate:
    """Totals + log2 latency buckets for every span sharing one name."""

    __slots__ = ("name", "count", "wall_ns", "self_ns", "virtual_us",
                 "bucket_counts")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.wall_ns = 0          # inclusive wall time
        self.self_ns = 0          # wall time minus child spans
        self.virtual_us = 0.0     # inclusive virtual-clock cost
        self.bucket_counts = [0] * WALL_BUCKET_COUNT

    def observe(self, wall_ns: int, self_ns: int, virtual_us: float) -> None:
        """Fold one finished span into the aggregate."""
        self.count += 1
        self.wall_ns += wall_ns
        self.self_ns += self_ns
        self.virtual_us += virtual_us
        index = wall_ns.bit_length()
        if index >= WALL_BUCKET_COUNT:
            index = WALL_BUCKET_COUNT - 1
        self.bucket_counts[index] += 1

    def quantile_ns(self, q: float) -> float:
        """Approximate inclusive-wall quantile (bucket midpoint), in ns."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for index, count in enumerate(self.bucket_counts):
            running += count
            if running >= target:
                if index == 0:
                    return 0.0
                # Midpoint of [2^(index-1), 2^index).
                return 1.5 * (1 << (index - 1))
        return 1.5 * (1 << (WALL_BUCKET_COUNT - 1))  # pragma: no cover

    def merge(self, other: "SpanAggregate") -> None:
        """Fold another aggregate of the same name into this one."""
        self.count += other.count
        self.wall_ns += other.wall_ns
        self.self_ns += other.self_ns
        self.virtual_us += other.virtual_us
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "wall_ns": self.wall_ns,
            "self_ns": self.self_ns,
            "virtual_us": self.virtual_us,
            "bucket_counts": list(self.bucket_counts),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanAggregate":
        aggregate = cls(data["name"])
        aggregate.count = data["count"]
        aggregate.wall_ns = data["wall_ns"]
        aggregate.self_ns = data["self_ns"]
        aggregate.virtual_us = data["virtual_us"]
        buckets = list(data["bucket_counts"])
        buckets += [0] * (WALL_BUCKET_COUNT - len(buckets))
        aggregate.bucket_counts = buckets[:WALL_BUCKET_COUNT]
        return aggregate


@dataclass
class ProfileSnapshot:
    """A profiler's state as plain data (picklable across processes).

    ``folded`` maps semicolon-joined span paths to accumulated *self*
    wall ns (exactly the flamegraph folded-stack format once rendered);
    ``spans`` maps span name to a :class:`SpanAggregate` dict.
    """

    folded: Dict[str, int] = field(default_factory=dict)
    spans: Dict[str, dict] = field(default_factory=dict)
    crossings: int = 0

    def folded_lines(self) -> List[str]:
        """``path self_ns`` lines, sorted by path, zero rows dropped."""
        return [
            f"{path} {value}"
            for path, value in sorted(self.folded.items())
            if value > 0
        ]

    def aggregates(self) -> Dict[str, SpanAggregate]:
        """The spans table rehydrated into SpanAggregate objects."""
        return {
            name: SpanAggregate.from_dict(data)
            for name, data in self.spans.items()
        }

    def root_self_ns(self, root: str = "run") -> int:
        """Total self wall ns under (and including) the ``root`` span.

        Self times partition inclusive time, so this equals the root
        span's inclusive wall time — the number the folded file must
        account ≥95% of the measured run wall time with.
        """
        prefix = root + ";"
        return sum(
            value
            for path, value in self.folded.items()
            if path == root or path.startswith(prefix)
        )

    @classmethod
    def merged(
        cls,
        snapshots: List["ProfileSnapshot"],
        prefixes: Optional[List[str]] = None,
    ) -> "ProfileSnapshot":
        """Combine snapshots, optionally prefixing each one's paths.

        With ``prefixes`` (e.g. ``["shard 0", "shard 1", ...]``) the
        folded stacks stay distinguishable per shard in one flamegraph;
        the per-name aggregates merge globally either way.
        """
        merged = cls()
        aggregates: Dict[str, SpanAggregate] = {}
        for index, snapshot in enumerate(snapshots):
            prefix = prefixes[index] if prefixes else None
            for path, value in snapshot.folded.items():
                key = f"{prefix};{path}" if prefix else path
                merged.folded[key] = merged.folded.get(key, 0) + value
            for name, data in snapshot.spans.items():
                incoming = SpanAggregate.from_dict(data)
                existing = aggregates.get(name)
                if existing is None:
                    aggregates[name] = incoming
                else:
                    existing.merge(incoming)
            merged.crossings += snapshot.crossings
        merged.spans = {
            name: aggregate.to_dict()
            for name, aggregate in aggregates.items()
        }
        return merged


class SpanProfiler:
    """The live profiler: an explicit span stack plus fold-on-end tables.

    ``begin``/``end`` take the *virtual* clock reading from the caller
    (instrumentation sites already hold ``ctx.clock``); wall time is read
    here via ``perf_counter_ns``. Spans must nest; ``end`` closes the
    most recent open span.
    """

    __slots__ = ("_stack", "_folded", "_aggregates", "crossings")

    enabled = True

    def __init__(self) -> None:
        # Stack frames: [path tuple, start wall ns, start virtual us,
        # accumulated child wall ns].
        self._stack: List[list] = []
        self._folded: Dict[Tuple[str, ...], int] = {}
        self._aggregates: Dict[str, SpanAggregate] = {}
        self.crossings = 0

    def begin(self, name: str, t_us: float = 0.0) -> None:
        """Open a span named ``name`` at virtual time ``t_us``."""
        stack = self._stack
        path = stack[-1][0] + (name,) if stack else (name,)
        stack.append([path, time.perf_counter_ns(), t_us, 0])

    def end(self, t_us: float = 0.0) -> None:
        """Close the innermost open span at virtual time ``t_us``."""
        stack = self._stack
        if not stack:
            return
        path, start_ns, start_us, child_ns = stack.pop()
        elapsed = time.perf_counter_ns() - start_ns
        if stack:
            stack[-1][3] += elapsed
        self_ns = elapsed - child_ns
        if self_ns < 0:
            self_ns = 0
        self._folded[path] = self._folded.get(path, 0) + self_ns
        name = path[-1]
        aggregate = self._aggregates.get(name)
        if aggregate is None:
            aggregate = self._aggregates[name] = SpanAggregate(name)
        aggregate.observe(elapsed, self_ns, t_us - start_us)
        self.crossings += 1

    @contextmanager
    def span(self, name: str, clock=None) -> Iterator[None]:
        """Scope a span to a ``with`` block (dual-clocked via ``clock``)."""
        self.begin(name, clock.now_us if clock is not None else 0.0)
        try:
            yield
        finally:
            self.end(clock.now_us if clock is not None else 0.0)

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def snapshot(self) -> ProfileSnapshot:
        """Freeze the folded table + aggregates into plain data."""
        return ProfileSnapshot(
            folded={
                ";".join(path): value
                for path, value in self._folded.items()
            },
            spans={
                name: aggregate.to_dict()
                for name, aggregate in self._aggregates.items()
            },
            crossings=self.crossings,
        )


# ----------------------------------------------------------------------
# exports
# ----------------------------------------------------------------------
def write_folded(path: str, snapshot: ProfileSnapshot) -> int:
    """Write the folded-stack file (``inferno``/``flamegraph.pl`` input).

    Returns the number of stack lines written.
    """
    lines = snapshot.folded_lines()
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def snapshot_to_pstats_bytes(snapshot: ProfileSnapshot) -> bytes:
    """Render span aggregates as a marshalled pstats table.

    Each span name becomes one pseudo-function keyed
    ``(~repro-span, 0, name)`` with (calls, self seconds, inclusive
    seconds); caller edges are derived from the folded paths so
    ``pstats.Stats(...).print_callers()`` shows the span hierarchy.
    """
    # parent name -> child name -> accumulated child self seconds
    edges: Dict[str, Dict[str, float]] = {}
    for path, self_ns in snapshot.folded.items():
        frames = path.split(";")
        if len(frames) >= 2:
            children = edges.setdefault(frames[-2], {})
            children[frames[-1]] = (
                children.get(frames[-1], 0.0) + self_ns / 1e9
            )
    table: Dict[tuple, tuple] = {}
    for name, data in snapshot.spans.items():
        aggregate = SpanAggregate.from_dict(data)
        callers = {}
        for parent, children in edges.items():
            if name in children and parent in snapshot.spans:
                callers[(PSTATS_FILE, 0, parent)] = (
                    0, 0, 0.0, children[name]
                )
        table[(PSTATS_FILE, 0, name)] = (
            aggregate.count,
            aggregate.count,
            aggregate.self_ns / 1e9,
            aggregate.wall_ns / 1e9,
            callers,
        )
    return marshal.dumps(table)


def write_pstats(path: str, snapshot: ProfileSnapshot) -> None:
    """Write a ``pstats``-loadable profile dump to ``path``."""
    with open(path, "wb") as handle:
        handle.write(snapshot_to_pstats_bytes(snapshot))


# ----------------------------------------------------------------------
# the disabled-path overhead budget
# ----------------------------------------------------------------------
def noop_overhead_ns(iterations: int = 200_000) -> float:
    """Measured wall cost of one *disabled* begin/end guard pair, in ns.

    Times the exact hot-path pattern — two ``if prof.enabled:`` checks
    against :data:`NULL_PROFILER` — minus the bare loop, so the result is
    the marginal cost one instrumented span adds to an unprofiled run.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    prof = NULL_PROFILER
    timer = time.perf_counter_ns
    started = timer()
    for _ in range(iterations):
        if prof.enabled:
            prof.begin("x", 0.0)
        if prof.enabled:
            prof.end(0.0)
    guarded = timer() - started
    started = timer()
    for _ in range(iterations):
        pass
    bare = timer() - started
    return max(0.0, (guarded - bare) / iterations)


def disabled_overhead_fraction(
    crossings: int,
    baseline_wall_seconds: float,
    per_pair_ns: Optional[float] = None,
) -> float:
    """Fraction of a run's wall time the disabled guards cost.

    ``crossings`` is how many spans an *enabled* run of the same work
    records (the guard count is identical either way);
    ``baseline_wall_seconds`` is the unprofiled run's wall time.
    """
    if baseline_wall_seconds <= 0:
        return 0.0
    if per_pair_ns is None:
        per_pair_ns = noop_overhead_ns()
    return (crossings * per_pair_ns) / (baseline_wall_seconds * 1e9)
