"""Structured tracing: a bounded ring buffer of typed engine events.

The adaptive machinery is only debuggable if the *sequence* of what
happened — updates processed, caches probed, caches attached and dropped,
re-optimizations, profiler samples, memory pressure — can be replayed
after the fact. Every event is stamped with **virtual-clock time** so a
trace lines up exactly with the throughput curves the engine reports.

Tracing is off by default and must cost (almost) nothing when off: hot
paths guard every emission with one attribute check
(``if obs.enabled: ...`` / ``if tracer.enabled: ...``) against the shared
:data:`NULL_TRACER` singleton.

The buffer is bounded **per event kind**: high-frequency kinds
(``update_processed``, ``cache_probe``) wrapping around cannot evict the
rare, precious ones (``reoptimize``, ``memory_pressure``), so a long run's
trace always retains its adaptivity story.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Mapping, Tuple

# The typed event vocabulary. Emitting an unknown kind is allowed (the
# tracer is schema-light by design) but everything the engine emits is
# listed here so exporters and docs have one source of truth.
EVENT_KINDS: Tuple[str, ...] = (
    "update_processed",
    "cache_probe",
    "cache_attach",
    "cache_detach",
    "reoptimize",
    "profile_sample",
    "memory_pressure",
    "decision",
)

DEFAULT_CAPACITY_PER_KIND = 4096


@dataclass(frozen=True)
class TraceEvent:
    """One traced engine event.

    ``seq`` is a tracer-wide monotonically increasing sequence number
    (total order across kinds); ``t_us`` is the virtual-clock timestamp at
    emission.
    """

    seq: int
    kind: str
    t_us: float
    data: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Flat dict form used by the JSONL exporter."""
        record: Dict[str, object] = {
            "seq": self.seq,
            "kind": self.kind,
            "t_us": self.t_us,
        }
        record.update(self.data)
        return record


class NullTracer:
    """The default no-op tracer: hot paths pay one attribute check.

    All instances share ``enabled = False``; :data:`NULL_TRACER` is the
    canonical singleton handed to every :class:`ExecContext` unless the
    caller opts into tracing.
    """

    __slots__ = ()

    enabled = False

    def emit(self, kind: str, t_us: float, **data: object) -> None:
        """Discard the event."""
        return None

    def events(self, kind=None) -> List[TraceEvent]:
        """A null tracer never holds events."""
        return []

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()


class Tracer:
    """A live tracer: per-kind bounded ring buffers of typed events.

    ``capacity_per_kind`` bounds each kind's ring independently; once a
    ring is full its oldest events are dropped (counted in
    :attr:`dropped`). Memory is therefore bounded by
    ``capacity × distinct kinds`` regardless of run length.
    """

    enabled = True

    def __init__(self, capacity_per_kind: int = DEFAULT_CAPACITY_PER_KIND):
        if capacity_per_kind <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity_per_kind = capacity_per_kind
        self._rings: Dict[str, Deque[TraceEvent]] = {}
        self._seq = 0
        self.dropped: Dict[str, int] = {}

    def emit(self, kind: str, t_us: float, **data: object) -> TraceEvent:
        """Record one event; returns it (handy in tests)."""
        ring = self._rings.get(kind)
        if ring is None:
            ring = deque(maxlen=self.capacity_per_kind)
            self._rings[kind] = ring
        if len(ring) == self.capacity_per_kind:
            self.dropped[kind] = self.dropped.get(kind, 0) + 1
        self._seq += 1
        event = TraceEvent(seq=self._seq, kind=kind, t_us=t_us, data=data)
        ring.append(event)
        return event

    def events(self, kind: str = None) -> List[TraceEvent]:
        """Retained events, in emission order; optionally one kind only."""
        if kind is not None:
            return list(self._rings.get(kind, ()))
        merged: List[TraceEvent] = []
        for ring in self._rings.values():
            merged.extend(ring)
        merged.sort(key=lambda e: e.seq)
        return merged

    def kinds(self) -> List[str]:
        """Kinds with at least one retained event."""
        return sorted(k for k, ring in self._rings.items() if ring)

    def dropped_total(self) -> int:
        """Events lost to ring wrap-around, across all kinds."""
        return sum(self.dropped.values())

    def clear(self) -> None:
        """Drop all retained events (sequence numbers keep increasing)."""
        self._rings.clear()
        self.dropped.clear()

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer({len(self)} events, {len(self._rings)} kinds, "
            f"dropped={self.dropped_total()})"
        )
