"""Exporters: JSONL traces and Prometheus-style text metrics.

Two output shapes:

* **JSONL** — one JSON object per line, each with ``kind`` and ``t_us``,
  merging the tracer's typed events with the decision log (decisions get
  ``kind = "decision"``). Sorted by virtual time then sequence so the
  file reads as a chronology of the run.
* **Prometheus text** — every registry instrument in the classic
  ``name{label="v"} value`` exposition format (histograms expand into
  ``_bucket``/``_sum``/``_count`` families), after ingesting the engine's
  legacy ``Metrics`` counters so one dump covers both layers.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional

from repro.obs.decisions import DecisionLog, DecisionRecord
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import TraceEvent


def _json_default(value: object) -> object:
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value) if isinstance(value, (set, frozenset)) else list(value)
    return str(value)


def _dump_line(record: Dict[str, object]) -> str:
    return json.dumps(record, sort_keys=True, default=_json_default)


def events_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Render trace events as JSONL (one event per line)."""
    return "\n".join(_dump_line(e.to_dict()) for e in events)


def decisions_to_jsonl(log: DecisionLog) -> str:
    """Render the decision log as JSONL."""
    return "\n".join(_dump_line(r.to_dict()) for r in log.entries())


def observability_to_jsonl(observability, metrics=None) -> str:
    """One merged JSONL chronology: trace events + decision records.

    ``metrics`` (a legacy ``Metrics`` bag), when given, contributes a
    final ``run_summary`` line so a trace file is self-describing.
    """
    records: List[Dict[str, object]] = [
        e.to_dict() for e in observability.tracer.events()
    ]
    records.extend(r.to_dict() for r in observability.decisions.entries())
    records.sort(key=lambda r: (r.get("t_us", 0.0), r.get("seq", 0)))
    lines = [_dump_line(r) for r in records]
    if metrics is not None:
        summary = {
            "kind": "run_summary",
            "updates_processed": metrics.updates_processed,
            "outputs_emitted": metrics.outputs_emitted,
            "cache_probes": metrics.cache_probes,
            "cache_hits": metrics.cache_hits,
            "hit_rate": metrics.hit_rate,
            "reoptimizations": metrics.reoptimizations,
            "caches_added": metrics.caches_added,
            "caches_dropped": metrics.caches_dropped,
            "trace_events": len(observability.tracer.events()),
            "decisions": len(observability.decisions),
        }
        lines.append(_dump_line(summary))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus-style text exposition
# ----------------------------------------------------------------------
def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition spec: ``\\``, ``"``, LF."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels, le: Optional[str] = None) -> str:
    """Canonical label rendering: sorted labels, ``le`` always last.

    ``labels`` are (name, value) pairs (already sorted by the registry);
    histograms pass the bucket bound via ``le`` so every sample of a
    family orders its labels identically.
    """
    parts = [
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels)
    ]
    if le is not None:
        parts.append(f'le="{le}"')
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


# HELP strings for well-known families; anything else gets a generic one.
METRIC_HELP: Dict[str, str] = {
    "repro_updates_processed_total": "Stream updates fully processed",
    "repro_outputs_emitted_total": "Result deltas emitted",
    "repro_cache_probes_total": "Individual cache probe lookups",
    "repro_cache_hits_total": "Cache probes that hit",
    "repro_cache_creates_total": "Cache entries created on miss",
    "repro_cache_maintenance_calls_total": "Cache maintenance tap runs",
    "repro_profiled_tuples_total": "Tuples run in profile mode",
    "repro_reoptimizations_total": "Re-optimizer invocations",
    "repro_caches_added_total": "Caches attached by the re-optimizer",
    "repro_caches_dropped_total": "Caches detached by the re-optimizer",
    "repro_cache_hit_rate": "Cache hits over probes for the run",
    "repro_cache_hits": "Per-cache hit counts",
    "repro_cache_probe_batch_total": "Cache probe batches (one per lookup)",
    "repro_cache_probed_total": "Composites probed against a cache",
    "repro_cache_hit_total": "Per-cache composite-level hits",
    "repro_cache_create_total": "Per-cache entry creations",
    "repro_operator_us": "Per-operator virtual time per invocation (us)",
    "repro_pipeline_update_us": "Per-update virtual latency (us)",
    "repro_xjoin_update_us": "XJoin per-update virtual latency (us)",
    "repro_xjoin_memory_bytes": "XJoin materialized subresult bytes",
}


def _family_header(
    lines: List[str], seen: set, name: str, family_type: str
) -> None:
    """Emit ``# HELP``/``# TYPE`` once per metric family."""
    if name in seen:
        return
    seen.add(name)
    help_text = METRIC_HELP.get(name, f"repro metric {name}")
    lines.append(f"# HELP {name} {_escape_help(help_text)}")
    lines.append(f"# TYPE {name} {family_type}")


def _merge_labels(labels, extra: Optional[Dict[str, str]]):
    """Add injected label pairs to a sample's label tuple.

    Injected labels lose to the sample's own labels on name collision
    (a per-cache ``query`` label set at record time is more specific than
    an engine-level injection).
    """
    if not extra:
        return labels
    present = {name for name, _ in labels}
    merged = list(labels)
    for name, value in extra.items():
        if name not in present:
            merged.append((name, str(value)))
    return tuple(merged)


def registry_to_prometheus(
    registry: MetricsRegistry,
    metrics=None,
    extra_labels: Optional[Dict[str, str]] = None,
    _lines: Optional[List[str]] = None,
    _seen: Optional[set] = None,
) -> str:
    """Render the registry in Prometheus text exposition format.

    ``metrics`` (a legacy ``Metrics`` bag), when given, is ingested first
    so the dump subsumes the flat counters too. Label values are escaped
    per the exposition spec, every family carries ``# HELP``/``# TYPE``
    header lines, and label order is canonical across a family (sorted,
    with histogram ``le`` always last).

    ``extra_labels`` are injected into every sample — the multi-query
    engine uses ``{"query_id": ...}`` so per-tenant registries merge into
    one exposition with attributable series. ``_lines``/``_seen`` let
    :func:`registries_to_prometheus` accumulate several registries while
    keeping ``# HELP``/``# TYPE`` unique per family.
    """
    if metrics is not None:
        registry.ingest_metrics(metrics)
    lines: List[str] = _lines if _lines is not None else []
    seen: set = _seen if _seen is not None else set()
    for counter in registry.counters():
        _family_header(lines, seen, counter.name, "counter")
        labels = _merge_labels(counter.labels, extra_labels)
        lines.append(
            f"{counter.name}{_format_labels(labels)} "
            f"{_format_value(counter.value)}"
        )
    for gauge in registry.gauges():
        _family_header(lines, seen, gauge.name, "gauge")
        labels = _merge_labels(gauge.labels, extra_labels)
        lines.append(
            f"{gauge.name}{_format_labels(labels)} "
            f"{_format_value(gauge.value)}"
        )
    for histogram in registry.histograms():
        # One TYPE line covers the whole _bucket/_sum/_count family.
        _family_header(lines, seen, histogram.name, "histogram")
        labels = _merge_labels(histogram.labels, extra_labels)
        for bound, cumulative in histogram.cumulative_counts():
            lines.append(
                f"{histogram.name}_bucket"
                f"{_format_labels(labels, le=_format_value(bound))} "
                f"{cumulative}"
            )
        lines.append(
            f"{histogram.name}_sum{_format_labels(labels)} "
            f"{_format_value(histogram.sum)}"
        )
        lines.append(
            f"{histogram.name}_count{_format_labels(labels)} "
            f"{histogram.count}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def registries_to_prometheus(
    named: Dict[str, MetricsRegistry],
    metrics_of: Optional[Dict[str, object]] = None,
    label: str = "query_id",
) -> str:
    """Merge per-query registries into one exposition.

    Every sample of query ``q`` gains a ``query_id="q"`` label (escaped by
    the normal label rendering), and each metric family keeps exactly one
    ``# HELP``/``# TYPE`` header even when several queries emit it.
    Queries are rendered in sorted id order for a stable exposition.
    """
    lines: List[str] = []
    seen: set = set()
    for query_id in sorted(named):
        registry_to_prometheus(
            named[query_id],
            metrics=(metrics_of or {}).get(query_id),
            extra_labels={label: query_id},
            _lines=lines,
            _seen=seen,
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path: str, text: str) -> None:
    """Write a JSONL/metrics export to disk with a trailing newline."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if text and not text.endswith("\n"):
            handle.write("\n")
