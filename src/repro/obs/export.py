"""Exporters: JSONL traces and Prometheus-style text metrics.

Two output shapes:

* **JSONL** — one JSON object per line, each with ``kind`` and ``t_us``,
  merging the tracer's typed events with the decision log (decisions get
  ``kind = "decision"``). Sorted by virtual time then sequence so the
  file reads as a chronology of the run.
* **Prometheus text** — every registry instrument in the classic
  ``name{label="v"} value`` exposition format (histograms expand into
  ``_bucket``/``_sum``/``_count`` families), after ingesting the engine's
  legacy ``Metrics`` counters so one dump covers both layers.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional

from repro.obs.decisions import DecisionLog, DecisionRecord
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import TraceEvent


def _json_default(value: object) -> object:
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value) if isinstance(value, (set, frozenset)) else list(value)
    return str(value)


def _dump_line(record: Dict[str, object]) -> str:
    return json.dumps(record, sort_keys=True, default=_json_default)


def events_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Render trace events as JSONL (one event per line)."""
    return "\n".join(_dump_line(e.to_dict()) for e in events)


def decisions_to_jsonl(log: DecisionLog) -> str:
    """Render the decision log as JSONL."""
    return "\n".join(_dump_line(r.to_dict()) for r in log.entries())


def observability_to_jsonl(observability, metrics=None) -> str:
    """One merged JSONL chronology: trace events + decision records.

    ``metrics`` (a legacy ``Metrics`` bag), when given, contributes a
    final ``run_summary`` line so a trace file is self-describing.
    """
    records: List[Dict[str, object]] = [
        e.to_dict() for e in observability.tracer.events()
    ]
    records.extend(r.to_dict() for r in observability.decisions.entries())
    records.sort(key=lambda r: (r.get("t_us", 0.0), r.get("seq", 0)))
    lines = [_dump_line(r) for r in records]
    if metrics is not None:
        summary = {
            "kind": "run_summary",
            "updates_processed": metrics.updates_processed,
            "outputs_emitted": metrics.outputs_emitted,
            "cache_probes": metrics.cache_probes,
            "cache_hits": metrics.cache_hits,
            "hit_rate": metrics.hit_rate,
            "reoptimizations": metrics.reoptimizations,
            "caches_added": metrics.caches_added,
            "caches_dropped": metrics.caches_dropped,
            "trace_events": len(observability.tracer.events()),
            "decisions": len(observability.decisions),
        }
        lines.append(_dump_line(summary))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus-style text exposition
# ----------------------------------------------------------------------
def _format_labels(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def registry_to_prometheus(
    registry: MetricsRegistry, metrics=None
) -> str:
    """Render the registry in Prometheus text exposition format.

    ``metrics`` (a legacy ``Metrics`` bag), when given, is ingested first
    so the dump subsumes the flat counters too.
    """
    if metrics is not None:
        registry.ingest_metrics(metrics)
    lines: List[str] = []
    for counter in registry.counters():
        lines.append(
            f"{counter.name}{_format_labels(counter.labels)} "
            f"{_format_value(counter.value)}"
        )
    for gauge in registry.gauges():
        lines.append(
            f"{gauge.name}{_format_labels(gauge.labels)} "
            f"{_format_value(gauge.value)}"
        )
    for histogram in registry.histograms():
        base = dict(histogram.labels)
        for bound, cumulative in histogram.cumulative_counts():
            labels = dict(base)
            labels["le"] = _format_value(bound)
            lines.append(
                f"{histogram.name}_bucket"
                f"{_format_labels(tuple(sorted(labels.items())))} "
                f"{cumulative}"
            )
        lines.append(
            f"{histogram.name}_sum{_format_labels(histogram.labels)} "
            f"{_format_value(histogram.sum)}"
        )
        lines.append(
            f"{histogram.name}_count{_format_labels(histogram.labels)} "
            f"{histogram.count}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path: str, text: str) -> None:
    """Write a JSONL/metrics export to disk with a trailing newline."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if text and not text.endswith("\n"):
            handle.write("\n")
