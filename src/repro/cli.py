"""Command-line interface: regenerate any paper experiment from a shell.

    python -m repro list
    python -m repro figure fig6 --arrivals 8000
    python -m repro figure fig9 --shards 4 --parallel-backend process
    python -m repro spectrum D2 --arrivals 12000
    python -m repro table2
    python -m repro demo --shards 2
    python -m repro trace fig12 --jsonl fig12-trace.jsonl
    python -m repro chaos fig12 --seed 11 --faults duplicate_prob=0.02
    python -m repro chaos demo --crash torn_tail --cache-mode rebuild
    python -m repro recover /tmp/crashed-journal
    python -m repro bench --shards 1,2,4 --out BENCH_parallel.json
    python -m repro bench --batch-sizes 1,4,16,64
    python -m repro bench --recovery --fsync-every 64
    python -m repro bench --wall --out BENCH_wall.json
    python -m repro profile fig9-6way --arrivals 2000 --flame f.txt
    python -m repro profile fig9-6way --shards 4 --prometheus m.prom

Arrival counts trade precision for time; the defaults match the
benchmark suite's.

Parallelism: ``--shards N`` hash-partitions the update streams and runs
one full pipeline per shard (``--parallel-backend process`` uses one OS
process per shard; the default ``serial`` backend runs shards in-process
with identical results). ``bench`` measures serial-vs-sharded throughput
and writes the BENCH_parallel.json baseline (see docs/parallelism.md).

Micro-batching: ``bench --batch-sizes N,...`` (or ``--batch-size N``,
sugar for ``1,N``) measures per-update vs batched execution and writes
the BENCH_batching.json baseline; ``chaos --batch-size N`` drives the
chaos harness batched (see docs/api.md).

Observability: ``trace`` runs one experiment with the structured tracer
enabled and prints an event summary; ``--obs-jsonl PATH`` on ``figure``,
``spectrum``, and ``demo`` writes the merged trace + decision chronology
of the run as JSONL (see docs/observability.md).

Profiling: ``profile EXP`` runs one experiment with the dual-clock span
profiler on and prints a wall-time hotspot table; ``--flame`` writes
folded stacks for flamegraphs, ``--pstats`` a pstats-loadable dump, and
``--shards N`` merges per-worker telemetry under ``shard`` labels.
``bench --wall`` measures serial vs batched vs sharded wall throughput
plus the profiler's own overhead and writes the BENCH_wall.json baseline
that ``benchmarks/check_wall_regression.py`` gates against.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.bench import figures
from repro.bench.harness import ExperimentRow, format_rows
from repro.errors import CLIError, ReproError
from repro.obs.export import (
    observability_to_jsonl,
    registry_to_prometheus,
    write_jsonl,
)
from repro.parallel.engine import BACKENDS, ParallelConfig

FIGURES: Dict[str, str] = {
    "fig6": "varying cache hit probability (T.B multiplicity 1-10)",
    "fig7": "varying join selectivity for ∆T tuples",
    "fig8": "varying cache update rate / probe rate",
    "fig9": "varying number of joining relations (3-9)",
    "fig10": "varying join cost (nested-loop |S| sweep)",
    "fig12": "adaptivity to a 20x rate burst on ∆R",
    "fig13": "adaptivity to the available memory (point D8)",
}

#: Workloads ``profile`` can span-profile: the demo chain plus the
#: fig9 star at three widths (the bench workload family).
PROFILE_EXPERIMENTS: Dict[str, int] = {
    "demo": 0,          # three-way chain; 0 = not a star width
    "fig9-3way": 3,
    "fig9-6way": 6,
    "fig9-9way": 9,
}


def _parallel_of(args: argparse.Namespace) -> ParallelConfig:
    """Build the run's ParallelConfig from CLI flags (validates both)."""
    return ParallelConfig(
        shards=getattr(args, "shards", 1),
        backend=getattr(args, "parallel_backend", "serial"),
    )


def _check_arrivals(args: argparse.Namespace) -> None:
    arrivals = getattr(args, "arrivals", None)
    if arrivals is not None and arrivals <= 0:
        raise CLIError(f"--arrivals must be positive, got {arrivals}")


def _run_row_figure(
    name: str,
    arrivals: Optional[int],
    parallel: Optional[ParallelConfig] = None,
) -> str:
    kwargs = {} if arrivals is None else {"arrivals": arrivals}
    kwargs["parallel"] = parallel
    if name == "fig6":
        rows = figures.figure6(**kwargs)
        return format_rows(
            "Figure 6 — varying cache hit probability",
            "T.B multiplicity", rows, ("hit_rate",),
        )
    if name == "fig7":
        rows = figures.figure7(**kwargs)
        return format_rows(
            "Figure 7 — varying join selectivity",
            "T selectivity", rows, ("hit_rate",),
        )
    if name == "fig8":
        rows = figures.figure8(**kwargs)
        return format_rows(
            "Figure 8 — varying update/probe ratio",
            "update/probe", rows, ("hit_rate",),
        )
    if name == "fig9":
        # Scales arrivals per n internally.
        rows = figures.figure9(parallel=parallel)
        return format_rows(
            "Figure 9 — varying number of joining relations",
            "n relations", rows, ("caches_used",),
        )
    if name == "fig10":
        rows = figures.figure10(**kwargs)
        return format_rows(
            "Figure 10 — varying join cost (no S.B index)",
            "|S| window", rows, ("hit_rate",),
        )
    raise CLIError(
        f"unknown figure {name!r}; available: {sorted(FIGURES)}"
    )


def _run_fig12(
    arrivals: Optional[int], parallel: Optional[ParallelConfig] = None
) -> str:
    total = arrivals if arrivals is not None else 44_000
    series = figures.figure12(
        total_arrivals=total, burst_after_arrivals=total // 2,
        parallel=parallel,
    )
    lines = [
        "Figure 12 — adaptivity to changing stream rate",
        f"{'∆S tuples':>10} | {'T⋈(R⋈S)':>10} | {'R⋈(T⋈S)':>10} | "
        f"{'adaptive':>10} | caches",
    ]
    for a, b, c in zip(
        series.static_rs_cache, series.static_ts_cache, series.adaptive
    ):
        lines.append(
            f"{c.x:>10} | {a.window_throughput:>10,.0f} | "
            f"{b.window_throughput:>10,.0f} | "
            f"{c.window_throughput:>10,.0f} | {list(c.used_caches)}"
        )
    return "\n".join(lines)


def _run_fig13(
    arrivals: Optional[int], parallel: Optional[ParallelConfig] = None
) -> str:
    kwargs = {} if arrivals is None else {"arrivals": arrivals}
    rows = figures.figure13(parallel=parallel, **kwargs)
    lines = [
        "Figure 13 — adaptivity to memory availability (D8)",
        f"{'budget KB':>10} | {'MJoin':>9} | {'A-Caching':>10} | {'XJoin':>10}",
    ]
    for r in rows:
        xjoin = f"{r.xjoin_rate:,.0f}" if r.xjoin_rate else "infeasible"
        lines.append(
            f"{r.memory_kb:>10} | {r.mjoin_rate:>9,.0f} | "
            f"{r.acaching_rate:>10,.0f} | {xjoin:>10}"
        )
    return "\n".join(lines)


def cmd_list(_args: argparse.Namespace) -> str:
    """``list``: enumerate the available experiments."""
    lines = ["available experiments:"]
    for name, blurb in FIGURES.items():
        lines.append(f"  figure {name:<6} {blurb}")
    lines.append("  spectrum D1..D8   M/X/P/G comparison at a Table 2 point")
    lines.append("  table2            print the Table 2 parameters")
    lines.append("  demo              quick adaptive-vs-MJoin demonstration")
    lines.append("  chaos EXP         run an experiment under fault injection")
    lines.append("  chaos EXP --crash kill a journaled run, recover, verify")
    lines.append("  recover DIR       restore a crashed --crash journal")
    lines.append("  bench             serial-vs-sharded throughput benchmark")
    lines.append("  bench --wall      wall-clock + profiler-overhead benchmark")
    lines.append("  bench --multi     shared-engine vs isolated multi-query hosting")
    lines.append(
        "  profile EXP       span-profile one experiment "
        f"({', '.join(sorted(PROFILE_EXPERIMENTS))})"
    )
    return "\n".join(lines)


def cmd_figure(args: argparse.Namespace) -> str:
    """``figure NAME``: regenerate one figure's data series."""
    _check_arrivals(args)
    parallel = _parallel_of(args)
    if args.name == "fig12":
        return _run_fig12(args.arrivals, parallel)
    if args.name == "fig13":
        return _run_fig13(args.arrivals, parallel)
    return _run_row_figure(args.name, args.arrivals, parallel)


def cmd_spectrum(args: argparse.Namespace) -> str:
    """``spectrum POINT``: the M/X/P/G comparison at a Table 2 point."""
    _check_arrivals(args)
    parallel = _parallel_of(args)
    known = [f"D{i}" for i in range(1, 9)]
    if args.point not in known:
        raise CLIError(
            f"unknown Table 2 point {args.point!r}; available: {known}"
        )
    results = figures.figure11(
        points=(args.point,),
        arrivals=args.arrivals if args.arrivals else 16_000,
        parallel=parallel,
    )
    (result,) = results
    lines = [f"plan spectrum at {result.point}:"]
    for label, rate in result.rates.items():
        lines.append(f"  {label}: {rate:>10,.0f} tuples/sec")
    lines.append(f"  P caches: {result.detail['P_caches']}")
    lines.append(f"  G caches: {result.detail['G_caches']}")
    lines.append(f"  X tree:   {result.detail['xjoin_tree']}")
    return "\n".join(lines)


def cmd_table2(_args: argparse.Namespace) -> str:
    """``table2``: print the Table 2 parameters."""
    return figures.table2()


def cmd_demo(args: argparse.Namespace) -> str:
    """``demo``: a quick adaptive-caching-vs-MJoin measurement."""
    from functools import partial

    from repro.planner.enumeration import run_acaching, run_mjoin
    from repro.streams.workloads import three_way_chain

    _check_arrivals(args)
    parallel = _parallel_of(args)
    arrivals = args.arrivals if args.arrivals else 12_000
    factory = partial(
        three_way_chain, t_multiplicity=5.0, window_r=96, window_s=96
    )

    mjoin = run_mjoin(factory, arrivals, parallel=parallel)
    cached = run_acaching(
        factory, arrivals, global_quota=6,
        reopt_interval_updates=3000, stat_window=5, parallel=parallel,
    )
    sharding = (
        f" ({parallel.shards} shards, {parallel.backend} backend)"
        if parallel.active
        else ""
    )
    return (
        f"three-way stream join, adaptive caching vs MJoin{sharding}\n"
        f"  MJoin      : {mjoin.throughput:>10,.0f} tuples/sec\n"
        f"  A-Caching  : {cached.throughput:>10,.0f} tuples/sec "
        f"(caches {cached.detail['used_caches']}, "
        f"hit rate {cached.detail['hit_rate']:.0%})\n"
        f"  speedup    : {cached.throughput / mjoin.throughput:.2f}x"
    )


def _cmd_crash_chaos(args: argparse.Namespace) -> str:
    """The ``chaos EXP --crash KIND`` variant: kill, recover, verify."""
    from repro.faults.crashes import format_crash_report, run_crash_chaos

    parallel = _parallel_of(args)
    report = run_crash_chaos(
        args.experiment,
        seed=args.seed,
        arrivals=args.arrivals,
        kind=args.crash,
        cache_mode=args.cache_mode,
        checkpoint_interval=args.checkpoint_interval,
        fsync_every=args.fsync_every,
        wal_dir=args.wal_dir,
        shards=parallel.shards,
        recover=not args.no_recover,
    )
    return format_crash_report(report)


def _cmd_service_chaos(args: argparse.Namespace) -> str:
    """``chaos service``: hostile clients against a live server."""
    from repro.faults.service_chaos import (
        ServiceChaosConfig,
        format_service_chaos_report,
        run_service_chaos,
        verify_service_chaos,
    )

    config = ServiceChaosConfig(
        seed=args.seed,
        honest_batches=args.arrivals if args.arrivals else 60,
    )
    report = run_service_chaos(config)
    body = format_service_chaos_report(report)
    if args.jsonl:
        write_jsonl(args.jsonl, json.dumps(report.to_dict()) + "\n")
        body += f"\nwrote chaos JSONL to {args.jsonl}"
    verify_service_chaos(report)
    return body


def _chaos_experiment_name(args: argparse.Namespace) -> str:
    """The experiment reference one ``chaos``/``bench`` call names.

    Exactly one of the positional EXPERIMENT, ``--trace FILE``, or
    ``--scenario FILE`` must be given; the flags map onto the scenario
    library's ``trace:PATH`` / ``scenario-file:PATH`` references.
    """
    given = [
        ref
        for ref in (
            args.experiment,
            f"trace:{args.trace}" if args.trace else None,
            f"scenario-file:{args.scenario}" if args.scenario else None,
        )
        if ref
    ]
    if len(given) != 1:
        raise CLIError(
            "pass exactly one of an EXPERIMENT name, --trace FILE, or "
            "--scenario FILE"
        )
    return given[0]


def _split_list(text: Optional[str]) -> Optional[List[str]]:
    if not text:
        return None
    parts = [part.strip() for part in text.split(",") if part.strip()]
    return parts or None


def _cmd_chaos_matrix(args: argparse.Namespace) -> str:
    """``chaos matrix``: the scenario x fault plan x mode campaign."""
    from repro.scenarios.matrix import (
        FAIL,
        format_matrix_report,
        matrix_to_json,
        run_matrix,
    )

    out = args.out if args.out is not None else "CHAOS_matrix.json"
    _ensure_writable(out)
    scenarios = _split_list(args.scenarios) or []
    if args.trace:
        scenarios.append(f"trace:{args.trace}")
    if args.scenario:
        scenarios.append(f"scenario-file:{args.scenario}")
    payload = run_matrix(
        scenarios=scenarios or None,
        plans=_split_list(args.plans),
        modes=_split_list(args.modes),
        arrivals=args.arrivals if args.arrivals else 1500,
        seed=args.seed,
        progress=print,
    )
    body = format_matrix_report(payload)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(matrix_to_json(payload))
        body += f"\nwrote chaos matrix to {out}"
    if payload["totals"]["fail"]:
        failed = [
            f"{c['scenario']}/{c['plan']}/{c['mode']}"
            for c in payload["cells"]
            if c["verdict"] == FAIL
        ]
        raise CLIError(
            f"{len(failed)} matrix cell(s) FAILED: {', '.join(failed)}"
        )
    return body


def cmd_chaos(args: argparse.Namespace) -> str:
    """``chaos EXP``: run one experiment under a seeded fault schedule."""
    if args.experiment == "service":
        _ensure_writable(args.jsonl)
        return _cmd_service_chaos(args)
    if args.experiment == "matrix":
        _check_arrivals(args)
        return _cmd_chaos_matrix(args)
    args.experiment = _chaos_experiment_name(args)
    from repro.faults.chaos import (
        chaos_to_jsonl,
        format_chaos_report,
        format_dead_letters,
        parse_fault_overrides,
        run_chaos,
    )

    _check_arrivals(args)
    if args.crash is not None:
        return _cmd_crash_chaos(args)
    parallel = _parallel_of(args)
    _ensure_writable(args.jsonl)
    overrides = parse_fault_overrides(args.faults)
    report = run_chaos(
        args.experiment,
        seed=args.seed,
        arrivals=args.arrivals,
        overrides=overrides,
        shards=parallel.shards,
        backend=parallel.backend,
        batch_size=args.batch_size,
    )
    body = format_chaos_report(report)
    if args.dump_dead_letters:
        body += "\n" + format_dead_letters(report)
    if args.jsonl:
        write_jsonl(args.jsonl, chaos_to_jsonl(report))
        body += f"\nwrote chaos JSONL to {args.jsonl}"
    return body


def cmd_recover(args: argparse.Namespace) -> str:
    """``recover DIR``: restore a crashed journal directory and verify."""
    from repro.faults.crashes import format_crash_report, recover_and_verify

    return format_crash_report(recover_and_verify(args.directory))


def _parse_batch_sizes(args: argparse.Namespace) -> Optional[List[int]]:
    """The micro-batch sizes a ``bench`` invocation asked for, if any."""
    sizes: List[int] = []
    if args.batch_sizes:
        try:
            sizes = [
                int(part)
                for part in args.batch_sizes.split(",")
                if part.strip()
            ]
        except ValueError:
            raise CLIError(
                f"--batch-sizes expects a comma-separated list of "
                f"integers, got {args.batch_sizes!r}"
            )
    if args.batch_size is not None:
        # A single --batch-size N measures 1 (the baseline) and N.
        sizes = [1, args.batch_size]
    if not sizes:
        return None
    for size in sizes:
        if size < 1:
            raise CLIError(f"batch sizes must be >= 1, got {size}")
    return sizes


def _run_batching_cmd(args: argparse.Namespace, sizes: List[int]) -> str:
    """The per-tuple vs micro-batched variant of ``bench``."""
    from repro.bench.batching import (
        BATCHING_DEFAULT_ARRIVALS,
        BATCHING_DEFAULT_OUT,
        batching_to_json,
        format_batching_report,
        run_batching_bench,
    )

    out = args.out if args.out is not None else BATCHING_DEFAULT_OUT
    _ensure_writable(out)
    report = run_batching_bench(
        batch_sizes=sizes,
        arrivals=(
            args.arrivals if args.arrivals else BATCHING_DEFAULT_ARRIVALS
        ),
    )
    body = format_batching_report(report)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(batching_to_json(report))
        body += f"\nwrote batching baseline to {out}"
    return body


def _run_recovery_bench_cmd(args: argparse.Namespace) -> str:
    """The durability-overhead variant of ``bench`` (``--recovery``)."""
    from repro.bench.recovery import (
        DEFAULT_CHECKPOINT_INTERVAL,
        RECOVERY_DEFAULT_ARRIVALS,
        RECOVERY_DEFAULT_OUT,
        format_recovery_bench_report,
        recovery_bench_to_json,
        run_recovery_bench,
    )

    out = args.out if args.out is not None else RECOVERY_DEFAULT_OUT
    _ensure_writable(out)
    fsync_values = [args.fsync_every] if args.fsync_every else [64]
    report = run_recovery_bench(
        fsync_every_values=fsync_values,
        arrivals=(
            args.arrivals if args.arrivals else RECOVERY_DEFAULT_ARRIVALS
        ),
        checkpoint_interval=(
            args.checkpoint_interval
            if args.checkpoint_interval
            else DEFAULT_CHECKPOINT_INTERVAL
        ),
    )
    body = format_recovery_bench_report(report)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(recovery_bench_to_json(report))
        body += f"\nwrote recovery baseline to {out}"
    return body


def _parse_shard_counts(args: argparse.Namespace) -> tuple:
    """The shard counts a ``bench`` invocation asked for."""
    try:
        shard_counts = tuple(
            int(part) for part in args.shards.split(",") if part.strip()
        )
    except ValueError:
        raise CLIError(
            f"--shards expects a comma-separated list of integers, "
            f"got {args.shards!r}"
        )
    if not shard_counts:
        raise CLIError("--shards needs at least one shard count")
    for count in shard_counts:
        if count < 1:
            raise CLIError(f"shard counts must be >= 1, got {count}")
    return shard_counts


def _run_wall_bench_cmd(args: argparse.Namespace) -> str:
    """The wall-clock + profiler-overhead variant of ``bench`` (--wall)."""
    from repro.bench.wall import (
        WALL_DEFAULT_ARRIVALS,
        WALL_DEFAULT_OUT,
        WALL_DEFAULT_REPEATS,
        format_wall_report,
        run_wall_bench,
        wall_to_json,
    )

    out = args.out if args.out is not None else WALL_DEFAULT_OUT
    _ensure_writable(out)
    repeats = args.repeats if args.repeats else WALL_DEFAULT_REPEATS
    if repeats < 1:
        raise CLIError(f"--repeats must be >= 1, got {repeats}")
    report = run_wall_bench(
        arrivals=args.arrivals if args.arrivals else WALL_DEFAULT_ARRIVALS,
        repeats=repeats,
        # The sharded point runs at the largest requested shard count.
        shards=max(_parse_shard_counts(args)),
        backend=args.backend,
    )
    body = format_wall_report(report)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(wall_to_json(report))
        body += f"\nwrote wall baseline to {out}"
    return body


def _run_multi_bench_cmd(args: argparse.Namespace) -> str:
    """The ``bench --multi`` variant: shared vs isolated hosting."""
    from repro.bench.multi import (
        MULTI_DEFAULT_ARRIVALS,
        MULTI_DEFAULT_OUT,
        MULTI_DEFAULT_QUERIES,
        format_multi_bench_report,
        multi_bench_to_json,
        run_multi_bench,
    )

    queries = args.queries if args.queries else MULTI_DEFAULT_QUERIES
    if queries < 2:
        raise CLIError(f"--queries must be >= 2, got {queries}")
    out = args.out if args.out is not None else MULTI_DEFAULT_OUT
    _ensure_writable(out)
    report = run_multi_bench(
        queries=queries,
        arrivals=(
            args.arrivals if args.arrivals else MULTI_DEFAULT_ARRIVALS
        ),
    )
    body = format_multi_bench_report(report)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(multi_bench_to_json(report))
        body += f"\nwrote multi-query baseline to {out}"
    return body


def _run_service_bench_cmd(args: argparse.Namespace) -> str:
    """The ``bench --service`` variant: real sockets, three scenarios."""
    from repro.bench.service import (
        SERVICE_DEFAULT_BATCHES,
        SERVICE_DEFAULT_OUT,
        format_service_bench_report,
        run_service_bench,
        service_bench_to_json,
    )

    batches = args.batches if args.batches else SERVICE_DEFAULT_BATCHES
    out = args.out if args.out is not None else SERVICE_DEFAULT_OUT
    _ensure_writable(out)
    report = run_service_bench(batches=batches)
    body = format_service_bench_report(report)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(service_bench_to_json(report))
        body += f"\nwrote service baseline to {out}"
    return body


def cmd_serve(args: argparse.Namespace) -> str:
    """``serve``: run the service until SIGINT/SIGTERM, then drain.

    Bind failures surface as the library's one-line ``error:`` (exit 1);
    a delivered signal drains every query (checkpoint + WAL close) and
    exits 0 — acknowledged updates are durable either way.
    """
    import signal
    import threading

    from repro.service import ServiceConfig, ServiceThread

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        wal_root=args.wal_root,
        checkpoint_interval=args.checkpoint_interval,
        tenant_rate=args.tenant_rate,
        queue_capacity_updates=args.queue_capacity,
        shared_engine=args.shared_engine,
    )
    thread = ServiceThread(config)
    url = thread.start()
    stop = threading.Event()

    def _on_signal(_signum, _frame) -> None:
        stop.set()

    previous = {
        signal.SIGINT: signal.signal(signal.SIGINT, _on_signal),
        signal.SIGTERM: signal.signal(signal.SIGTERM, _on_signal),
    }
    durability = (
        f"journaling under {args.wal_root}" if args.wal_root
        else "in-memory (no --wal-root: no durability)"
    )
    print(f"serving at {url} — {durability}; SIGINT/SIGTERM drains",
          flush=True)
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        thread.stop()
    return f"drained and stopped {url}"


def cmd_bench(args: argparse.Namespace) -> str:
    """``bench``: serial-vs-sharded throughput on the 6-way workload.

    With ``--batch-size``/``--batch-sizes`` it instead measures
    per-tuple vs micro-batched execution (``BENCH_batching.json``); with
    ``--recovery`` it measures WAL + checkpoint overhead against the
    unjournaled baseline (``BENCH_recovery.json``); with ``--wall`` it
    measures real wall throughput and the span profiler's overhead
    (``BENCH_wall.json``); with ``--multi`` it measures shared-engine
    vs isolated multi-query hosting at a fixed global memory quota
    (``BENCH_multi.json``).
    """
    from repro.parallel.bench import (
        DEFAULT_ARRIVALS,
        DEFAULT_OUT,
        bench_to_json,
        format_bench_report,
        run_parallel_bench,
    )

    _check_arrivals(args)
    if args.backend not in BACKENDS:
        raise CLIError(
            f"--backend must be one of {list(BACKENDS)}, "
            f"got {args.backend!r}"
        )
    if (args.trace or args.scenario) and (
        args.multi or args.service or args.recovery or args.wall
        or args.batch_size is not None or args.batch_sizes
    ):
        raise CLIError(
            "--trace/--scenario only drive the parallel bench; drop the "
            "other mode flags"
        )
    if args.multi:
        return _run_multi_bench_cmd(args)
    if args.service:
        return _run_service_bench_cmd(args)
    if args.recovery:
        return _run_recovery_bench_cmd(args)
    if args.wall:
        return _run_wall_bench_cmd(args)
    batch_sizes = _parse_batch_sizes(args)
    if batch_sizes is not None:
        return _run_batching_cmd(args, batch_sizes)
    shard_counts = _parse_shard_counts(args)
    out = args.out if args.out is not None else DEFAULT_OUT
    _ensure_writable(out)
    arrivals = args.arrivals if args.arrivals else DEFAULT_ARRIVALS
    workload_factory = None
    if args.trace and args.scenario:
        raise CLIError("pass --trace or --scenario, not both")
    if args.trace:
        from functools import partial

        from repro.scenarios.trace import load_trace_workload

        # Load eagerly: an unknown path or bad checksum must fail now,
        # not inside a shard worker.
        recorded = load_trace_workload(args.trace).recorded_arrivals
        workload_factory = partial(load_trace_workload, args.trace)
        arrivals = args.arrivals if args.arrivals else recorded
    elif args.scenario:
        from functools import partial

        from repro.scenarios.library import (
            build_scenario_file_workload,
            load_scenario,
        )

        scenario = load_scenario(args.scenario)
        if not args.arrivals:
            arrivals = int(scenario["arrivals"])
        workload_factory = partial(
            build_scenario_file_workload, args.scenario, arrivals
        )
    report = run_parallel_bench(
        shard_counts=shard_counts,
        arrivals=arrivals,
        backend=args.backend,
        workload_factory=workload_factory,
    )
    body = format_bench_report(report)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(bench_to_json(report))
        body += f"\nwrote bench baseline to {out}"
    return body


def _profile_workload(name: str):
    """The workload factory behind one ``profile`` experiment name."""
    from functools import partial

    from repro.streams.workloads import fig9_workload, three_way_chain

    if name not in PROFILE_EXPERIMENTS:
        raise CLIError(
            f"unknown profile experiment {name!r}; "
            f"available: {sorted(PROFILE_EXPERIMENTS)}"
        )
    relations = PROFILE_EXPERIMENTS[name]
    if relations:
        return partial(fig9_workload, relations, window=48)
    return partial(
        three_way_chain, t_multiplicity=5.0, window_r=96, window_s=96
    )


def _profile_tuning():
    """Adaptive tunables for ``profile`` runs.

    Faster-adapting than the bench's: a sharded run hands each worker a
    stream ``shards``× thinner, and under the bench intervals the
    per-shard statistics profiler starves before the re-optimizer ever
    installs a cache (the 4-shard point of BENCH_parallel.json sits at
    hit rate 0.0 for exactly this reason). Shorter profiling/re-opt
    intervals keep caches engaging at profiling scales so the per-shard
    probe/hit counters show the imbalance instead of a wall of zeros.
    """
    from repro.core.acaching import ACachingConfig
    from repro.core.profiler import ProfilerConfig
    from repro.core.reoptimizer import ReoptimizerConfig
    from repro.ordering.agreedy import OrderingConfig

    return ACachingConfig(
        profiler=ProfilerConfig(
            window=6, profile_probability=0.3, bloom_window_tuples=256
        ),
        reoptimizer=ReoptimizerConfig(
            reopt_interval_updates=300,
            profiling_phase_updates=100,
            global_quota=6,
        ),
        ordering=OrderingConfig(interval_updates=400),
        adaptive_ordering=True,
    )


def _hotspot_lines(snapshot) -> List[str]:
    """The span hotspot table ``profile`` prints."""
    from repro.bench.wall import hotspot_table

    lines = [
        f"{'span':<24} | {'count':>7} | {'self ms':>8} | "
        f"{'p50 us':>7} | {'p95 us':>8} | {'p99 us':>8} | {'virt ms':>8}"
    ]
    for row in hotspot_table(snapshot):
        lines.append(
            f"{row['span']:<24} | {row['count']:>7,} | "
            f"{row['self_ms']:>8.1f} | {row['p50_us']:>7.1f} | "
            f"{row['p95_us']:>8.1f} | {row['p99_us']:>8.1f} | "
            f"{row['virtual_ms']:>8.1f}"
        )
    return lines


def cmd_profile(args: argparse.Namespace) -> str:
    """``profile EXP``: run one experiment under the span profiler.

    Serial runs report where the wall time went (hotspot table, folded
    stacks, span coverage of the measured wall time); ``--shards N``
    runs partitioned, merges each worker's telemetry under ``shard``
    labels, and reports per-shard cache behaviour — the view that makes
    profiler starvation on a hot shard observable.
    """
    import time as _time

    from repro.api import EngineConfig, Session, ShardingConfig
    from repro.obs.profile import write_pstats

    _check_arrivals(args)
    parallel = _parallel_of(args)
    if args.batch_size < 1:
        raise CLIError(f"--batch-size must be >= 1, got {args.batch_size}")
    for path in (args.flame, args.pstats, args.prometheus):
        _ensure_writable(path)
    factory = _profile_workload(args.experiment)
    arrivals = args.arrivals if args.arrivals else 4_000
    config = EngineConfig(
        profile=True,
        batch_size=args.batch_size,
        sharding=ShardingConfig(
            shards=parallel.shards, backend=parallel.backend
        ),
        tuning=_profile_tuning(),
        obs_flame=args.flame,
        obs_metrics_prom=args.prometheus,
    )
    session = Session.adaptive(factory, config)
    lines: List[str] = []
    if parallel.active:
        run = session.execute(arrivals=arrivals, output_mode="none")
        snapshot = session.last_telemetry.profile
        lines.append(
            f"profiled {args.experiment} — {arrivals} arrivals, "
            f"{parallel.shards} shards ({parallel.backend} backend), "
            f"{run.wall_seconds:.2f}s wall"
        )
        lines.append(
            f"{'shard':>5} | {'updates':>8} | {'outputs':>8} | "
            f"{'probes':>8} | {'hits':>8} | {'hit %':>6} | {'virtual s':>9}"
        )
        for result in run.results:
            stats = result.stats
            rate = (
                stats.cache_hits / stats.cache_probes
                if stats.cache_probes
                else 0.0
            )
            lines.append(
                f"{stats.shard:>5} | {stats.updates_processed:>8,} | "
                f"{stats.outputs_emitted:>8,} | {stats.cache_probes:>8,} | "
                f"{stats.cache_hits:>8,} | {rate:>6.1%} | "
                f"{stats.clock_us / 1e6:>9.3f}"
            )
    else:
        session.plan  # build the engine before the wall timer starts
        started = _time.perf_counter()
        session.run(arrivals=arrivals)
        wall = _time.perf_counter() - started
        snapshot = session.profile_snapshot()
        coverage = snapshot.root_self_ns("run") / (wall * 1e9)
        lines.append(
            f"profiled {args.experiment} — {arrivals} arrivals, "
            f"{wall:.2f}s wall"
        )
        lines.append(
            f"span coverage: run-rooted spans account for {coverage:.1%} "
            f"of the measured wall time"
        )
    lines.extend(_hotspot_lines(snapshot))
    if args.flame:
        lines.append(f"wrote folded stacks to {args.flame}")
    if args.prometheus:
        lines.append(f"wrote Prometheus metrics to {args.prometheus}")
    if args.pstats:
        write_pstats(args.pstats, snapshot)
        lines.append(f"wrote pstats profile to {args.pstats}")
    return "\n".join(lines)


TRACEABLE = tuple(sorted(FIGURES)) + ("demo",)


def _run_experiment(name: str, args: argparse.Namespace) -> str:
    """Dispatch one traceable experiment by name (figure key or demo)."""
    _check_arrivals(args)
    parallel = _parallel_of(args)
    if name == "demo":
        return cmd_demo(args)
    if name == "fig12":
        return _run_fig12(args.arrivals, parallel)
    if name == "fig13":
        return _run_fig13(args.arrivals, parallel)
    return _run_row_figure(name, args.arrivals, parallel)


def _trace_summary(active: "obs.Observability") -> str:
    """Human-readable recap of what one traced run captured."""
    lines = ["trace summary:"]
    for kind in active.tracer.kinds():
        count = len(active.tracer.events(kind))
        dropped = active.tracer.dropped.get(kind, 0)
        note = f" ({dropped} dropped)" if dropped else ""
        lines.append(f"  {kind:<18} {count:>8} events{note}")
    lines.append(f"  {'decisions':<18} {len(active.decisions):>8} records")
    for record in active.decisions.entries()[-12:]:
        net = f" net={record.net:,.0f}" if record.net is not None else ""
        lines.append(
            f"    t={record.t_us / 1e6:>9.3f}s {record.action:<13} "
            f"{record.candidate_id:<8}{net}  {record.reason}"
        )
    return "\n".join(lines)


def _ensure_writable(path: Optional[str]) -> None:
    """Fail fast on an unwritable export path — before the experiment
    runs, not after minutes of work produce a trace with nowhere to go."""
    if not path:
        return
    try:
        with open(path, "a", encoding="utf-8"):
            pass
    except OSError as error:
        raise SystemExit(f"cannot write {path}: {error}")


def cmd_trace(args: argparse.Namespace) -> str:
    """``trace EXP``: run one experiment with structured tracing on."""
    _ensure_writable(args.jsonl)
    _ensure_writable(args.prometheus)
    active = obs.Observability.tracing()
    with obs.session(active):
        body = _run_experiment(args.experiment, args)
    lines = [body, "", _trace_summary(active)]
    if args.jsonl:
        write_jsonl(args.jsonl, observability_to_jsonl(active))
        lines.append(f"wrote JSONL trace to {args.jsonl}")
    if args.prometheus:
        write_jsonl(args.prometheus, registry_to_prometheus(active.registry))
        lines.append(f"wrote Prometheus metrics to {args.prometheus}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (also used by the tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's experiments (see EXPERIMENTS.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        handler=cmd_list
    )

    def add_parallel_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--shards", type=int, default=1, metavar="N",
            help="hash-partition the streams across N shards (default 1)",
        )
        command.add_argument(
            "--parallel-backend", default="serial", metavar="BACKEND",
            help="how shards execute: serial (in-process, default) "
                 "or process (one OS process per shard)",
        )

    figure = sub.add_parser("figure", help="regenerate one figure's series")
    # Name validated in the handler so unknown figures surface as the
    # library's one-line `error: ...` rather than an argparse usage dump.
    figure.add_argument("name", metavar="NAME")
    figure.add_argument("--arrivals", type=int, default=None)
    figure.add_argument(
        "--obs-jsonl", metavar="PATH", default=None,
        help="run with tracing enabled; write the JSONL chronology here",
    )
    add_parallel_flags(figure)
    figure.set_defaults(handler=cmd_figure)

    spectrum = sub.add_parser(
        "spectrum", help="M/X/P/G comparison at a Table 2 point"
    )
    spectrum.add_argument("point", metavar="POINT")
    spectrum.add_argument("--arrivals", type=int, default=None)
    spectrum.add_argument(
        "--obs-jsonl", metavar="PATH", default=None,
        help="run with tracing enabled; write the JSONL chronology here",
    )
    add_parallel_flags(spectrum)
    spectrum.set_defaults(handler=cmd_spectrum)

    sub.add_parser("table2", help="print Table 2").set_defaults(
        handler=cmd_table2
    )

    demo = sub.add_parser("demo", help="adaptive caching vs MJoin, quickly")
    demo.add_argument("--arrivals", type=int, default=None)
    demo.add_argument(
        "--obs-jsonl", metavar="PATH", default=None,
        help="run with tracing enabled; write the JSONL chronology here",
    )
    add_parallel_flags(demo)
    demo.set_defaults(handler=cmd_demo)

    trace = sub.add_parser(
        "trace", help="run one experiment with structured tracing on"
    )
    trace.add_argument("experiment", choices=TRACEABLE)
    trace.add_argument("--arrivals", type=int, default=None)
    trace.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="write the merged trace + decision JSONL here",
    )
    trace.add_argument(
        "--prometheus", metavar="PATH", default=None,
        help="write a Prometheus-style metrics dump here",
    )
    trace.set_defaults(handler=cmd_trace)

    chaos = sub.add_parser(
        "chaos", help="run an experiment under deterministic fault injection"
    )
    chaos.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment name (figure key, demo, scenario:NAME, "
             "'matrix' for the campaign runner, or 'service'); see `list`",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--arrivals", type=int, default=None)
    chaos.add_argument(
        "--trace", metavar="FILE", default=None,
        help="run a recorded trace file instead of a named experiment",
    )
    chaos.add_argument(
        "--scenario", metavar="FILE", default=None,
        help="run a scenario file (JSON/YAML) instead of a named "
             "experiment",
    )
    chaos.add_argument(
        "--scenarios", metavar="NAME,...", default=None,
        help="with matrix: comma-separated scenario references "
             "(default: every built-in scenario)",
    )
    chaos.add_argument(
        "--plans", metavar="NAME,...", default=None,
        help="with matrix: fault plans to sweep (default: all)",
    )
    chaos.add_argument(
        "--modes", metavar="NAME,...", default=None,
        help="with matrix: execution modes to sweep (default: all)",
    )
    chaos.add_argument(
        "--out", metavar="PATH", default=None,
        help="with matrix: write the matrix JSON here "
             "(default CHAOS_matrix.json)",
    )
    chaos.add_argument(
        "--faults", metavar="K=V,...", default=None,
        help="override FaultSpec fields, e.g. "
             "duplicate_prob=0.05,burst_copies=5",
    )
    chaos.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="write the chaos summary + decision chronology here",
    )
    chaos.add_argument(
        "--batch-size", type=int, default=1, metavar="N",
        help="drive both passes through micro-batches of N updates "
             "(default 1 = per-update)",
    )
    chaos.add_argument(
        "--dump-dead-letters", action="store_true",
        help="print every quarantined update the dead-letter buffer "
             "retained",
    )
    chaos.add_argument(
        "--crash", metavar="KIND", default=None,
        help="crash-injection mode: kill a journaled run (at_event, "
             "torn_tail, during_checkpoint), recover it, and verify the "
             "result against a clean run",
    )
    chaos.add_argument(
        "--cache-mode", default="snapshot", metavar="MODE",
        help="checkpoint cache mode for --crash: snapshot (full engine) "
             "or rebuild (windows only; caches re-converge)",
    )
    chaos.add_argument(
        "--checkpoint-interval", type=int, default=500, metavar="N",
        help="updates between checkpoints for --crash (default 500)",
    )
    chaos.add_argument(
        "--fsync-every", type=int, default=32, metavar="N",
        help="WAL records per fsync batch for --crash (default 32)",
    )
    chaos.add_argument(
        "--wal-dir", metavar="DIR", default=None,
        help="keep the --crash journal here (with a manifest.json for "
             "`repro recover`) instead of a throwaway temp dir",
    )
    chaos.add_argument(
        "--no-recover", action="store_true",
        help="with --crash --wal-dir: stop after the kill, leaving a "
             "genuinely crashed journal for `repro recover DIR`",
    )
    add_parallel_flags(chaos)
    chaos.set_defaults(handler=cmd_chaos)

    recover = sub.add_parser(
        "recover",
        help="restore a crashed --crash journal directory and verify it",
    )
    recover.add_argument(
        "directory", metavar="DIR",
        help="the --wal-dir a `chaos --crash` run journaled into",
    )
    recover.set_defaults(handler=cmd_recover)

    bench = sub.add_parser(
        "bench",
        help="serial-vs-sharded (or per-tuple vs batched) throughput "
             "benchmark",
    )
    bench.add_argument(
        "--shards", default="1,2,4", metavar="N,N,...",
        help="comma-separated shard counts to measure (default 1,2,4)",
    )
    bench.add_argument("--arrivals", type=int, default=None)
    bench.add_argument(
        "--backend", default="process",
        help="shard backend: process (default) or serial",
    )
    bench.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="measure micro-batched execution at batch size N against "
             "the per-tuple baseline (writes BENCH_batching.json)",
    )
    bench.add_argument(
        "--batch-sizes", default=None, metavar="N,N,...",
        help="comma-separated micro-batch sizes to measure "
             "(e.g. 1,4,16,64; writes BENCH_batching.json)",
    )
    bench.add_argument(
        "--recovery", action="store_true",
        help="measure WAL + checkpoint overhead vs the unjournaled "
             "baseline (writes BENCH_recovery.json)",
    )
    bench.add_argument(
        "--wall", action="store_true",
        help="measure real wall-clock throughput (serial vs batched vs "
             "sharded) plus the span profiler's overhead "
             "(writes BENCH_wall.json)",
    )
    bench.add_argument(
        "--repeats", type=int, default=None, metavar="N",
        help="with --wall: repeats per mode, median reported (default 3)",
    )
    bench.add_argument(
        "--fsync-every", type=int, default=None, metavar="N",
        help="with --recovery: WAL records per fsync batch (default 64)",
    )
    bench.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="N",
        help="with --recovery: updates between checkpoints (default 1000)",
    )
    bench.add_argument(
        "--service", action="store_true",
        help="benchmark the streaming service over a real socket: clean "
             "vs overloaded vs kill-then-recover (writes "
             "BENCH_service.json)",
    )
    bench.add_argument(
        "--batches", type=int, default=None, metavar="N",
        help="with --service: ingest batches per scenario (default 150)",
    )
    bench.add_argument(
        "--multi", action="store_true",
        help="benchmark shared-engine vs isolated multi-query hosting "
             "at a fixed global memory quota (writes BENCH_multi.json)",
    )
    bench.add_argument(
        "--queries", type=int, default=None, metavar="N",
        help="with --multi: number of hosted queries (default 3)",
    )
    bench.add_argument(
        "--trace", metavar="FILE", default=None,
        help="bench a recorded trace file instead of the built-in "
             "6-way workload",
    )
    bench.add_argument(
        "--scenario", metavar="FILE", default=None,
        help="bench a scenario file (JSON/YAML) instead of the built-in "
             "6-way workload",
    )
    bench.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the JSON baseline here (default BENCH_parallel.json, "
             "BENCH_batching.json with --batch-sizes, "
             "BENCH_recovery.json with --recovery, "
             "BENCH_service.json with --service, or "
             "BENCH_multi.json with --multi)",
    )
    bench.set_defaults(handler=cmd_bench)

    serve = sub.add_parser(
        "serve",
        help="run the streaming ingestion service (HTTP + WebSocket)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8734,
        help="bind port; 0 picks an ephemeral port (default 8734)",
    )
    serve.add_argument(
        "--wal-root", metavar="DIR", default=None,
        help="journal queries under DIR/<query>/ and resume them on "
             "restart (no DIR = in-memory only, no durability)",
    )
    serve.add_argument(
        "--checkpoint-interval", type=int, default=1000, metavar="N",
        help="updates between checkpoints per query (default 1000)",
    )
    serve.add_argument(
        "--tenant-rate", type=float, default=50_000.0, metavar="R",
        help="admission token-bucket refill, updates/sec per tenant "
             "(default 50000)",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=8192, metavar="N",
        help="bounded ingress queue capacity in updates (default 8192)",
    )
    serve.add_argument(
        "--shared-engine", action="store_true",
        help="host every registered query on one multi-query engine "
             "(shared streams + inter-query caches; incompatible with "
             "--wal-root)",
    )
    serve.set_defaults(handler=cmd_serve)

    profile = sub.add_parser(
        "profile",
        help="run one experiment under the dual-clock span profiler",
    )
    # Name validated in the handler for the library's one-line error.
    profile.add_argument("experiment", metavar="EXP")
    profile.add_argument("--arrivals", type=int, default=None)
    profile.add_argument(
        "--batch-size", type=int, default=1, metavar="N",
        help="drive the run in micro-batches of N updates (default 1)",
    )
    profile.add_argument(
        "--flame", metavar="PATH", default=None,
        help="write folded stacks here (flamegraph.pl / inferno input); "
             "sharded runs prefix each stack with its shard",
    )
    profile.add_argument(
        "--pstats", metavar="PATH", default=None,
        help="write a pstats-loadable dump here "
             "(python -m pstats PATH, or pstats.Stats(PATH))",
    )
    profile.add_argument(
        "--prometheus", metavar="PATH", default=None,
        help="write the metrics dump here (sharded runs label every "
             "per-shard series shard=\"N\")",
    )
    add_parallel_flags(profile)
    profile.set_defaults(handler=cmd_profile)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        obs_jsonl = getattr(args, "obs_jsonl", None)
        if obs_jsonl:
            _ensure_writable(obs_jsonl)
            active = obs.Observability.tracing()
            with obs.session(active):
                output = args.handler(args)
            write_jsonl(obs_jsonl, observability_to_jsonl(active))
            output += f"\nwrote JSONL trace to {obs_jsonl}"
        else:
            output = args.handler(args)
        print(output)
    except BrokenPipeError:  # e.g. `python -m repro table2 | head`
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except ReproError as error:
        # Library errors are user-facing configuration problems, not
        # crashes: one line on stderr, exit status 1, no traceback.
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
