"""Hash indexes over windowed relations.

Each join operator uses an index on the joined attribute whenever one
exists (Section 3.1); Figure 10's experiment removes an index to force a
nested-loop join, so indexes are optional per attribute.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List

from repro.streams.tuples import Row


class HashIndex:
    """An equality index on one attribute position of a relation.

    Maps an attribute value to the set of live rows carrying that value.
    Rows are keyed by rid inside each bucket so that deletes remove the
    exact window entry even under duplicate values.
    """

    __slots__ = ("position", "_buckets")

    def __init__(self, position: int):
        self.position = position
        self._buckets: Dict[Any, Dict[int, Row]] = defaultdict(dict)

    def add(self, row: Row) -> None:
        """Index one live row."""
        self._buckets[row.values[self.position]][row.rid] = row

    def remove(self, row: Row) -> None:
        """Unindex one row by identity; absent rows are ignored."""
        value = row.values[self.position]
        bucket = self._buckets.get(value)
        if bucket is None:
            return
        bucket.pop(row.rid, None)
        if not bucket:
            del self._buckets[value]

    def lookup(self, value: Any) -> List[Row]:
        """All live rows whose indexed attribute equals ``value``."""
        bucket = self._buckets.get(value)
        if not bucket:
            return []
        return list(bucket.values())

    def count(self, value: Any) -> int:
        """Number of live rows matching ``value`` (no materialization)."""
        bucket = self._buckets.get(value)
        return len(bucket) if bucket else 0

    def distinct_values(self) -> int:
        """Number of distinct indexed attribute values."""
        return len(self._buckets)

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashIndex(pos={self.position}, values={len(self._buckets)})"


def bulk_build(position: int, rows: Iterable[Row]) -> HashIndex:
    """Build an index over an existing row collection."""
    index = HashIndex(position)
    for row in rows:
        index.add(row)
    return index
