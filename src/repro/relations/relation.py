"""Windowed relation storage.

A :class:`Relation` holds the current contents of one sliding window — the
relation state ``Ri`` that pipelines join against. It maintains hash
indexes on whichever attributes the query plan requested; lookups on a
non-indexed attribute fall back to a scan (the Figure 10 nested-loop
configuration).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.errors import SchemaError
from repro.relations.index import HashIndex
from repro.streams.events import TUPLE_BYTES
from repro.streams.tuples import Row, Schema


class Relation:
    """The live contents of one windowed relation plus its indexes."""

    def __init__(self, schema: Schema, indexed_attributes: Iterable[str] = ()):
        self.schema = schema
        self._rows: Dict[int, Row] = {}
        self._indexes: Dict[str, HashIndex] = {}
        for attribute in indexed_attributes:
            self.add_index(attribute)

    # ------------------------------------------------------------------
    # index management
    # ------------------------------------------------------------------
    def add_index(self, attribute: str) -> HashIndex:
        """Create (or return) a hash index on ``attribute``."""
        if attribute in self._indexes:
            return self._indexes[attribute]
        position = self.schema.index_of(attribute)
        index = HashIndex(position)
        for row in self._rows.values():
            index.add(row)
        self._indexes[attribute] = index
        return index

    def drop_index(self, attribute: str) -> None:
        """Remove the index on ``attribute`` (forcing scans), if present."""
        self._indexes.pop(attribute, None)

    def has_index(self, attribute: str) -> bool:
        """True if ``attribute`` has a hash index."""
        return attribute in self._indexes

    def index(self, attribute: str) -> HashIndex:
        """The hash index on ``attribute`` (SchemaError if absent)."""
        try:
            return self._indexes[attribute]
        except KeyError:
            raise SchemaError(
                f"no index on {self.schema.relation}.{attribute}"
            ) from None

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, row: Row) -> None:
        """Add a row to the window and all indexes (idempotent by rid).

        Re-delivery of a live row is a no-op; a live rid arriving with
        *different* values is treated as a replacement, removing the stale
        index postings first so no bucket keeps a dangling reference.
        """
        existing = self._rows.get(row.rid)
        if existing is not None:
            if existing.values == row.values:
                return
            self.delete(existing)
        self._rows[row.rid] = row
        for index in self._indexes.values():
            index.add(row)

    def delete(self, row: Row) -> None:
        """Remove a row by identity from the window and all indexes."""
        existing = self._rows.pop(row.rid, None)
        if existing is None:
            return
        for index in self._indexes.values():
            index.remove(existing)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def live_row(self, rid: int) -> Optional[Row]:
        """The live row with identity ``rid``, or None.

        The ingress guard uses this to recognize duplicate inserts and
        orphaned deletes; the coherence auditor uses it to check that a
        cached composite still references live window tuples.
        """
        return self._rows.get(rid)

    def matching(self, attribute: str, value: Any) -> List[Row]:
        """Rows whose ``attribute`` equals ``value``.

        Uses the hash index when one exists; otherwise scans — callers that
        account costs distinguish the two via :meth:`has_index`.
        """
        index = self._indexes.get(attribute)
        if index is not None:
            return index.lookup(value)
        position = self.schema.index_of(attribute)
        return [r for r in self._rows.values() if r.values[position] == value]

    def match_count(self, attribute: str, value: Any) -> int:
        """Number of rows matching, without materializing them."""
        index = self._indexes.get(attribute)
        if index is not None:
            return index.count(value)
        position = self.schema.index_of(attribute)
        return sum(1 for r in self._rows.values() if r.values[position] == value)

    def rows(self) -> Iterator[Row]:
        """Iterate over the live rows."""
        return iter(self._rows.values())

    def value_of(self, row: Row, attribute: str) -> Any:
        """The row's value for ``attribute`` (resolved via the schema)."""
        return row.values[self.schema.index_of(attribute)]

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: Row) -> bool:
        return row.rid in self._rows

    @property
    def memory_bytes(self) -> int:
        """Window footprint under the paper's 32-byte-tuple accounting."""
        return len(self._rows) * TUPLE_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.schema!r}, n={len(self)})"
