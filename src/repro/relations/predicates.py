"""Equijoin predicates and the join graph of a stream join.

All joins in the paper are equijoins ``Ri.attrj = Rk.attrl`` (Section 3.1).
The :class:`JoinGraph` owns the full predicate set of a query and answers
the structural questions the rest of the system needs:

* which predicates connect a new relation to a set of already-joined ones
  (pipeline construction),
* which predicates cross a pipeline prefix and a cached segment — these
  define the cache key ``Kijk`` (Section 3.2),
* whether two relations are connected at all (cross-product detection).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Sequence, Tuple

from repro.errors import PlanError, SchemaError
from repro.streams.tuples import Schema


class AttrRef(NamedTuple):
    """A fully qualified attribute reference, e.g. ``R.A``."""

    relation: str
    attribute: str

    def __repr__(self) -> str:
        return f"{self.relation}.{self.attribute}"


class EquiPredicate(NamedTuple):
    """An equijoin predicate ``left = right`` between two relations."""

    left: AttrRef
    right: AttrRef

    def relations(self) -> FrozenSet[str]:
        """The (one or two) relation names this object touches."""
        return frozenset((self.left.relation, self.right.relation))

    def side_for(self, relation: str) -> AttrRef:
        """The attribute reference on ``relation``'s side of the predicate."""
        if self.left.relation == relation:
            return self.left
        if self.right.relation == relation:
            return self.right
        raise PlanError(f"predicate {self} does not touch relation {relation!r}")

    def other_side(self, relation: str) -> AttrRef:
        """The attribute reference on the side opposite ``relation``."""
        if self.left.relation == relation:
            return self.right
        if self.right.relation == relation:
            return self.left
        raise PlanError(f"predicate {self} does not touch relation {relation!r}")

    def __repr__(self) -> str:
        return f"{self.left!r}={self.right!r}"


def parse_predicate(text: str) -> EquiPredicate:
    """Parse ``"R.A = S.B"`` into an :class:`EquiPredicate`.

    >>> parse_predicate("R.A = S.A")
    R.A=S.A
    """
    try:
        left_text, right_text = text.split("=")
        lrel, lattr = left_text.strip().split(".")
        rrel, rattr = right_text.strip().split(".")
    except ValueError:
        raise PlanError(f"cannot parse equijoin predicate {text!r}") from None
    return EquiPredicate(AttrRef(lrel, lattr), AttrRef(rrel, rattr))


class JoinGraph:
    """The schemas and equijoin predicates of one n-way stream join.

    Predicates are closed under transitivity: ``R1.A = R2.A`` and
    ``R2.A = R3.A`` imply ``R1.A = R3.A``, and the implied predicate is
    materialized so that plan enumeration (pipeline orders, join trees,
    cache keys) sees every legal connection — exactly what the paper's
    star queries ``R1(A) ⋈A … ⋈A Rn(A)`` rely on. ``base_predicates``
    keeps the predicates as written.
    """

    def __init__(self, schemas: Sequence[Schema], predicates: Iterable[EquiPredicate]):
        self.schemas: Dict[str, Schema] = {s.relation: s for s in schemas}
        if len(self.schemas) != len(schemas):
            raise SchemaError("duplicate relation names in join graph")
        self.base_predicates: Tuple[EquiPredicate, ...] = tuple(predicates)
        for pred in self.base_predicates:
            for ref in (pred.left, pred.right):
                if ref.relation not in self.schemas:
                    raise SchemaError(
                        f"predicate {pred} references unknown relation "
                        f"{ref.relation!r}"
                    )
                # Resolving eagerly surfaces typos at construction time.
                self.schemas[ref.relation].index_of(ref.attribute)
            if pred.left.relation == pred.right.relation:
                raise PlanError(f"self-join predicate not supported: {pred}")
        self.predicates: Tuple[EquiPredicate, ...] = self._transitive_closure()

    def _transitive_closure(self) -> Tuple[EquiPredicate, ...]:
        """All implied cross-relation equalities via union-find on attrs."""
        parent: Dict[AttrRef, AttrRef] = {}

        def find(ref: AttrRef) -> AttrRef:
            parent.setdefault(ref, ref)
            while parent[ref] != ref:
                parent[ref] = parent[parent[ref]]
                ref = parent[ref]
            return ref

        for pred in self.base_predicates:
            left_root, right_root = find(pred.left), find(pred.right)
            if left_root != right_root:
                parent[left_root] = right_root
        classes: Dict[AttrRef, List[AttrRef]] = {}
        for ref in parent:
            classes.setdefault(find(ref), []).append(ref)
        closed: List[EquiPredicate] = []
        seen = set()
        for members in classes.values():
            members.sort()
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    if a.relation == b.relation:
                        continue  # intra-relation equalities stay implicit
                    token = (a, b)
                    if token not in seen:
                        seen.add(token)
                        closed.append(EquiPredicate(a, b))
        return tuple(closed)

    @classmethod
    def parse(
        cls, schemas: Sequence[Schema], predicate_texts: Iterable[str]
    ) -> "JoinGraph":
        """Build a graph from ``"R.A = S.B"``-style predicate strings."""
        return cls(schemas, [parse_predicate(t) for t in predicate_texts])

    @property
    def relations(self) -> Tuple[str, ...]:
        """The (one or two) relation names this object touches."""
        return tuple(self.schemas)

    def attr_position(self, ref: AttrRef) -> int:
        """Column position of ``ref`` within its relation's schema."""
        return self.schemas[ref.relation].index_of(ref.attribute)

    def predicates_between(
        self, prior: Iterable[str], target: str
    ) -> List[EquiPredicate]:
        """Predicates linking ``target`` to any relation in ``prior``.

        These are exactly the predicates a pipeline join operator for
        ``target`` must enforce given that ``prior`` is already joined.
        """
        prior_set = set(prior)
        found = []
        for pred in self.predicates:
            rels = pred.relations()
            if target in rels and (rels - {target}) & prior_set:
                found.append(pred)
        return found

    def crossing_predicates(
        self, prefix: Iterable[str], segment: Iterable[str]
    ) -> List[EquiPredicate]:
        """Predicates with one side in ``prefix`` and the other in ``segment``.

        The cache key ``Kijk`` of a segment cache is built from these
        (Section 3.2): probe values come from the prefix side, entry keys
        from the segment side.
        """
        prefix_set, segment_set = set(prefix), set(segment)
        found = []
        for pred in self.predicates:
            a, b = pred.left.relation, pred.right.relation
            if (a in prefix_set and b in segment_set) or (
                b in prefix_set and a in segment_set
            ):
                found.append(pred)
        return found

    def internal_predicates(self, relations: Iterable[str]) -> List[EquiPredicate]:
        """Predicates entirely contained within ``relations``."""
        rel_set = set(relations)
        return [p for p in self.predicates if p.relations() <= rel_set]

    def are_connected(self, group_a: Iterable[str], group_b: Iterable[str]) -> bool:
        """True if any predicate crosses the two relation groups."""
        return bool(self.crossing_predicates(group_a, group_b))

    def connected_order(self, order: Sequence[str]) -> bool:
        """True if every relation in ``order`` (after the first) connects
        to at least one earlier relation — i.e. the pipeline never forms a
        cross product."""
        for i in range(1, len(order)):
            if not self.predicates_between(order[:i], order[i]):
                return False
        return True

    def __repr__(self) -> str:
        rels = ", ".join(self.relations)
        preds = ", ".join(repr(p) for p in self.predicates)
        return f"JoinGraph([{rels}]; {preds})"
