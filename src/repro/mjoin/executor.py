"""The MJoin executor (Section 3.1 + Figure 4's Executor component).

Owns the relation states and one :class:`Pipeline` per update stream, and
processes the globally ordered update sequence one update at a time: the
join computation through the updated relation's pipeline, followed by the
window update itself.

The executor is deliberately policy-free: join orderings come from an
ordering algorithm, cache plumbing from the re-optimizer. It exposes the
plumbing hooks both need, plus the witness-counting mini-join used by
globally-consistent caches.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.operators.base import BatchProbeMemo, ExecContext
from repro.operators.join_op import JoinOperator
from repro.operators.pipeline import Pipeline, ProfileSample
from repro.relations.predicates import JoinGraph
from repro.relations.relation import Relation
from repro.streams.events import DeltaBatch, OutputDelta, Sign, Update, batched
from repro.streams.tuples import CompositeTuple

# (relation, global seq) -> profile this update? The seq enables the
# deterministic cross-shard gate (ProfilerConfig.deterministic_gate).
ProfileGate = Callable[[str, int], bool]
SampleSink = Callable[[str, ProfileSample], None]


def default_orders(graph: JoinGraph) -> Dict[str, Tuple[str, ...]]:
    """A connected left-to-right default ordering for every pipeline."""
    orders = {}
    relations = list(graph.relations)
    for owner in relations:
        rest = [r for r in relations if r != owner]
        order: List[str] = []
        remaining = list(rest)
        current = [owner]
        while remaining:
            # Prefer a relation connected to what is already joined.
            chosen = next(
                (r for r in remaining if graph.predicates_between(current, r)),
                remaining[0],
            )
            order.append(chosen)
            current.append(chosen)
            remaining.remove(chosen)
        orders[owner] = tuple(order)
    return orders


class MJoinExecutor:
    """Executes an n-way stream join as n cache-augmentable pipelines."""

    def __init__(
        self,
        graph: JoinGraph,
        orders: Optional[Dict[str, Sequence[str]]] = None,
        indexed_attributes: Optional[Dict[str, Iterable[str]]] = None,
        ctx: Optional[ExecContext] = None,
        relations: Optional[Dict[str, Relation]] = None,
    ):
        self.graph = graph
        self.ctx = ctx if ctx is not None else ExecContext()
        self.relations: Dict[str, Relation] = {}
        for name, schema in graph.schemas.items():
            attrs = self._default_indexed(name)
            if indexed_attributes and name in indexed_attributes:
                attrs = tuple(indexed_attributes[name])
            if relations is not None and name in relations:
                # Multi-query mode: bind a shared window state instead of
                # owning one. Missing indexes are added (backfilled from
                # the live rows), so a query joining a warm stream probes
                # the same contents an isolated engine would have built.
                shared = relations[name]
                if tuple(shared.schema.attributes) != tuple(schema.attributes):
                    raise PlanError(
                        f"shared relation {name!r} has schema "
                        f"{tuple(shared.schema.attributes)}, query expects "
                        f"{tuple(schema.attributes)}"
                    )
                for attr in attrs:
                    if not shared.has_index(attr):
                        shared.add_index(attr)
                self.relations[name] = shared
                continue
            self.relations[name] = Relation(schema, attrs)
        self.pipelines: Dict[str, Pipeline] = {}
        resolved = dict(default_orders(graph))
        if orders:
            resolved.update({k: tuple(v) for k, v in orders.items()})
        for owner, order in resolved.items():
            self._build_pipeline(owner, order)
        self.profile_gate: Optional[ProfileGate] = None
        self.sample_sink: Optional[SampleSink] = None
        # Optional ResilienceController (repro.faults): gates ingress and
        # runs degradation machinery. None keeps the hot path unchanged.
        self.resilience = None

    def _default_indexed(self, relation: str) -> Tuple[str, ...]:
        """Index every attribute that participates in a join predicate."""
        attrs = set()
        for pred in self.graph.predicates:
            for ref in (pred.left, pred.right):
                if ref.relation == relation:
                    attrs.add(ref.attribute)
        return tuple(sorted(attrs))

    # ------------------------------------------------------------------
    # plan management
    # ------------------------------------------------------------------
    def _build_pipeline(self, owner: str, order: Sequence[str]) -> Pipeline:
        expected = set(self.graph.relations) - {owner}
        if set(order) != expected:
            raise PlanError(
                f"∆{owner} pipeline must join exactly {sorted(expected)}, "
                f"got {list(order)}"
            )
        operators = []
        prior: List[str] = [owner]
        for target in order:
            op = JoinOperator(self.graph, prior, target)
            op.bind(self.relations[target])
            operators.append(op)
            prior.append(target)
        pipeline = Pipeline(owner, operators)
        self.pipelines[owner] = pipeline
        return pipeline

    def reorder_pipeline(self, owner: str, order: Sequence[str]) -> Pipeline:
        """Install a new join order for ``∆owner`` (drops its plumbing).

        Mirrors Section 4.5 step 5: changing an ordering removes the caches
        used in that pipeline; the re-optimizer recomputes candidates.
        """
        return self._build_pipeline(owner, order)

    def order_of(self, owner: str) -> Tuple[str, ...]:
        """The current join order of ``∆owner``'s pipeline."""
        return self.pipelines[owner].order

    def orders(self) -> Dict[str, Tuple[str, ...]]:
        """Owner -> current join order, for every pipeline."""
        return {owner: p.order for owner, p in self.pipelines.items()}

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def process(
        self, update: Update, apply_window: bool = True
    ) -> List[OutputDelta]:
        """Process one update to completion; returns the result deltas.

        ``apply_window=False`` runs the full join computation and charges
        the modeled window-maintenance cost but leaves the window mutation
        to the caller — the multi-query engine routes one update through
        every interested query's pipelines first and applies the shared
        window change exactly once afterwards.
        """
        if self.resilience is not None and not self.resilience.admit(update):
            return []
        obs = self.ctx.obs
        prof = obs.profiler
        started_us = self.ctx.clock.now_us if obs.enabled else 0.0
        if prof.enabled:
            prof.begin(
                "update:" + update.relation, self.ctx.clock.now_us
            )
        try:
            pipeline = self.pipelines[update.relation]
            profile = False
            if self.profile_gate is not None:
                profile = self.profile_gate(update.relation, update.seq)
            memo = self.ctx.probe_memo
            if profile and memo is not None:
                # Profiled tuples measure the true cache-free operator
                # costs (Appendix A); the batch memo must not shortcut
                # them.
                self.ctx.probe_memo = None
            try:
                composites, sample = pipeline.process(
                    update.row, update.sign, self.ctx, profile=profile
                )
            finally:
                if profile and memo is not None:
                    self.ctx.probe_memo = memo
            if sample is not None and self.sample_sink is not None:
                self.ctx.metrics.profiled_tuples += 1
                self.sample_sink(update.relation, sample)
            self._apply_window_update(update, apply=apply_window)
            if memo is not None:
                # The window just changed: every memoized probe of this
                # relation is now stale.
                memo.invalidate(update.relation)
            cm = self.ctx.cost_model
            self.ctx.clock.charge(cm.output_emit * len(composites))
            self.ctx.metrics.updates_processed += 1
            self.ctx.metrics.outputs_emitted += len(composites)
        finally:
            # The span must close even when the pipeline raises (a poison
            # update must not leave the profiler stack unbalanced).
            if prof.enabled:
                prof.end(self.ctx.clock.now_us)
        if obs.enabled:
            now_us = self.ctx.clock.now_us
            obs.registry.histogram(
                "repro_pipeline_update_us", {"pipeline": update.relation}
            ).observe(now_us - started_us)
            obs.tracer.emit(
                "update_processed",
                now_us,
                pipeline=update.relation,
                sign=update.sign.name,
                outputs=len(composites),
                profiled=profile,
            )
        if self.resilience is not None:
            self.resilience.after_update()
        return [OutputDelta(c, update.sign) for c in composites]

    def process_batch(self, batch: DeltaBatch) -> List[List[OutputDelta]]:
        """Process one micro-batch; returns per-update delta lists.

        Updates are processed strictly in order — a batch changes *how
        much modeled work* execution charges (probe results with the same
        constraint signature are shared until the probed window changes),
        never *what* it computes, so the returned deltas and the window
        contents are identical to per-update execution. A batch of size 1
        runs the unmodified per-update path, charge for charge.
        """
        if len(batch) == 1:
            return [self.process(batch[0])]
        prof = self.ctx.obs.profiler
        if prof.enabled:
            prof.begin("batch", self.ctx.clock.now_us)
        installed = self.ctx.probe_memo is None
        if installed:
            self.ctx.probe_memo = BatchProbeMemo()
        try:
            return [self.process(update) for update in batch]
        finally:
            if installed:
                self.ctx.probe_memo = None
            if prof.enabled:
                prof.end(self.ctx.clock.now_us)

    def run(
        self, updates: Iterable[Update], batch_size: int = 1
    ) -> List[OutputDelta]:
        """Process a whole update sequence; returns all result deltas."""
        outputs: List[OutputDelta] = []
        if batch_size <= 1:
            for update in updates:
                outputs.extend(self.process(update))
            return outputs
        for batch in batched(updates, batch_size):
            for per_update in self.process_batch(batch):
                outputs.extend(per_update)
        return outputs

    def _apply_window_update(self, update: Update, apply: bool = True) -> None:
        relation = self.relations[update.relation]
        cm = self.ctx.cost_model
        index_count = sum(
            1
            for attr in relation.schema.attributes
            if relation.has_index(attr)
        )
        self.ctx.clock.charge(
            cm.relation_update + cm.index_update * index_count
        )
        if not apply:
            return
        if update.sign is Sign.INSERT:
            relation.insert(update.row)
        else:
            relation.delete(update.row)

    # ------------------------------------------------------------------
    # support for globally-consistent caches
    # ------------------------------------------------------------------
    def witness_counter(
        self, segment: Sequence[str], anchor: Sequence[str]
    ) -> Callable[[CompositeTuple], int]:
        """Build the Y-combination counter for an ``X ⋉ Y`` cache.

        Counts, for a given X-composite, the number of Y-row combinations
        joining it, via an index-driven mini-join over the anchor
        relations. Charges ``witness_count_probe`` per index access.
        """
        anchor = tuple(anchor)
        segment = tuple(segment)
        # Order anchors so each connects to segment ∪ earlier anchors.
        ordered: List[str] = []
        known = list(segment)
        remaining = list(anchor)
        while remaining:
            chosen = next(
                (
                    r
                    for r in remaining
                    if self.graph.predicates_between(known, r)
                ),
                remaining[0],
            )
            ordered.append(chosen)
            known.append(chosen)
            remaining.remove(chosen)
        operators = []
        prior = list(segment)
        for target in ordered:
            op = JoinOperator(self.graph, prior, target)
            op.bind(self.relations[target])
            operators.append(op)
            prior.append(target)

        def count(composite: CompositeTuple) -> int:
            self.ctx.clock.charge(
                self.ctx.cost_model.witness_count_probe * len(operators)
            )
            frontier = [composite]
            for position, op in enumerate(operators):
                is_last = position == len(operators) - 1
                if is_last:
                    return sum(
                        len(op.match_rows(c, self.ctx)) for c in frontier
                    )
                frontier = op.apply(frontier, self.ctx)
                if not frontier:
                    return 0
            return len(frontier)

        return count

    def memory_in_use(self) -> int:
        """Bytes held by all caches attached to the pipelines."""
        total = 0
        for pipeline in self.pipelines.values():
            for lookup in pipeline.active_lookups():
                total += lookup.cache.memory_bytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        plans = "; ".join(repr(p) for p in self.pipelines.values())
        return f"MJoinExecutor({plans})"
