"""The global adaptivity plane for sharded execution.

Sharding partitions the update stream, and with it the profiler's
evidence: each shard sees only 1/N of the traffic, so no shard alone
accumulates the W samples per statistic (dij, cij, miss probability)
that justify a cache before the run ends — the "sharded hit_rate reads
0.0" blind spot. This module closes it by re-centralizing *selection*
while keeping *execution* sharded:

* at deterministic epoch boundaries (every ``sync_every_updates``
  positions of the *global* stream, identical on every worker because
  all workers replay the full stream) each shard freezes its profiler
  into a picklable :class:`ProfilerSnapshot` and submits it;
* the :class:`EpochCoordinator` merges the snapshots into global
  statistics — δ/τ windows are *pooled* (so sample counts weight shards
  naturally) and arrival rates are **summed, never averaged** — runs the
  paper's selection (Section 4.5 + the Section 5 memory admission)
  once against the global budget, and answers every shard with one
  :class:`CachePlan`;
* shards apply the plan via
  :meth:`~repro.core.reoptimizer.Reoptimizer.apply_plan` and keep
  processing. Plans only change cache wiring, never emitted deltas, so
  coordination preserves the serial ≡ sharded byte-identity property.

The barrier protocol is crash-tolerant: decided epochs are answered
from the plan log immediately, so a supervisor-restarted worker that
re-traverses the stream from its checkpoint passes old barriers without
blocking anyone (every epoch at or before its checkpoint was decided
before the checkpoint could have been written). A shard that degrades
to in-parent execution is :meth:`~EpochCoordinator.retire`\\ d first so
remaining shards' barriers shrink instead of deadlocking.

Why summed rates preserve the serial selection: each shard's virtual
clock advances only for its own ~1/N of the work, so its windowed
``rate(Ri)`` estimate approximates the *global* arrival rate and the
pooled total scales every d-term by ~N uniformly. Benefit, cost, proc,
and operator cost are all linear in the d-terms (:mod:`repro.core.cost_model`)
while ``miss_prob`` and the expected entry count are rate-free, so the
greedy/exhaustive selection order — and hence the chosen cache set — is
invariant under that uniform scaling.

The second half of the module is **elastic resharding** support: the
:class:`RescalePolicy`/:func:`recommend_rescale` trigger that reads the
merged run statistics and recommends scale-up/down, consumed by
:meth:`repro.parallel.engine.ParallelRun.rescale`.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core import cost_model
from repro.core.candidates import CandidateCache, enumerate_candidates, shared_groups
from repro.core.memory import CacheDemand, MemoryAllocator
from repro.core.selection import SelectionProblem, select
from repro.engine.clock import CostModel
from repro.errors import ParallelError
from repro.obs import decisions as decisions_log
from repro.obs.decisions import DecisionLog


@dataclass(frozen=True)
class AdaptivityConfig:
    """How a sharded run coordinates cache selection globally.

    ``sync_every_updates`` is measured in positions of the *global*
    update stream (not per-shard processed counts), which is what makes
    the epoch barriers line up across workers without any communication.
    """

    sync_every_updates: int = 2000

    def __post_init__(self) -> None:
        if self.sync_every_updates < 1:
            raise ParallelError(
                "adaptivity sync_every_updates must be >= 1, got "
                f"{self.sync_every_updates}"
            )


# ---------------------------------------------------------------------------
# what a shard exports
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PipelineSnapshot:
    """One pipeline's windowed δ/τ evidence, frozen for the wire."""

    owner: str
    slots: int
    order: Tuple[str, ...]
    delta_windows: Tuple[Tuple[int, ...], ...]   # slots + 1 windows
    tau_windows: Tuple[Tuple[float, ...], ...]   # slots windows
    rate: float                                  # updates/sec (virtual)
    arrivals: int


@dataclass(frozen=True)
class ProfilerSnapshot:
    """One shard's full statistical state at an epoch boundary."""

    shard: int
    epoch: int
    now_us: float
    updates_processed: int
    pipelines: Tuple[PipelineSnapshot, ...]
    # candidate_id -> recent miss-probability observations
    miss_windows: Tuple[Tuple[str, Tuple[float, ...]], ...]
    used_cache_ids: Tuple[str, ...]


def snapshot_from_plan(plan, shard: int, epoch: int) -> ProfilerSnapshot:
    """Freeze an A-Caching engine's profiler state for the coordinator.

    Used caches are harvested first (their directly observed miss
    probability folds into the miss windows, Appendix A in-use case), so
    the snapshot carries everything the shard knows.
    """
    profiler = plan.profiler
    reoptimizer = plan.reoptimizer
    ctx = plan.ctx
    for candidate_id, wired in reoptimizer.wiring.wired.items():
        profiler.harvest_used_cache(candidate_id, wired.cache)
    orders = plan.executor.orders()
    pipelines = []
    for owner in sorted(profiler.profiles):
        profile = profiler.profiles[owner]
        pipelines.append(
            PipelineSnapshot(
                owner=owner,
                slots=profile.slots,
                order=tuple(orders.get(owner, ())),
                delta_windows=tuple(
                    tuple(window) for window in profile.delta_windows
                ),
                tau_windows=tuple(
                    tuple(window) for window in profile.tau_windows
                ),
                rate=profile.rate(),
                arrivals=len(profile._arrival_times),
            )
        )
    return ProfilerSnapshot(
        shard=shard,
        epoch=epoch,
        now_us=ctx.clock.now_us,
        updates_processed=ctx.metrics.updates_processed,
        pipelines=tuple(pipelines),
        miss_windows=tuple(
            (candidate_id, tuple(window))
            for candidate_id, window in sorted(profiler.miss_windows.items())
        ),
        used_cache_ids=tuple(
            sorted(
                c.candidate_id
                for c in reoptimizer.wiring.used_candidates()
            )
        ),
    )


# ---------------------------------------------------------------------------
# what the coordinator pushes back
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CachePlan:
    """The globally selected cache set for one epoch.

    ``buckets`` carries per-shard bucket estimates (global expected
    entries split across active shards). ``applied=False`` marks a plan
    carried over unchanged because estimates stayed below the change
    threshold — shards still apply it (idempotently).
    """

    epoch: int
    candidate_ids: Tuple[str, ...]
    buckets: Tuple[Tuple[str, int], ...] = ()
    applied: bool = True

    def bucket_for(self, candidate_id: str, default: int = 256) -> int:
        for cid, buckets in self.buckets:
            if cid == candidate_id:
                return buckets
        return default


class _MergedProfile:
    """Cross-shard pooled δ/τ windows for one pipeline.

    Mirrors :class:`~repro.core.profiler.PipelineProfile`'s estimate
    surface (``ready``/``d``/``c``) over concatenated windows: shards
    with more samples weight the means proportionally, and the rate is
    the sum of the per-shard rates.
    """

    def __init__(self, slots: int, window: int):
        self.slots = slots
        self._window = window
        self.delta_windows: List[List[int]] = [
            [] for _ in range(slots + 1)
        ]
        self.tau_windows: List[List[float]] = [[] for _ in range(slots)]
        self._rate = 0.0

    def fold(self, snapshot: PipelineSnapshot) -> None:
        for slot, window in enumerate(
            snapshot.delta_windows[: self.slots + 1]
        ):
            self.delta_windows[slot].extend(window)
        for position, window in enumerate(
            snapshot.tau_windows[: self.slots]
        ):
            self.tau_windows[position].extend(window)
        self._rate += snapshot.rate

    def rate(self) -> float:
        return self._rate

    def ready(self) -> bool:
        return all(
            len(window) >= self._window for window in self.delta_windows
        )

    def d(self, slot: int) -> float:
        window = self.delta_windows[slot]
        if not window:
            return 0.0
        return self.rate() * (sum(window) / len(window))

    def c(self, position: int) -> float:
        total_delta = sum(self.delta_windows[position])
        if total_delta == 0:
            return 0.0
        return sum(self.tau_windows[position]) / total_delta


class EpochCoordinator:
    """Merges shard snapshots and decides one cache plan per epoch.

    The core is synchronous and transport-free: :meth:`submit` returns
    the deliveries it can make *now* as ``(shard, plan)`` pairs — either
    an immediate answer from the plan log (decided epoch) or, when the
    last awaited shard arrives, one delivery per barrier participant.
    :class:`ThreadChannel` and the process-backend parent loop wrap it
    with their respective transports.
    """

    def __init__(self, spec, shard_count: int):
        engine = spec.engine
        if engine.kind != "acaching":
            raise ParallelError(
                "coordinated adaptivity requires an acaching engine, "
                f"got kind {engine.kind!r}"
            )
        from repro.core.acaching import ACachingConfig

        config = engine.config if engine.config is not None else ACachingConfig()
        self.profiler_config = config.profiler
        self.reopt_config = config.reoptimizer
        self.graph = spec.workload_factory().graph
        self.shard_count = shard_count
        self.cost_model = CostModel()
        self.allocator = MemoryAllocator(
            self.reopt_config.memory_budget_bytes
        )
        self.decisions = DecisionLog()
        self.plans: Dict[int, CachePlan] = {}
        #: shards still participating in barriers (retire() removes).
        self.active: Set[int] = set(range(shard_count))
        #: shards currently blocked waiting for an undecided epoch — the
        #: supervisor treats these as live even without heartbeats.
        self.waiting: Set[int] = set()
        self._pending: Dict[int, Dict[int, ProfilerSnapshot]] = {}
        self._last_signature: Dict[str, Tuple[float, float]] = {}
        self._last_plan: Optional[CachePlan] = None
        self._reopt_seq = 0

    # ------------------------------------------------------------------
    # the barrier protocol
    # ------------------------------------------------------------------
    def submit(
        self, epoch: int, shard: int, snapshot: ProfilerSnapshot
    ) -> List[Tuple[int, CachePlan]]:
        """Record one shard's snapshot; return deliveries now possible."""
        decided = self.plans.get(epoch)
        if decided is not None:
            # A restarted worker re-traversing an already-decided epoch:
            # answer from the log without disturbing the live barrier.
            return [(shard, decided)]
        pending = self._pending.setdefault(epoch, {})
        pending[shard] = snapshot
        self.waiting.add(shard)
        if self.active and self.active.issubset(pending.keys()):
            return self._complete(epoch)
        return []

    def retire(self, shard: int) -> List[Tuple[int, CachePlan]]:
        """Remove a shard from all future barriers (fallback/failure).

        May complete barriers that were only waiting on the retired
        shard; the freed deliveries are returned for the transport to
        flush.
        """
        was_active = shard in self.active
        self.active.discard(shard)
        self.waiting.discard(shard)
        # A shard that dies between heartbeat and barrier leaves every
        # open epoch stalled on its snapshot. Name the culprit in the
        # decision log so a chaos-matrix cell that kills a worker at a
        # barrier is diagnosable, not just eventually restarted.
        stalled = [
            epoch
            for epoch, pending in self._pending.items()
            if was_active and epoch not in self.plans and shard not in pending
        ]
        if stalled:
            now_us = max(
                snapshot.now_us
                for pending in self._pending.values()
                for snapshot in pending.values()
            )
            self.decisions.record(
                now_us,
                decisions_log.EPOCH_STALL,
                "coordinator",
                reason=(
                    f"shard {shard} retired without submitting epoch"
                    f"{'s' if len(stalled) > 1 else ''} "
                    f"{sorted(stalled)}; completing barriers without it"
                ),
                reopt_seq=self._reopt_seq,
            )
        deliveries: List[Tuple[int, CachePlan]] = []
        for epoch in sorted(self._pending):
            pending = self._pending[epoch]
            pending.pop(shard, None)
            if epoch in self.plans:
                continue
            if (
                pending
                and self.active
                and self.active.issubset(pending.keys())
            ):
                deliveries.extend(self._complete(epoch))
        return deliveries

    def _complete(self, epoch: int) -> List[Tuple[int, CachePlan]]:
        pending = self._pending.pop(epoch)
        plan = self._decide(epoch, pending)
        self.plans[epoch] = plan
        self._last_plan = plan
        for shard in pending:
            self.waiting.discard(shard)
        return [(shard, plan) for shard in sorted(pending)]

    def plans_in_order(self) -> Tuple[CachePlan, ...]:
        """Every decided plan, in epoch order."""
        return tuple(self.plans[epoch] for epoch in sorted(self.plans))

    # ------------------------------------------------------------------
    # the global re-optimization
    # ------------------------------------------------------------------
    def _decide(
        self, epoch: int, snapshots: Dict[int, ProfilerSnapshot]
    ) -> CachePlan:
        ordered = [snapshots[shard] for shard in sorted(snapshots)]
        now_us = max(snapshot.now_us for snapshot in ordered)
        reference = ordered[0]
        orders = {
            pipeline.owner: list(pipeline.order)
            for pipeline in reference.pipelines
            if pipeline.order
        }
        candidates = {
            c.candidate_id: c
            for c in enumerate_candidates(
                self.graph,
                orders,
                global_quota=self.reopt_config.global_quota,
            )
        }
        merged = self._merge_profiles(ordered, reference)
        miss = self._merge_miss(ordered)
        stats: Dict[str, cost_model.CacheStatistics] = {}
        for candidate_id, candidate in candidates.items():
            estimate = self._statistics_for(candidate, merged, miss)
            if estimate is not None:
                stats[candidate_id] = estimate
        previous_ids = (
            self._last_plan.candidate_ids if self._last_plan else ()
        )
        if not stats:
            return CachePlan(
                epoch=epoch, candidate_ids=previous_ids, applied=False
            )
        cm = self.cost_model
        signature = {
            cid: (
                cost_model.benefit(s, cm),
                cost_model.cost(s, cm),
            )
            for cid, s in stats.items()
        }
        if self._last_plan is not None and not self._changed(signature):
            return CachePlan(
                epoch=epoch,
                candidate_ids=previous_ids,
                buckets=self._last_plan.buckets,
                applied=False,
            )
        self._last_signature = signature
        self._reopt_seq += 1
        live = [candidates[cid] for cid in stats]
        problem = SelectionProblem(
            candidates=live,
            benefit={
                cid: cost_model.benefit(stats[cid], cm) for cid in stats
            },
            proc={cid: cost_model.proc(stats[cid], cm) for cid in stats},
            group_cost={
                token: cost_model.cost(
                    stats[members[0].candidate_id], cm
                )
                for token, members in shared_groups(live).items()
            },
            operator_cost={
                (owner, slot): profile.d(slot) * profile.c(slot)
                for owner, profile in merged.items()
                for slot in range(profile.slots)
            },
        )
        selected = select(
            problem,
            method=self.reopt_config.selection_method,
            exhaustive_limit=self.reopt_config.exhaustive_limit,
        )
        admitted = self._allocate(selected, stats, cm, miss, now_us)
        shard_divisor = max(1, len(self.active) or self.shard_count)
        plan = CachePlan(
            epoch=epoch,
            candidate_ids=tuple(
                sorted(c.candidate_id for c in admitted)
            ),
            buckets=tuple(
                sorted(
                    (
                        c.candidate_id,
                        self._bucket_estimate(c, miss, shard_divisor),
                    )
                    for c in admitted
                )
            ),
        )
        self._record_plan(
            plan, previous_ids, stats, signature, len(ordered), now_us
        )
        return plan

    def _merge_profiles(
        self,
        snapshots: Sequence[ProfilerSnapshot],
        reference: ProfilerSnapshot,
    ) -> Dict[str, _MergedProfile]:
        """Pool per-pipeline windows across shards.

        Only shards whose pipeline runs the reference ordering are
        pooled for that pipeline — after an independent reorder a
        shard's δ/τ windows describe a different plan and would poison
        the pooled means.
        """
        reference_orders = {
            pipeline.owner: pipeline.order
            for pipeline in reference.pipelines
        }
        merged: Dict[str, _MergedProfile] = {}
        for pipeline in reference.pipelines:
            merged[pipeline.owner] = _MergedProfile(
                pipeline.slots, self.profiler_config.window
            )
        for snapshot in snapshots:
            for pipeline in snapshot.pipelines:
                pooled = merged.get(pipeline.owner)
                if (
                    pooled is None
                    or pipeline.slots != pooled.slots
                    or pipeline.order
                    != reference_orders.get(pipeline.owner)
                ):
                    continue
                pooled.fold(pipeline)
        return merged

    @staticmethod
    def _merge_miss(
        snapshots: Sequence[ProfilerSnapshot],
    ) -> Dict[str, float]:
        """Pooled mean miss probability per candidate."""
        pooled: Dict[str, List[float]] = {}
        for snapshot in snapshots:
            for candidate_id, window in snapshot.miss_windows:
                pooled.setdefault(candidate_id, []).extend(window)
        return {
            candidate_id: sum(window) / len(window)
            for candidate_id, window in pooled.items()
            if window
        }

    def _statistics_for(
        self,
        candidate: CandidateCache,
        merged: Dict[str, _MergedProfile],
        miss: Dict[str, float],
    ) -> Optional[cost_model.CacheStatistics]:
        """Global :class:`CacheStatistics` — the cross-shard twin of
        :meth:`repro.core.profiler.Profiler.statistics_for`."""
        profile = merged.get(candidate.owner)
        if profile is None or not profile.ready():
            return None
        miss_prob = miss.get(candidate.candidate_id)
        if miss_prob is None:
            return None
        segment_d = [
            profile.d(slot)
            for slot in range(candidate.start, candidate.end + 1)
        ]
        segment_c = [
            profile.c(slot)
            for slot in range(candidate.start, candidate.end + 1)
        ]
        d_out = profile.d(candidate.end + 1)
        maintenance_slot = len(candidate.maintenance_set) - 1
        maintenance_rate = 0.0
        for member in candidate.tap_relations:
            member_profile = merged.get(member)
            if member_profile is None or not member_profile.ready():
                return None
            maintenance_rate += member_profile.d(maintenance_slot)
        return cost_model.CacheStatistics(
            segment_d=segment_d,
            segment_c=segment_c,
            d_out=d_out,
            miss_prob=miss_prob,
            maintenance_rate=maintenance_rate,
            key_width=max(1, len(candidate.key_signature)),
            anchor_size=len(candidate.anchor),
        )

    def _expected_entries(
        self, candidate: CandidateCache, miss: Dict[str, float]
    ) -> float:
        """Global expected entry count (Appendix A saturation estimate)."""
        miss_prob = miss.get(candidate.candidate_id)
        if miss_prob is None:
            return 0.0
        return 2.0 * miss_prob * self.profiler_config.bloom_window_tuples

    def _changed(
        self, signature: Dict[str, Tuple[float, float]]
    ) -> bool:
        """Improvement (c): skip selection unless estimates drifted ≥ p."""
        if not self._last_signature:
            return True
        threshold = self.reopt_config.change_threshold
        for candidate_id, (new_benefit, new_cost) in signature.items():
            old = self._last_signature.get(candidate_id)
            if old is None:
                return True
            for new, previous in (
                (new_benefit, old[0]),
                (new_cost, old[1]),
            ):
                scale = max(abs(previous), 1e-9)
                if abs(new - previous) / scale > threshold:
                    return True
        return False

    def _allocate(
        self,
        selected: List[CandidateCache],
        stats: Dict[str, cost_model.CacheStatistics],
        cm: CostModel,
        miss: Dict[str, float],
        now_us: float,
    ) -> List[CandidateCache]:
        """Section 5 admission against the *global* memory budget."""
        if self.allocator.budget_bytes is None:
            return selected
        groups = shared_groups(selected)
        demands: List[CacheDemand] = []
        members_of: Dict[Tuple, List[CandidateCache]] = {}
        for token, members in groups.items():
            net = sum(
                cost_model.benefit(stats[c.candidate_id], cm)
                for c in members
            ) - cost_model.cost(stats[members[0].candidate_id], cm)
            expected = cost_model.expected_memory_bytes(
                stats[members[0].candidate_id],
                cm,
                expected_entries=self._expected_entries(
                    members[0], miss
                ),
                segment_size=len(members[0].segment),
            )
            demands.append(
                CacheDemand(
                    candidate=members[0],
                    net_benefit=net,
                    expected_bytes=expected,
                )
            )
            members_of[token] = members
        result = self.allocator.admit(demands)
        for verdict, demand in result.audit:
            if verdict != "reject":
                continue
            for member in members_of[demand.candidate.share_token]:
                member_stats = stats.get(member.candidate_id)
                self.decisions.record(
                    now_us,
                    decisions_log.MEMORY_REJECT,
                    member.candidate_id,
                    reason=(
                        "globally selected but denied pages "
                        f"({result.pages_used} pages committed)"
                    ),
                    reopt_seq=self._reopt_seq,
                    stats=member_stats,
                    memory_budget_bytes=self.allocator.budget_bytes,
                    expected_bytes=demand.expected_bytes,
                )
        admitted: List[CandidateCache] = []
        for representative in result.admitted:
            admitted.extend(members_of[representative.share_token])
        return admitted

    def _bucket_estimate(
        self,
        candidate: CandidateCache,
        miss: Dict[str, float],
        shard_divisor: int,
    ) -> int:
        """Per-shard bucket count from the global entry estimate."""
        entries = self._expected_entries(candidate, miss) / shard_divisor
        wanted = max(
            self.reopt_config.min_bucket_count, int(entries * 2)
        )
        return min(
            self.reopt_config.max_bucket_count,
            1 << (wanted - 1).bit_length(),
        )

    def _record_plan(
        self,
        plan: CachePlan,
        previous_ids: Tuple[str, ...],
        stats: Dict[str, cost_model.CacheStatistics],
        signature: Dict[str, Tuple[float, float]],
        shard_count: int,
        now_us: float,
    ) -> None:
        target = set(plan.candidate_ids)
        previous = set(previous_ids)
        added = sorted(target - previous)
        dropped = sorted(previous - target)
        self.decisions.record(
            now_us,
            decisions_log.PLAN_PUSH,
            "coordinator",
            reason=(
                f"epoch {plan.epoch}: merged {shard_count} shard "
                f"snapshots, pushed {len(plan.candidate_ids)} caches"
            ),
            reopt_seq=self._reopt_seq,
            memory_budget_bytes=self.allocator.budget_bytes,
        )
        for candidate_id in added:
            benefit, cost = signature.get(candidate_id, (None, None))
            self.decisions.record(
                now_us,
                decisions_log.ATTACH,
                candidate_id,
                reason=f"selected by global re-optimization (epoch {plan.epoch})",
                reopt_seq=self._reopt_seq,
                stats=stats.get(candidate_id),
                benefit=benefit,
                cost=cost,
                memory_budget_bytes=self.allocator.budget_bytes,
            )
        for candidate_id in dropped:
            benefit, cost = signature.get(candidate_id, (None, None))
            self.decisions.record(
                now_us,
                decisions_log.DETACH,
                candidate_id,
                reason=f"deselected by global re-optimization (epoch {plan.epoch})",
                reopt_seq=self._reopt_seq,
                stats=stats.get(candidate_id),
                benefit=benefit,
                cost=cost,
                memory_budget_bytes=self.allocator.budget_bytes,
            )


# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------
class ThreadChannel:
    """Barrier transport for shards running as threads in one process."""

    #: seconds a shard waits at a barrier before declaring it wedged.
    BARRIER_TIMEOUT_S = 120.0

    def __init__(self, coordinator: EpochCoordinator):
        self._coordinator = coordinator
        self._cond = threading.Condition()
        self._inbox: Dict[int, CachePlan] = {}

    def exchange(
        self, epoch: int, shard: int, snapshot: ProfilerSnapshot
    ) -> CachePlan:
        with self._cond:
            deliveries = self._coordinator.submit(epoch, shard, snapshot)
            for target, plan in deliveries:
                self._inbox[target] = plan
            if deliveries:
                self._cond.notify_all()
            while shard not in self._inbox:
                if not self._cond.wait(timeout=self.BARRIER_TIMEOUT_S):
                    pending = self._coordinator._pending.get(epoch, {})
                    missing = sorted(self._coordinator.active - set(pending))
                    raise ParallelError(
                        f"shard {shard} timed out waiting for the "
                        f"epoch {epoch} cache plan; still missing "
                        f"snapshots from shard(s) {missing}"
                    )
            return self._inbox.pop(shard)

    def retire(self, shard: int) -> None:
        with self._cond:
            for target, plan in self._coordinator.retire(shard):
                self._inbox[target] = plan
            self._cond.notify_all()


class PipeChannel:
    """Worker-side barrier transport over a duplex multiprocessing pipe.

    The parent (plain process backend's serve loop, or the Supervisor's
    drain loop) owns the :class:`EpochCoordinator`; the worker just
    sends ``("snap", epoch, shard, snapshot)`` and blocks until the
    matching ``("plan", CachePlan)`` arrives. Plans for stale epochs
    (possible after a restart raced a delivery) are discarded.
    """

    def __init__(self, conn):
        self._conn = conn

    def exchange(
        self, epoch: int, shard: int, snapshot: ProfilerSnapshot
    ) -> CachePlan:
        self._conn.send(("snap", epoch, shard, snapshot))
        while True:
            message = self._conn.recv()
            if (
                isinstance(message, tuple)
                and message
                and message[0] == "plan"
            ):
                plan = message[1]
                if plan.epoch >= epoch:
                    return plan

    def retire(self, shard: int) -> None:
        """The parent retires workers on its side; nothing to do here."""


def scale_bloom_windows(plan, shard_count: int) -> None:
    """Make per-shard bloom windows span the serial probe-stream distance.

    The miss-probability estimator emits one observation per ``Wd``
    probes (Appendix A), but a shard only probes its ~1/N partition of
    the stream — with the unscaled window a sharded run needs N× the
    stream length per observation, so short runs never estimate
    ``miss_prob`` at all and the coordinator can never admit a cache.
    Dividing the per-shard window by the shard count restores the
    serial observation cadence, and with hash partitioning the local
    ``distinct/window`` ratio estimates the same global quantity.

    The profiler gets its own config copy (the spec's instance is
    shared across shards and runs) and the installed estimators are
    rebuilt at the new width. Idempotent: an engine restored from a
    checkpoint was scaled before the checkpoint was written, so the
    replayed state — estimator fill included — is left untouched. The
    coordinator itself keeps the unscaled ``Wd`` for its global
    expected-entry estimates.
    """
    if shard_count <= 1:
        return
    profiler = getattr(plan, "profiler", None)
    reoptimizer = getattr(plan, "reoptimizer", None)
    if profiler is None or reoptimizer is None:
        return
    from dataclasses import replace as _replace

    config = profiler.config
    scaled = max(1, config.bloom_window_tuples // shard_count)
    if config.bloom_window_tuples == scaled:
        return
    profiler.config = _replace(config, bloom_window_tuples=scaled)
    for candidate_id in list(profiler._installed_blooms):
        candidate = reoptimizer.candidates.get(candidate_id)
        if candidate is None:
            continue
        profiler.remove_bloom(candidate_id)
        profiler.install_bloom(candidate)


# ---------------------------------------------------------------------------
# elastic resharding: the rate-aware trigger
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RescalePolicy:
    """When to recommend changing the shard count.

    ``target_shard_rate`` is the per-shard sustainable update rate in
    updates per second of virtual time; ``headroom`` scales the demand
    before dividing so the recommendation leads saturation instead of
    chasing it. ``hysteresis`` suppresses one-shard oscillation.
    """

    target_shard_rate: float = 40_000.0
    headroom: float = 1.25
    min_shards: int = 1
    max_shards: int = 16
    hysteresis: int = 0

    def __post_init__(self) -> None:
        if self.target_shard_rate <= 0:
            raise ParallelError(
                "rescale target_shard_rate must be positive"
            )
        if self.min_shards < 1 or self.max_shards < self.min_shards:
            raise ParallelError(
                "rescale policy needs 1 <= min_shards <= max_shards"
            )


@dataclass(frozen=True)
class RescaleAdvice:
    """The trigger's verdict, with the evidence it used."""

    current_shards: int
    recommended_shards: int
    observed_rate: float     # summed per-shard update rates (virtual)
    reason: str

    @property
    def action(self) -> str:
        if self.recommended_shards > self.current_shards:
            return "scale-up"
        if self.recommended_shards < self.current_shards:
            return "scale-down"
        return "hold"

    @property
    def should_rescale(self) -> bool:
        return self.recommended_shards != self.current_shards


def recommend_rescale(stats, policy: Optional[RescalePolicy] = None):
    """Rate-aware resharding advice from merged run statistics.

    ``stats`` is a :class:`~repro.parallel.stats.MergedStats`. The
    observed demand is the **sum** of per-shard processing rates (each
    shard's virtual clock only advances for its own work, so the sum
    approximates the global arrival rate the run must sustain).
    """
    policy = policy if policy is not None else RescalePolicy()
    rates = []
    for updates, span_us in zip(
        stats.per_shard_updates, stats.per_shard_clock_us
    ):
        if span_us > 0:
            rates.append(updates / (span_us / 1e6))
    observed = sum(rates)
    current = stats.shard_count
    wanted = max(1, math.ceil(observed * policy.headroom / policy.target_shard_rate))
    recommended = min(policy.max_shards, max(policy.min_shards, wanted))
    if abs(recommended - current) <= policy.hysteresis:
        recommended = current
    reason = (
        f"observed {observed:.0f} updates/s across {current} shards; "
        f"target {policy.target_shard_rate:.0f}/shard with "
        f"{policy.headroom:.2f}x headroom wants {recommended}"
    )
    return RescaleAdvice(
        current_shards=current,
        recommended_shards=recommended,
        observed_rate=observed,
        reason=reason,
    )


# Re-exported for callers that think of the gate as part of the plane.
from repro.core.profiler import deterministic_gate_hash  # noqa: E402,F401
