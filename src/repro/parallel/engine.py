"""The parallel engine: fan shards out, merge results back.

Two backends execute the same :func:`repro.parallel.shard.run_shard`
computation:

* ``"serial"`` (serial-shards) — every shard runs in this process, one
  after another. Deterministic, dependency-free, and what tests and CI
  use; the virtual clocks still record per-shard cost, so modeled
  parallel throughput is identical to the process backend's.
* ``"process"`` — one OS process per shard via :mod:`multiprocessing`.
  Real wall-clock parallelism on multicore hardware; the experiment spec
  is pickled to each worker, which rebuilds the workload and replays the
  stream locally (no per-update IPC).

Because both backends run the exact same per-shard computation on the
exact same routed sub-streams, their merged outputs and merged statistics
are equal — a property the test suite asserts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ParallelError
from repro.parallel.partitioner import PartitionScheme, scheme_for_workload
from repro.parallel.shard import ShardResult, TaggedDelta, run_shard
from repro.parallel.spec import ExperimentSpec
from repro.parallel.stats import MergedStats, StatsMerger

BACKENDS = ("serial", "process")


@dataclass(frozen=True)
class ParallelConfig:
    """How an experiment should be sharded, if at all."""

    shards: int = 1
    backend: str = "serial"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ParallelError(
                f"shard count must be >= 1, got {self.shards}"
            )
        if self.backend not in BACKENDS:
            raise ParallelError(
                f"parallel backend must be one of {BACKENDS}, "
                f"got {self.backend!r}"
            )

    @property
    def active(self) -> bool:
        """True when execution is actually split across shards."""
        return self.shards > 1


@dataclass
class ParallelRun:
    """One merged sharded run."""

    scheme: PartitionScheme
    backend: str
    results: List[ShardResult]
    stats: MergedStats
    source_updates: int
    wall_seconds: float

    def merged_deltas(self) -> List[TaggedDelta]:
        """All emitted deltas restored to the global arrival order.

        Ordered by (source seq, shard, emission index): every source
        update's results appear at its position in the global stream; a
        broadcast update that produced results on several shards lists
        them in shard order. Within one (update, shard) pair the engine's
        own emission order is preserved.
        """
        tagged: List[Tuple[int, int, int, object]] = []
        for result in self.results:
            shard = result.stats.shard
            for seq, index, delta in result.deltas:
                tagged.append((seq, shard, index, delta))
        tagged.sort(key=lambda t: (t[0], t[1], t[2]))
        return [(seq, index, delta) for seq, _shard, index, delta in tagged]

    def merged_canonical(self) -> Counter:
        """The rid-free result multiset across all shards."""
        merged: Counter = Counter()
        for result in self.results:
            if result.canonical:
                merged.update(result.canonical)
        return merged

    def merged_windows(self) -> Dict[str, List[Tuple[int, tuple]]]:
        """Final per-relation window contents, reassembled globally.

        Partitioned relations hold disjoint row sets per shard (union);
        broadcast relations hold a full copy everywhere (all copies must
        agree, and shard 0's is returned).
        """
        merged: Dict[str, List[Tuple[int, tuple]]] = {}
        broadcast = set(self.scheme.broadcast)
        for result in self.results:
            if result.windows is None:
                raise ParallelError(
                    "shard run did not collect windows "
                    "(ExperimentSpec.collect_windows=False)"
                )
            for name, rows in result.windows.items():
                if name in broadcast and self.scheme.shard_count > 1:
                    previous = merged.get(name)
                    if previous is not None and previous != rows:
                        raise ParallelError(
                            f"broadcast relation {name!r} diverged "
                            f"between shards"
                        )
                    merged[name] = rows
                else:
                    merged.setdefault(name, []).extend(rows)
        for name, rows in merged.items():
            if name not in broadcast or self.scheme.shard_count == 1:
                rows.sort(key=lambda pair: pair[0])
        return merged

    def merged_resilience_summary(self) -> Dict[str, object]:
        """Global degradation counters across shards."""
        return StatsMerger().merge_summaries(
            [result.resilience_summary for result in self.results]
        )

    def merged_dead_letters(self) -> List[object]:
        """Every retained quarantined update, in global seq order."""
        merged = [
            entry
            for result in self.results
            for entry in result.dead_letters
        ]
        merged.sort(key=lambda entry: entry.seq)
        return merged

    def merged_telemetry(self):
        """Worker observability merged under ``shard`` labels.

        Returns a :class:`~repro.obs.merge.MergedTelemetry` — one global
        registry where every per-shard counter also appears labelled
        ``shard="N"`` — or raises when the run was not executed with
        ``collect_obs``/``profile`` on its :class:`ExperimentSpec`.
        """
        from repro.obs.merge import merge_telemetry

        snapshots = [result.telemetry for result in self.results]
        if any(snapshot is None for snapshot in snapshots):
            raise ParallelError(
                "shard run did not collect telemetry "
                "(ExperimentSpec.collect_obs/profile=False)"
            )
        return merge_telemetry(snapshots)


def count_source_updates(spec: ExperimentSpec) -> int:
    """How many updates the (possibly faulted) global stream contains."""
    from repro.faults.plan import FaultPlan

    workload = spec.workload_factory()
    updates = workload.updates(spec.arrivals)
    if spec.fault_spec is not None:
        updates = FaultPlan(spec.fault_spec, seed=spec.fault_seed).updates(
            updates
        )
    return sum(1 for _ in updates)


def _run_shard_star(args) -> ShardResult:
    """Module-level trampoline so Pool.map can pickle the call."""
    spec, shard, shard_count = args
    return run_shard(spec, shard, shard_count)


class ParallelEngine:
    """Runs one :class:`ExperimentSpec` sharded and merges the pieces."""

    def __init__(self, config: ParallelConfig):
        self.config = config
        self._merger = StatsMerger()

    def run(self, spec: ExperimentSpec) -> ParallelRun:
        """Fan the experiment out over shards and merge the results."""
        import time

        shards = self.config.shards
        scheme = scheme_for_workload(spec.workload_factory(), shards)
        started = time.perf_counter()
        if self.config.backend == "process" and shards > 1:
            results = self._run_process(spec, shards)
        else:
            results = [
                run_shard(spec, shard, shards, scheme=scheme)
                for shard in range(shards)
            ]
        wall = time.perf_counter() - started
        source_updates = count_source_updates(spec)
        stats = self._merger.merge(
            [result.stats for result in results],
            source_updates=source_updates,
        )
        return ParallelRun(
            scheme=scheme,
            backend=self.config.backend,
            results=results,
            stats=stats,
            source_updates=source_updates,
            wall_seconds=wall,
        )

    def _run_process(
        self, spec: ExperimentSpec, shards: int
    ) -> List[ShardResult]:
        import multiprocessing
        import pickle

        jobs = [(spec, shard, shards) for shard in range(shards)]
        try:
            with multiprocessing.Pool(processes=shards) as pool:
                return pool.map(_run_shard_star, jobs)
        except (pickle.PicklingError, AttributeError, TypeError) as error:
            # A spec that cannot be pickled (closure factories) is a
            # configuration problem, not a crash.
            raise ParallelError(
                f"process backend could not ship the experiment to "
                f"workers: {error}"
            ) from None


def run_sharded(
    spec: ExperimentSpec, parallel: ParallelConfig
) -> ParallelRun:
    """Convenience wrapper: build the engine and run one experiment."""
    return ParallelEngine(parallel).run(spec)
