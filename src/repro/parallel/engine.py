"""The parallel engine: fan shards out, merge results back.

Two backends execute the same :func:`repro.parallel.shard.run_shard`
computation:

* ``"serial"`` (serial-shards) — every shard runs in this process, one
  after another. Deterministic, dependency-free, and what tests and CI
  use; the virtual clocks still record per-shard cost, so modeled
  parallel throughput is identical to the process backend's.
* ``"process"`` — one OS process per shard via :mod:`multiprocessing`.
  Real wall-clock parallelism on multicore hardware; the experiment spec
  is pickled to each worker, which rebuilds the workload and replays the
  stream locally (no per-update IPC).

Because both backends run the exact same per-shard computation on the
exact same routed sub-streams, their merged outputs and merged statistics
are equal — a property the test suite asserts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ParallelError
from repro.parallel.adaptivity import (
    CachePlan,
    EpochCoordinator,
    PipeChannel,
    ThreadChannel,
)
from repro.parallel.partitioner import PartitionScheme, scheme_for_workload
from repro.parallel.shard import ShardResult, TaggedDelta, run_shard
from repro.parallel.spec import ExperimentSpec, ReshardSeed
from repro.parallel.stats import MergedStats, StatsMerger

BACKENDS = ("serial", "process")


@dataclass(frozen=True)
class ParallelConfig:
    """How an experiment should be sharded, if at all."""

    shards: int = 1
    backend: str = "serial"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ParallelError(
                f"shard count must be >= 1, got {self.shards}"
            )
        if self.backend not in BACKENDS:
            raise ParallelError(
                f"parallel backend must be one of {BACKENDS}, "
                f"got {self.backend!r}"
            )

    @property
    def active(self) -> bool:
        """True when execution is actually split across shards."""
        return self.shards > 1


@dataclass
class ParallelRun:
    """One merged sharded run."""

    scheme: PartitionScheme
    backend: str
    results: List[ShardResult]
    stats: MergedStats
    source_updates: int
    wall_seconds: float
    #: the spec that produced this run (enables :meth:`rescale`).
    spec: Optional[ExperimentSpec] = None
    #: coordinator cache plans in epoch order (coordinated runs only).
    cache_plans: Tuple[CachePlan, ...] = ()
    #: coordinator decision records as dicts (coordinated runs only).
    coordinator_decisions: List[dict] = field(default_factory=list)

    def merged_deltas(self) -> List[TaggedDelta]:
        """All emitted deltas restored to the global arrival order.

        Ordered by (source seq, shard, emission index): every source
        update's results appear at its position in the global stream; a
        broadcast update that produced results on several shards lists
        them in shard order. Within one (update, shard) pair the engine's
        own emission order is preserved.
        """
        tagged: List[Tuple[int, int, int, object]] = []
        for result in self.results:
            shard = result.stats.shard
            for seq, index, delta in result.deltas:
                tagged.append((seq, shard, index, delta))
        tagged.sort(key=lambda t: (t[0], t[1], t[2]))
        return [(seq, index, delta) for seq, _shard, index, delta in tagged]

    def merged_canonical(self) -> Counter:
        """The rid-free result multiset across all shards."""
        merged: Counter = Counter()
        for result in self.results:
            if result.canonical:
                merged.update(result.canonical)
        return merged

    def merged_windows(self) -> Dict[str, List[Tuple[int, tuple]]]:
        """Final per-relation window contents, reassembled globally.

        Partitioned relations hold disjoint row sets per shard (union);
        broadcast relations hold a full copy everywhere (all copies must
        agree, and shard 0's is returned).
        """
        merged: Dict[str, List[Tuple[int, tuple]]] = {}
        broadcast = set(self.scheme.broadcast)
        for result in self.results:
            if result.windows is None:
                raise ParallelError(
                    "shard run did not collect windows "
                    "(ExperimentSpec.collect_windows=False)"
                )
            for name, rows in result.windows.items():
                if name in broadcast and self.scheme.shard_count > 1:
                    previous = merged.get(name)
                    if previous is not None and previous != rows:
                        raise ParallelError(
                            f"broadcast relation {name!r} diverged "
                            f"between shards"
                        )
                    merged[name] = rows
                else:
                    merged.setdefault(name, []).extend(rows)
        for name, rows in merged.items():
            if name not in broadcast or self.scheme.shard_count == 1:
                rows.sort(key=lambda pair: pair[0])
        return merged

    def merged_resilience_summary(self) -> Dict[str, object]:
        """Global degradation counters across shards."""
        return StatsMerger().merge_summaries(
            [result.resilience_summary for result in self.results]
        )

    def merged_dead_letters(self) -> List[object]:
        """Every retained quarantined update, in global seq order."""
        merged = [
            entry
            for result in self.results
            for entry in result.dead_letters
        ]
        merged.sort(key=lambda entry: entry.seq)
        return merged

    def merged_telemetry(self):
        """Worker observability merged under ``shard`` labels.

        Returns a :class:`~repro.obs.merge.MergedTelemetry` — one global
        registry where every per-shard counter also appears labelled
        ``shard="N"`` — or raises when the run was not executed with
        ``collect_obs``/``profile`` on its :class:`ExperimentSpec`.
        Coordinator decisions from the global adaptivity plane fold into
        the merged decision chronology tagged ``source="coordinator"``.
        """
        from repro.obs.merge import merge_telemetry

        snapshots = [result.telemetry for result in self.results]
        if any(snapshot is None for snapshot in snapshots):
            raise ParallelError(
                "shard run did not collect telemetry "
                "(ExperimentSpec.collect_obs/profile=False)"
            )
        return merge_telemetry(
            snapshots,
            coordinator_decisions=self.coordinator_decisions,
        )

    def rescale(
        self, new_shards: int, backend: Optional[str] = None
    ) -> "ParallelRun":
        """Continue this stopped run at a different shard count.

        Requires a run executed with ``spec.stop_after_updates`` and
        ``collect_windows=True``: the merged final windows seed the new
        shards under the new partitioning, and the new run skips the
        stream prefix those windows already reflect. Caches restart
        empty (the coordinator re-establishes them at the next epoch),
        and since cache choices never affect visible results,
        ``output_chronology(stopped, rescaled)`` is byte-identical to a
        fixed-shard run's over the full stream (cache wiring can reorder
        emissions *inside* one update, which the chronology normalizes —
        the same rid-free form every acaching equivalence check uses).
        """
        if self.spec is None:
            raise ParallelError(
                "rescale needs the originating spec "
                "(run was built without one)"
            )
        if self.spec.stop_after_updates is None:
            raise ParallelError(
                "rescale requires a run stopped at an update boundary "
                "(ExperimentSpec.stop_after_updates)"
            )
        seed = ReshardSeed(
            skip_source_through=self.spec.stop_after_updates,
            windows=self.merged_windows(),
        )
        resumed = replace(
            self.spec, reshard=seed, stop_after_updates=None
        )
        config = ParallelConfig(
            shards=new_shards,
            backend=backend if backend is not None else self.backend,
        )
        return ParallelEngine(config).run(resumed)


def combined_deltas(first: ParallelRun, second: ParallelRun) -> List[TaggedDelta]:
    """The full-output chronology of a stopped run plus its rescaled
    continuation, in global arrival order."""
    return first.merged_deltas() + second.merged_deltas()


def output_chronology(*runs: ParallelRun) -> List[Tuple[int, tuple]]:
    """A canonical, order-stable rendering of runs' merged output.

    One ``(seq, sorted canonical deltas)`` entry per source update, rid-
    free and sorted within the update — the representation that is
    byte-identical across runs whenever the visible results are, however
    the engine's cache wiring happened to order emissions inside one
    update. Pass a stopped run plus its rescaled continuation to compare
    the pair against one fixed-shard run.
    """
    from repro.streams.events import canonical_delta

    groups: Dict[int, List[tuple]] = {}
    for run in runs:
        for seq, _index, delta in run.merged_deltas():
            groups.setdefault(seq, []).append(canonical_delta(delta))
    return [
        (seq, tuple(sorted(groups[seq]))) for seq in sorted(groups)
    ]


def count_source_updates(spec: ExperimentSpec) -> int:
    """How many updates the (possibly faulted) global stream contains."""
    from repro.faults.plan import FaultPlan

    workload = spec.workload_factory()
    updates = workload.updates(spec.arrivals)
    if spec.fault_spec is not None:
        updates = FaultPlan(spec.fault_spec, seed=spec.fault_seed).updates(
            updates
        )
    return sum(1 for _ in updates)


def _coordinated_worker(conn, spec, shard, shard_count) -> None:
    """Process-backend worker joined to the parent's coordinator."""
    try:
        result = run_shard(
            spec, shard, shard_count, coordination=PipeChannel(conn)
        )
        conn.send(("ok", result))
    except BaseException as error:  # noqa: BLE001 - shipped to the parent
        try:
            conn.send(("err", f"{type(error).__name__}: {error}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _run_shard_star(args) -> ShardResult:
    """Module-level trampoline so Pool.map can pickle the call."""
    spec, shard, shard_count = args
    return run_shard(spec, shard, shard_count)


class ParallelEngine:
    """Runs one :class:`ExperimentSpec` sharded and merges the pieces."""

    def __init__(self, config: ParallelConfig):
        self.config = config
        self._merger = StatsMerger()

    def run(self, spec: ExperimentSpec) -> ParallelRun:
        """Fan the experiment out over shards and merge the results."""
        import time

        shards = self.config.shards
        scheme = scheme_for_workload(spec.workload_factory(), shards)
        coordinator: Optional[EpochCoordinator] = None
        if spec.adaptivity is not None and shards > 1:
            coordinator = EpochCoordinator(spec, shards)
        started = time.perf_counter()
        if coordinator is not None:
            if self.config.backend == "process":
                results = self._run_process_coordinated(
                    spec, shards, coordinator
                )
            else:
                results = self._run_threads_coordinated(
                    spec, shards, scheme, coordinator
                )
        elif self.config.backend == "process" and shards > 1:
            results = self._run_process(spec, shards)
        else:
            results = [
                run_shard(spec, shard, shards, scheme=scheme)
                for shard in range(shards)
            ]
        wall = time.perf_counter() - started
        source_updates = count_source_updates(spec)
        stats = self._merger.merge(
            [result.stats for result in results],
            source_updates=source_updates,
        )
        return ParallelRun(
            scheme=scheme,
            backend=self.config.backend,
            results=results,
            stats=stats,
            source_updates=source_updates,
            wall_seconds=wall,
            spec=spec,
            cache_plans=(
                coordinator.plans_in_order() if coordinator else ()
            ),
            coordinator_decisions=(
                [record.to_dict() for record in coordinator.decisions.entries()]
                if coordinator
                else []
            ),
        )

    def _run_threads_coordinated(
        self,
        spec: ExperimentSpec,
        shards: int,
        scheme: PartitionScheme,
        coordinator: EpochCoordinator,
    ) -> List[ShardResult]:
        """Coordinated shards under the serial backend: one thread per
        shard, sharing a :class:`ThreadChannel` barrier. Threads (not a
        sequential loop) because every shard must reach each epoch
        barrier before any can pass it; determinism is preserved because
        the barrier serializes exactly the plan decision, which depends
        only on the submitted snapshots, never on thread timing."""
        import threading

        channel = ThreadChannel(coordinator)
        results: List[Optional[ShardResult]] = [None] * shards
        errors: List[Tuple[int, BaseException]] = []

        def work(shard: int) -> None:
            try:
                results[shard] = run_shard(
                    spec, shard, shards, scheme=scheme, coordination=channel
                )
            except BaseException as error:  # noqa: BLE001 - reported below
                errors.append((shard, error))
            finally:
                # Unblock any shard waiting on a barrier this one will
                # never reach (normal completion retires it too, which
                # is harmless: all barriers lie at stream positions every
                # finisher has already passed).
                channel.retire(shard)

        threads = [
            threading.Thread(
                target=work, args=(shard,), name=f"repro-shard-{shard}"
            )
            for shard in range(shards)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            shard, error = min(errors, key=lambda pair: pair[0])
            raise ParallelError(
                f"coordinated shard {shard} failed: {error}"
            ) from error
        return [result for result in results if result is not None]

    def _run_process_coordinated(
        self,
        spec: ExperimentSpec,
        shards: int,
        coordinator: EpochCoordinator,
    ) -> List[ShardResult]:
        """Coordinated shards under the process backend: one process per
        shard over a duplex pipe; this parent runs the coordinator's
        serve loop (snapshots in, plans out)."""
        import multiprocessing
        import pickle

        ctx = multiprocessing.get_context()
        states: Dict[int, tuple] = {}
        try:
            for shard in range(shards):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_coordinated_worker,
                    args=(child_conn, spec, shard, shards),
                )
                process.start()
                child_conn.close()
                states[shard] = (process, parent_conn)
        except (pickle.PicklingError, AttributeError, TypeError) as error:
            raise ParallelError(
                f"process backend could not ship the experiment to "
                f"workers: {error}"
            ) from None

        def push(deliveries) -> None:
            for target, plan in deliveries:
                state = states.get(target)
                if state is None:
                    continue
                try:
                    state[1].send(("plan", plan))
                except (BrokenPipeError, OSError):
                    pass  # dying worker; its exit is handled below

        results: Dict[int, ShardResult] = {}
        failures: List[str] = []
        live = set(states)
        while live:
            for shard in sorted(live):
                process, conn = states[shard]
                if conn.poll(0.005):
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        live.discard(shard)
                        failures.append(
                            f"shard {shard} died (exit "
                            f"{process.exitcode})"
                        )
                        push(coordinator.retire(shard))
                        continue
                    kind = message[0]
                    if kind == "snap":
                        _, epoch, snap_shard, snapshot = message
                        push(coordinator.submit(epoch, snap_shard, snapshot))
                    elif kind == "ok":
                        results[shard] = message[1]
                        live.discard(shard)
                        push(coordinator.retire(shard))
                    elif kind == "err":
                        failures.append(f"shard {shard}: {message[1]}")
                        live.discard(shard)
                        push(coordinator.retire(shard))
                elif not process.is_alive():
                    live.discard(shard)
                    failures.append(
                        f"shard {shard} died (exit {process.exitcode})"
                    )
                    push(coordinator.retire(shard))
        for process, conn in states.values():
            process.join()
            conn.close()
        if failures:
            raise ParallelError(
                "coordinated process run failed: " + "; ".join(failures)
            )
        return [results[shard] for shard in sorted(results)]

    def _run_process(
        self, spec: ExperimentSpec, shards: int
    ) -> List[ShardResult]:
        import multiprocessing
        import pickle

        jobs = [(spec, shard, shards) for shard in range(shards)]
        try:
            with multiprocessing.Pool(processes=shards) as pool:
                return pool.map(_run_shard_star, jobs)
        except (pickle.PicklingError, AttributeError, TypeError) as error:
            # A spec that cannot be pickled (closure factories) is a
            # configuration problem, not a crash.
            raise ParallelError(
                f"process backend could not ship the experiment to "
                f"workers: {error}"
            ) from None


def run_sharded(
    spec: ExperimentSpec, parallel: ParallelConfig
) -> ParallelRun:
    """Convenience wrapper: build the engine and run one experiment."""
    return ParallelEngine(parallel).run(spec)
