"""The serial-vs-sharded throughput benchmark (``repro bench``).

Measures the full adaptive A-Caching engine on the 6-way star workload
(Figure 9's shape at n=6: one attribute class, so every stream hash-
partitions and nothing is broadcast) serially and at each requested
shard count, and writes ``BENCH_parallel.json`` — the repo's performance
trajectory baseline that future PRs diff against.

Two speedups are reported per shard count:

* ``modeled_speedup`` — serial virtual elapsed time over the sharded
  critical path (slowest shard). Deterministic and hardware-independent:
  what a machine with one core per shard achieves under the engine's
  cost model. This is the number CI can assert on.
* ``wall_seconds`` — real time the backend took on *this* machine.
  Informative only: on a single-core container the process backend
  cannot beat serial wall time, while on >= shards cores it tracks the
  modeled number.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.api import EngineConfig
from repro.core.profiler import ProfilerConfig
from repro.core.reoptimizer import ReoptimizerConfig
from repro.core.acaching import ACachingConfig
from repro.errors import ParallelError
from repro.ordering.agreedy import OrderingConfig
from repro.parallel.adaptivity import AdaptivityConfig, recommend_rescale
from repro.parallel.engine import (
    ParallelConfig,
    ParallelEngine,
    output_chronology,
)
from repro.parallel.spec import EngineSpec, ExperimentSpec
from repro.streams.workloads import fig9_workload

# v2: sharded points run under the global adaptivity plane (per-point
# ``coordinated`` flag, nonzero sharded hit rates) and the report gains
# a ``resharding`` block demonstrating a mid-run 2 -> 4 rescale.
BENCH_SCHEMA_VERSION = 2
DEFAULT_OUT = "BENCH_parallel.json"
DEFAULT_ARRIVALS = 8_000
DEFAULT_SHARDS = (1, 2, 4)
BENCH_RELATIONS = 6


def bench_tuning() -> ACachingConfig:
    """The adaptive tunables every bench run uses."""
    return ACachingConfig(
        profiler=ProfilerConfig(
            window=6,
            profile_probability=0.05,
            bloom_window_tuples=256,
            # All shards sample the same global updates, so the
            # coordinator's merged statistics match a serial profiler's.
            deterministic_gate=True,
        ),
        reoptimizer=ReoptimizerConfig(
            reopt_interval_updates=2000,
            profiling_phase_updates=400,
            global_quota=6,
        ),
        ordering=OrderingConfig(interval_updates=1500),
        adaptive_ordering=True,
    )


def bench_engine_config(batch_size: int = 1) -> EngineConfig:
    """The facade config every bench run builds its engine from."""
    return EngineConfig(tuning=bench_tuning(), batch_size=batch_size)


def bench_engine_spec() -> EngineSpec:
    """The adaptive engine configuration every bench run uses."""
    return bench_engine_config().engine_spec("adaptive")


#: epoch length of the bench's adaptivity plane (global stream positions).
BENCH_SYNC_EVERY = 2_000


def bench_spec(
    arrivals: int, workload_factory=None
) -> ExperimentSpec:
    """The 6-way workload experiment, steady-state measured.

    Carries the adaptivity plane; :class:`ParallelEngine` only activates
    it when the run is actually sharded, so the serial reference still
    measures the local (per-engine) re-optimizer. ``workload_factory``
    (a zero-argument picklable callable) swaps the hardcoded 6-way
    workload for any other — the ``bench --trace``/``--scenario`` path.
    """
    if workload_factory is None:
        workload_factory = partial(fig9_workload, BENCH_RELATIONS, window=48)
    return ExperimentSpec(
        workload_factory=workload_factory,
        arrivals=arrivals,
        engine=bench_engine_spec(),
        warmup_fraction=0.4,
        output_mode="none",
        adaptivity=AdaptivityConfig(sync_every_updates=BENCH_SYNC_EVERY),
    )


@dataclass
class BenchPoint:
    """One shard count's measurement."""

    shards: int
    backend: str
    modeled_throughput: float
    steady_throughput: float
    modeled_speedup: float
    steady_speedup: float
    critical_path_s: float
    total_work_s: float
    balance: float
    wall_seconds: float
    source_updates: int
    per_shard_updates: List[int]
    hit_rate: float
    used_caches: List[str]
    partitioned: List[str]
    broadcast: List[str]
    coordinated: bool = False


@dataclass
class ReshardDemo:
    """One elastic-resharding demonstration: stop, rescale, verify."""

    from_shards: int
    to_shards: int
    boundary_updates: int        # global stream position of the rescale
    outputs_identical: bool      # combined chronology == fixed-shard run
    windows_identical: bool      # final window contents agree too
    pre_hit_rate: float          # stopped run (phase 1)
    post_hit_rate: float         # rescaled continuation (phase 2)
    fixed_hit_rate: float        # the uninterrupted reference run
    advice_action: str           # rate-aware trigger on the stopped run
    recommended_shards: int


@dataclass
class BenchReport:
    """The full serial-vs-sharded comparison."""

    workload: str
    arrivals: int
    backend: str
    serial_throughput: float
    serial_steady_throughput: float
    serial_elapsed_s: float
    serial_steady_span_s: float
    serial_wall_seconds: float
    points: List[BenchPoint] = field(default_factory=list)
    resharding: Optional[ReshardDemo] = None


def run_parallel_bench(
    shard_counts: Sequence[int] = DEFAULT_SHARDS,
    arrivals: int = DEFAULT_ARRIVALS,
    backend: str = "process",
    workload_factory=None,
) -> BenchReport:
    """Measure serial vs sharded throughput on the 6-way workload.

    ``workload_factory`` (zero-argument, picklable) benches any other
    workload — a replayed trace or a compiled scenario — instead.
    """
    if arrivals <= 0:
        raise ParallelError(f"arrivals must be positive, got {arrivals}")
    if not shard_counts:
        raise ParallelError("need at least one shard count to benchmark")
    for count in shard_counts:
        if count < 1:
            raise ParallelError(f"shard count must be >= 1, got {count}")

    spec = bench_spec(arrivals, workload_factory)

    # Serial reference: the same computation as one shard of one.
    import time

    started = time.perf_counter()
    serial = ParallelEngine(ParallelConfig(shards=1, backend="serial")).run(
        spec
    )
    serial_wall = time.perf_counter() - started
    serial_elapsed_us = serial.stats.critical_path_us
    serial_steady_us = serial.stats.measured_critical_us

    report = BenchReport(
        workload=spec.workload_factory().name,
        arrivals=arrivals,
        backend=backend,
        serial_throughput=serial.stats.modeled_throughput,
        serial_steady_throughput=serial.stats.steady_throughput,
        serial_elapsed_s=serial_elapsed_us / 1e6,
        serial_steady_span_s=serial_steady_us / 1e6,
        serial_wall_seconds=serial.wall_seconds,
    )
    for count in shard_counts:
        run = ParallelEngine(
            ParallelConfig(shards=count, backend=backend)
        ).run(spec)
        stats = run.stats
        report.points.append(
            BenchPoint(
                shards=count,
                backend=run.backend,
                modeled_throughput=stats.modeled_throughput,
                steady_throughput=stats.steady_throughput,
                modeled_speedup=stats.speedup_over_us(serial_elapsed_us),
                steady_speedup=(
                    serial_steady_us / max(1e-12, stats.measured_critical_us)
                ),
                critical_path_s=stats.critical_path_us / 1e6,
                total_work_s=stats.total_work_us / 1e6,
                balance=stats.balance,
                wall_seconds=run.wall_seconds,
                source_updates=stats.source_updates,
                per_shard_updates=list(stats.per_shard_updates),
                hit_rate=stats.hit_rate,
                used_caches=list(stats.used_caches),
                partitioned=list(run.scheme.partitioned),
                broadcast=list(run.scheme.broadcast),
                coordinated=bool(run.cache_plans),
            )
        )
    report.resharding = run_reshard_demo(
        arrivals, workload_factory=workload_factory
    )
    return report


def run_reshard_demo(
    arrivals: int = DEFAULT_ARRIVALS,
    from_shards: int = 2,
    to_shards: int = 4,
    workload_factory=None,
) -> ReshardDemo:
    """Stop a coordinated run mid-stream, rescale it, verify identity.

    Runs phase 1 at ``from_shards`` to an epoch-aligned update boundary,
    rescales the live window state to ``to_shards`` for the remainder,
    and checks the combined output chronology and final windows against
    one uninterrupted ``to_shards`` run. Always on the in-process
    backend: identity is a property of the computation, not the
    transport (the equivalence suite pins backend-equality separately).
    """
    # warmup_fraction=0 so the stopped prefix reports real hit rates —
    # the bench's 0.4 warmup would swallow the whole pre-rescale phase.
    base = replace(
        bench_spec(arrivals, workload_factory),
        output_mode="deltas",
        collect_windows=True,
        warmup_fraction=0.0,
    )
    # Late enough that the pre-rescale phase has live caches (epoch 1
    # profiles are still warming), early enough that roughly half the
    # stream — inserts plus expiries, about 1.9x arrivals on fig9 —
    # runs at the new width. At the default 8000 arrivals this lands on
    # epoch 4 (position 8000 of ~15k).
    epochs = max(2, arrivals // BENCH_SYNC_EVERY)
    boundary = epochs * BENCH_SYNC_EVERY
    fixed = ParallelEngine(
        ParallelConfig(shards=to_shards, backend="serial")
    ).run(base)
    stopped = ParallelEngine(
        ParallelConfig(shards=from_shards, backend="serial")
    ).run(replace(base, stop_after_updates=boundary))
    resumed = stopped.rescale(to_shards, backend="serial")
    advice = recommend_rescale(stopped.stats)
    return ReshardDemo(
        from_shards=from_shards,
        to_shards=to_shards,
        boundary_updates=boundary,
        outputs_identical=(
            output_chronology(stopped, resumed)
            == output_chronology(fixed)
        ),
        windows_identical=(
            resumed.merged_windows() == fixed.merged_windows()
        ),
        pre_hit_rate=stopped.stats.hit_rate,
        post_hit_rate=resumed.stats.hit_rate,
        fixed_hit_rate=fixed.stats.hit_rate,
        advice_action=advice.action,
        recommended_shards=advice.recommended_shards,
    )


def bench_to_json(report: BenchReport) -> str:
    """Serialize a bench report (schema in benchmarks/README.md)."""
    payload = {
        "kind": "parallel_bench",
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": report.workload,
        "arrivals": report.arrivals,
        "backend": report.backend,
        "serial": {
            "modeled_throughput": round(report.serial_throughput, 1),
            "steady_throughput": round(report.serial_steady_throughput, 1),
            "elapsed_virtual_s": round(report.serial_elapsed_s, 6),
            "steady_span_virtual_s": round(report.serial_steady_span_s, 6),
            "wall_seconds": round(report.serial_wall_seconds, 3),
        },
        "points": [
            {
                "shards": p.shards,
                "backend": p.backend,
                "modeled_throughput": round(p.modeled_throughput, 1),
                "steady_throughput": round(p.steady_throughput, 1),
                "modeled_speedup": round(p.modeled_speedup, 3),
                "steady_speedup": round(p.steady_speedup, 3),
                "critical_path_virtual_s": round(p.critical_path_s, 6),
                "total_work_virtual_s": round(p.total_work_s, 6),
                "balance": round(p.balance, 3),
                "wall_seconds": round(p.wall_seconds, 3),
                "source_updates": p.source_updates,
                "per_shard_updates": p.per_shard_updates,
                "hit_rate": round(p.hit_rate, 4),
                "used_caches": p.used_caches,
                "partitioned": p.partitioned,
                "broadcast": p.broadcast,
                "coordinated": p.coordinated,
            }
            for p in report.points
        ],
    }
    demo = report.resharding
    if demo is not None:
        payload["resharding"] = {
            "from_shards": demo.from_shards,
            "to_shards": demo.to_shards,
            "boundary_updates": demo.boundary_updates,
            "outputs_identical": demo.outputs_identical,
            "windows_identical": demo.windows_identical,
            "pre_hit_rate": round(demo.pre_hit_rate, 4),
            "post_hit_rate": round(demo.post_hit_rate, 4),
            "fixed_hit_rate": round(demo.fixed_hit_rate, 4),
            "advice_action": demo.advice_action,
            "recommended_shards": demo.recommended_shards,
        }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def format_bench_report(report: BenchReport) -> str:
    """Human-readable bench table for the CLI."""
    lines = [
        f"parallel throughput bench — {report.workload}, "
        f"{report.arrivals} arrivals, backend {report.backend}",
        "=" * 72,
        f"serial: {report.serial_throughput:>10,.0f} updates/sec "
        f"(steady {report.serial_steady_throughput:,.0f}), "
        f"{report.serial_elapsed_s:.3f}s virtual, "
        f"{report.serial_wall_seconds:.2f}s wall",
        f"{'shards':>7} | {'modeled rate':>12} | {'speedup':>8} | "
        f"{'steady x':>8} | {'balance':>7} | {'wall s':>7} | broadcast",
    ]
    for p in report.points:
        coordinated = " (coordinated)" if p.coordinated else ""
        lines.append(
            f"{p.shards:>7} | {p.modeled_throughput:>12,.0f} | "
            f"{p.modeled_speedup:>7.2f}x | {p.steady_speedup:>7.2f}x | "
            f"{p.balance:>7.2f} | {p.wall_seconds:>7.2f} | "
            f"{p.broadcast or '—'}{coordinated}"
        )
    demo = report.resharding
    if demo is not None:
        verdict = "identical" if demo.outputs_identical else "DIVERGED"
        lines.append(
            f"reshard {demo.from_shards}->{demo.to_shards} at update "
            f"{demo.boundary_updates}: outputs {verdict}, hit rate "
            f"{demo.pre_hit_rate:.2f} -> {demo.post_hit_rate:.2f} "
            f"(fixed {demo.fixed_hit_rate:.2f}); advice: "
            f"{demo.advice_action} -> {demo.recommended_shards} shards"
        )
    return "\n".join(lines)
