"""Supervised parallel execution: heartbeats, restarts, circuit breaker.

The plain process backend maps shards over a :class:`multiprocessing.
Pool` and dies with its slowest worker. The :class:`Supervisor` replaces
that with one monitored :class:`multiprocessing.Process` per shard:

* each worker streams per-shard **heartbeats** (its processed-update
  count) over a pipe; a worker that stops beating for
  ``heartbeat_timeout_s`` is declared hung and killed;
* a dead or hung worker is **restarted with bounded exponential
  backoff** (``min(backoff_max_s, backoff_base_s * 2**(n-1))``); with a
  per-shard :class:`~repro.recovery.manager.RecoveryConfig` the restart
  *resumes from the shard's last checkpoint* — :func:`run_shard`'s
  restore path — instead of recomputing from scratch;
* after ``max_restarts`` failed restarts the shard trips a **circuit
  breaker**: the supervisor stops burning processes and runs that shard
  serially in-parent (still resuming from its checkpoint), so a
  poisoned shard degrades the run instead of hanging it.

Deliberate crash injection for tests and the chaos CLI is a
:class:`WorkerCrash`: kill shard ``shard`` after ``after_updates``
processed updates, for the first ``attempts`` spawn attempts. Because a
restart resumes deterministic work, the merged output of a crashed-and-
recovered run is identical to a clean sharded run — the property
``tests/test_supervisor.py`` pins down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, ParallelError
from repro.obs.decisions import WORKER_FALLBACK, WORKER_RESTART, DecisionLog
from repro.parallel.adaptivity import EpochCoordinator, PipeChannel
from repro.parallel.engine import ParallelRun, count_source_updates
from repro.parallel.partitioner import scheme_for_workload
from repro.parallel.shard import ShardResult, run_shard
from repro.parallel.spec import ExperimentSpec
from repro.parallel.stats import StatsMerger


@dataclass(frozen=True)
class SupervisionConfig:
    """Heartbeat cadence, hang detection, and restart policy."""

    heartbeat_every_updates: int = 500   # worker -> parent cadence
    heartbeat_timeout_s: float = 30.0    # silence => declared hung
    max_restarts: int = 3                # per shard, then circuit-break
    backoff_base_s: float = 0.05         # first restart delay
    backoff_max_s: float = 2.0           # exponential backoff ceiling

    def __post_init__(self) -> None:
        if self.heartbeat_every_updates < 1:
            raise ConfigError(
                "supervision heartbeat_every_updates must be >= 1, got "
                f"{self.heartbeat_every_updates}"
            )
        if self.heartbeat_timeout_s <= 0:
            raise ConfigError(
                "supervision heartbeat_timeout_s must be positive, got "
                f"{self.heartbeat_timeout_s}"
            )
        if self.max_restarts < 0:
            raise ConfigError(
                "supervision max_restarts must be >= 0, got "
                f"{self.max_restarts}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigError(
                "supervision backoff_base_s/backoff_max_s must be >= 0"
            )

    def backoff_s(self, restart: int) -> float:
        """Delay before restart number ``restart`` (1-based)."""
        return min(
            self.backoff_max_s,
            self.backoff_base_s * (2 ** max(0, restart - 1)),
        )


@dataclass(frozen=True)
class WorkerCrash:
    """Deterministic crash injection for one shard's worker."""

    shard: int
    after_updates: int     # processed-update count the worker dies at
    attempts: int = 1      # spawn attempts that carry the kill

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ConfigError(f"crash shard must be >= 0, got {self.shard}")
        if self.after_updates < 1:
            raise ConfigError(
                "crash after_updates must be >= 1, got "
                f"{self.after_updates}"
            )
        if self.attempts < 1:
            raise ConfigError(
                f"crash attempts must be >= 1, got {self.attempts}"
            )


@dataclass
class SupervisedRun:
    """A merged sharded run plus its supervision history."""

    run: ParallelRun
    restarts: Dict[int, int] = field(default_factory=dict)  # shard -> count
    fallbacks: List[int] = field(default_factory=list)      # circuit-broken
    decisions: List[Dict[str, object]] = field(default_factory=list)

    # Delegate the merge API so a SupervisedRun drops in anywhere a
    # ParallelRun does (Session.run, the chaos harness, tests).
    @property
    def stats(self):
        return self.run.stats

    @property
    def results(self) -> List[ShardResult]:
        return self.run.results

    @property
    def scheme(self):
        return self.run.scheme

    def merged_deltas(self):
        return self.run.merged_deltas()

    def merged_canonical(self):
        return self.run.merged_canonical()

    def merged_windows(self):
        return self.run.merged_windows()

    def merged_resilience_summary(self):
        return self.run.merged_resilience_summary()

    def merged_dead_letters(self):
        return self.run.merged_dead_letters()

    def merged_telemetry(self):
        return self.run.merged_telemetry()

    @property
    def cache_plans(self):
        return self.run.cache_plans

    @property
    def coordinator_decisions(self):
        return self.run.coordinator_decisions

    @property
    def total_restarts(self) -> int:
        return sum(self.restarts.values())


def _supervised_worker(
    conn,
    spec,
    shard,
    shard_count,
    recovery,
    kill_after,
    heartbeat_every,
    coordinate=False,
) -> None:
    """Worker entry point: run the shard, streaming heartbeats back.

    With ``coordinate`` the same pipe doubles as the adaptivity-plane
    transport: heartbeats and snapshots flow up, cache plans flow down
    (the parent never sends anything else, so the worker's blocking
    ``recv`` inside :class:`PipeChannel` only ever sees plans).
    """

    def progress(processed: int) -> None:
        if processed % heartbeat_every == 0:
            try:
                conn.send(("hb", processed))
            except (BrokenPipeError, OSError):  # parent gone; keep working
                pass

    try:
        result = run_shard(
            spec,
            shard,
            shard_count,
            recovery=recovery,
            progress=progress,
            kill_after=kill_after,
            coordination=PipeChannel(conn) if coordinate else None,
        )
        conn.send(("ok", result))
    except Exception as error:  # surfaced to the parent as a failure
        try:
            conn.send(("err", f"{type(error).__name__}: {error}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class _ShardState:
    """Parent-side bookkeeping for one supervised shard."""

    __slots__ = (
        "shard", "process", "conn", "spawns", "restarts", "result",
        "failure", "last_beat", "next_spawn_at", "fallback",
    )

    def __init__(self, shard: int):
        self.shard = shard
        self.process = None
        self.conn = None
        self.spawns = 0            # total worker processes started
        self.restarts = 0          # spawns beyond the first
        self.result: Optional[ShardResult] = None
        self.failure: Optional[str] = None
        self.last_beat = 0.0
        self.next_spawn_at = 0.0
        self.fallback = False


class Supervisor:
    """Runs an experiment sharded under restartable worker processes."""

    def __init__(
        self,
        supervision: Optional[SupervisionConfig] = None,
        recovery=None,
    ):
        self.supervision = (
            supervision if supervision is not None else SupervisionConfig()
        )
        # A run-level RecoveryConfig; each shard journals under
        # ``<wal_dir>/shard-<i>``. None disables durable restarts (a
        # restarted shard recomputes from scratch — still correct, the
        # work is deterministic, just slower).
        self.recovery = recovery
        self.decisions = DecisionLog()
        # Run-scoped adaptivity plane (set by run() when the spec asks
        # for coordination): the coordinator plus a shard -> _ShardState
        # map for routing its plan deliveries to live pipes.
        self._coordinator: Optional[EpochCoordinator] = None
        self._states_by_shard: Dict[int, _ShardState] = {}

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _shard_recovery(self, shard: int):
        if self.recovery is None:
            return None
        return self.recovery.for_shard(shard)

    def _spawn(self, spec, state: _ShardState, shards: int, crash) -> None:
        import multiprocessing

        state.spawns += 1
        kill_after = None
        if crash is not None and state.spawns <= crash.attempts:
            kill_after = crash.after_updates
        coordinate = self._coordinator is not None
        # Coordinated workers need the downstream direction for plans.
        parent_conn, child_conn = multiprocessing.Pipe(duplex=coordinate)
        process = multiprocessing.Process(
            target=_supervised_worker,
            args=(
                child_conn,
                spec,
                state.shard,
                shards,
                self._shard_recovery(state.shard),
                kill_after,
                self.supervision.heartbeat_every_updates,
                coordinate,
            ),
        )
        process.daemon = True
        process.start()
        child_conn.close()
        state.process = process
        state.conn = parent_conn
        state.last_beat = time.monotonic()

    def _reap(self, state: _ShardState) -> None:
        if state.conn is not None:
            state.conn.close()
            state.conn = None
        if state.process is not None:
            state.process.join(timeout=5.0)
            state.process = None

    def _push_plans(self, deliveries) -> None:
        """Route coordinator plan deliveries to their shards' pipes."""
        for shard, plan in deliveries:
            target = self._states_by_shard.get(shard)
            if target is None or target.conn is None:
                continue
            try:
                target.conn.send(("plan", plan))
            except (BrokenPipeError, OSError):
                pass  # dying worker; its restart re-reaches the barrier

    def _retire_shard(self, shard: int) -> None:
        """Drop a shard from the adaptivity plane (done or fallback)."""
        if self._coordinator is not None:
            self._push_plans(self._coordinator.retire(shard))

    def _drain(self, state: _ShardState) -> None:
        """Pull every queued message off one shard's pipe."""
        while state.conn is not None and state.conn.poll(0):
            try:
                message = state.conn.recv()
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == "hb":
                state.last_beat = time.monotonic()
            elif kind == "ok":
                state.result = message[1]
            elif kind == "err":
                state.failure = message[1]
            elif kind == "snap" and self._coordinator is not None:
                # Reaching a barrier proves liveness as surely as a
                # heartbeat does.
                state.last_beat = time.monotonic()
                _, epoch, shard, snapshot = message
                self._push_plans(
                    self._coordinator.submit(epoch, shard, snapshot)
                )

    def _on_failure(self, spec, state: _ShardState, shards, crash) -> None:
        reason = state.failure or (
            f"worker exited with code "
            f"{state.process.exitcode if state.process else '?'}"
        )
        state.failure = None
        self._reap(state)
        if state.restarts >= self.supervision.max_restarts:
            # Circuit breaker: stop burning processes; run the shard
            # serially in-parent, resuming from its last checkpoint.
            state.fallback = True
            self.decisions.record(
                time.monotonic() * 1e6,
                WORKER_FALLBACK,
                f"shard-{state.shard}",
                reason=(
                    f"{reason}; {state.restarts} restarts exhausted, "
                    f"degrading to in-parent serial execution"
                ),
            )
            # Leave the adaptivity plane first — remaining workers must
            # not block on barriers this shard will never reach. The
            # fallback runs uncoordinated (local adaptivity), which is
            # the degraded-but-correct mode: cache choices never change
            # emitted results.
            self._retire_shard(state.shard)
            state.result = run_shard(
                spec,
                state.shard,
                shards,
                recovery=self._shard_recovery(state.shard),
            )
            return
        state.restarts += 1
        delay = self.supervision.backoff_s(state.restarts)
        state.next_spawn_at = time.monotonic() + delay
        self.decisions.record(
            time.monotonic() * 1e6,
            WORKER_RESTART,
            f"shard-{state.shard}",
            reason=(
                f"{reason}; restart {state.restarts}/"
                f"{self.supervision.max_restarts} in {delay:.3f}s"
            ),
        )

    # ------------------------------------------------------------------
    # the supervised run
    # ------------------------------------------------------------------
    def run(
        self,
        spec: ExperimentSpec,
        shards: int,
        crashes: Sequence[WorkerCrash] = (),
    ) -> SupervisedRun:
        """Fan out, supervise to completion, merge — never hang."""
        if shards < 1:
            raise ParallelError(f"shard count must be >= 1, got {shards}")
        crash_by_shard = {crash.shard: crash for crash in crashes}
        for crash in crashes:
            if crash.shard >= shards:
                raise ParallelError(
                    f"crash targets shard {crash.shard}, run has {shards}"
                )
        scheme = scheme_for_workload(spec.workload_factory(), shards)
        self._coordinator = (
            EpochCoordinator(spec, shards)
            if spec.adaptivity is not None and shards > 1
            else None
        )
        started = time.perf_counter()
        states = [_ShardState(shard) for shard in range(shards)]
        self._states_by_shard = {state.shard: state for state in states}
        for state in states:
            self._spawn(spec, state, shards, crash_by_shard.get(state.shard))

        timeout = self.supervision.heartbeat_timeout_s
        while any(state.result is None for state in states):
            for state in states:
                if state.result is not None:
                    continue
                if state.process is None:
                    if time.monotonic() >= state.next_spawn_at:
                        self._spawn(
                            spec, state, shards,
                            crash_by_shard.get(state.shard),
                        )
                    continue
                self._drain(state)
                if state.result is not None:
                    self._retire_shard(state.shard)
                    self._reap(state)
                    continue
                if state.failure is not None:
                    self._on_failure(
                        spec, state, shards, crash_by_shard.get(state.shard)
                    )
                elif not state.process.is_alive():
                    self._drain(state)  # the pipe may hold a final "ok"
                    if state.result is None:
                        self._on_failure(
                            spec, state, shards,
                            crash_by_shard.get(state.shard),
                        )
                    else:
                        self._reap(state)
                elif (
                    self._coordinator is not None
                    and state.shard in self._coordinator.waiting
                ):
                    # Blocked at an epoch barrier: provably alive (it
                    # just submitted a snapshot) but unable to beat
                    # until the plan arrives — don't count the silence.
                    state.last_beat = time.monotonic()
                elif time.monotonic() - state.last_beat > timeout:
                    state.process.terminate()
                    state.failure = (
                        f"no heartbeat for {timeout:.1f}s; worker killed"
                    )
                    self._on_failure(
                        spec, state, shards, crash_by_shard.get(state.shard)
                    )
            time.sleep(0.005)

        wall = time.perf_counter() - started
        results = [state.result for state in states]
        source_updates = count_source_updates(spec)
        stats = StatsMerger().merge(
            [result.stats for result in results],
            source_updates=source_updates,
        )
        coordinator = self._coordinator
        self._coordinator = None
        self._states_by_shard = {}
        run = ParallelRun(
            scheme=scheme,
            backend="supervised",
            results=results,
            stats=stats,
            source_updates=source_updates,
            wall_seconds=wall,
            spec=spec,
            cache_plans=(
                coordinator.plans_in_order() if coordinator else ()
            ),
            coordinator_decisions=(
                [
                    record.to_dict()
                    for record in coordinator.decisions.entries()
                ]
                if coordinator
                else []
            ),
        )
        return SupervisedRun(
            run=run,
            restarts={
                state.shard: state.restarts
                for state in states
                if state.restarts
            },
            fallbacks=[state.shard for state in states if state.fallback],
            decisions=[r.to_dict() for r in self.decisions.entries()],
        )
