"""Partitioned parallel execution of the A-Caching engine.

Hash-partitions every update stream on an equijoin attribute class
(broadcasting relations the class does not cover), runs one complete
pipeline — joins, windows, caches, profiler, re-optimizer, resilience —
per shard, and merges the emitted results back into the global arrival
order. See docs/parallelism.md for the scheme, its equivalence
guarantees, and the benchmark methodology.

>>> from functools import partial
>>> from repro.parallel import (
...     ExperimentSpec, ParallelConfig, run_sharded
... )
>>> from repro.streams.workloads import fig9_workload
>>> spec = ExperimentSpec(partial(fig9_workload, 4), arrivals=4000)
>>> run = run_sharded(spec, ParallelConfig(shards=4, backend="serial"))
>>> run.stats.modeled_throughput  # doctest: +SKIP
"""

from repro.parallel.engine import (
    BACKENDS,
    ParallelConfig,
    ParallelEngine,
    ParallelRun,
    run_sharded,
)
from repro.parallel.partitioner import (
    PartitionScheme,
    attribute_classes,
    choose_scheme,
    scheme_for_workload,
    stable_hash,
)
from repro.parallel.series import run_series_sharded
from repro.parallel.shard import ShardResult, ShardStats, run_shard
from repro.parallel.spec import EngineSpec, ExperimentSpec
from repro.parallel.stats import MergedStats, StatsMerger

__all__ = [
    "BACKENDS",
    "EngineSpec",
    "ExperimentSpec",
    "MergedStats",
    "ParallelConfig",
    "ParallelEngine",
    "ParallelRun",
    "PartitionScheme",
    "ShardResult",
    "ShardStats",
    "StatsMerger",
    "attribute_classes",
    "choose_scheme",
    "run_series_sharded",
    "run_shard",
    "run_sharded",
    "scheme_for_workload",
    "stable_hash",
]
