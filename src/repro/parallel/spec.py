"""Picklable descriptions of one shardable experiment.

The process backend cannot ship live engines or generator state across
workers, so a run is described by *how to rebuild it*: a zero-argument
workload factory (a module-level function or ``functools.partial`` of
one — closures won't pickle) plus an :class:`EngineSpec` naming which
plan to construct around the workload. Every worker rebuilds the same
workload, replays the same globally ordered update stream, and processes
only the updates routed to its shard, which is what makes the merged run
bit-equivalent to the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ParallelError
from repro.faults.plan import FaultSpec
from repro.parallel.adaptivity import AdaptivityConfig


@dataclass(frozen=True)
class EngineSpec:
    """Which plan a shard runs; ``build`` constructs it for a workload.

    Kinds:

    * ``"acaching"`` — the full adaptive engine (:class:`ACaching`),
      configured by ``config`` (None = defaults). Resilience rides inside
      the config.
    * ``"static"`` — an MJoin with a fixed cache set (what
      :meth:`repro.api.Session.static` builds).
    * ``"mjoin"`` — a bare, policy-free :class:`MJoinExecutor`.
    * ``"xjoin"`` — an :class:`XJoinExecutor` over ``tree``.
    """

    kind: str = "acaching"
    config: Optional[object] = None            # ACachingConfig
    orders: Optional[Dict[str, Tuple[str, ...]]] = None
    candidate_ids: Tuple[str, ...] = ()
    buckets: int = 512
    tree: Optional[object] = None              # xjoin JoinTree

    def build(self, workload):
        """Construct the plan this spec describes for ``workload``."""
        if self.kind == "acaching":
            from repro.core.acaching import ACaching

            return ACaching(
                workload.graph,
                orders=self.orders,
                indexed_attributes=workload.indexed_attributes,
                config=self.config,
            )
        if self.kind == "static":
            from repro.engine.runtime import _build_static_plan

            return _build_static_plan(
                workload,
                orders=self.orders,
                candidate_ids=self.candidate_ids,
                buckets=self.buckets,
            )
        if self.kind == "mjoin":
            from repro.mjoin.executor import MJoinExecutor

            return MJoinExecutor(
                workload.graph,
                orders=self.orders,
                indexed_attributes=workload.indexed_attributes,
            )
        if self.kind == "xjoin":
            from repro.xjoin.executor import XJoinExecutor

            if self.tree is None:
                raise ParallelError("xjoin EngineSpec needs a join tree")
            return XJoinExecutor(
                workload.graph,
                self.tree,
                indexed_attributes=workload.indexed_attributes,
            )
        raise ParallelError(f"unknown engine kind {self.kind!r}")


# What a shard sends back about its emitted results. ``none`` keeps the
# bench cheap, ``canonical`` ships rid-free multiset keys (chaos compares
# values, not identities), ``deltas`` ships full OutputDeltas tagged with
# their source-update seq for the global-order merge.
OUTPUT_MODES = ("none", "canonical", "deltas")


@dataclass(frozen=True)
class ReshardSeed:
    """How a rescaled run resumes where its predecessor stopped.

    ``windows`` is the predecessor's merged final window contents
    (relation -> [(rid, values), ...]); every new shard seeds the rows
    routed to it and then *skips* the first ``skip_source_through``
    positions of the replayed global stream — the stream prefix those
    windows already reflect. Caches start empty on every shard and are
    re-established by coordinator plan pushes; since cache choices never
    affect visible results, the combined output chronology of the
    stopped run plus the rescaled run is byte-identical to one
    fixed-shard run's (:func:`repro.parallel.engine.output_chronology`).
    """

    skip_source_through: int
    windows: Dict[str, List[Tuple[int, tuple]]]

    def __post_init__(self) -> None:
        if self.skip_source_through < 0:
            raise ParallelError(
                "reshard skip_source_through must be >= 0, got "
                f"{self.skip_source_through}"
            )


@dataclass(frozen=True)
class ExperimentSpec:
    """One shardable run: workload + engine + measurement directives."""

    workload_factory: Callable[[], object]     # picklable, zero-argument
    arrivals: int
    engine: EngineSpec = field(default_factory=EngineSpec)
    fault_spec: Optional[FaultSpec] = None     # rewrite the stream first
    fault_seed: int = 0
    warmup_fraction: float = 0.0               # steady-state measurement
    output_mode: str = "none"
    collect_windows: bool = False              # ship final window contents
    poison_at: Optional[int] = None            # per-shard cache poisoning
    batch_size: int = 1                        # per-shard micro-batch size
    # Telemetry: collect_obs runs each worker under a full Observability
    # session and ships its registry/tracer/decision state back on the
    # ShardResult; profile additionally attaches a live SpanProfiler
    # (implies collect_obs for the return path).
    collect_obs: bool = False
    profile: bool = False
    # Global adaptivity plane (repro.parallel.adaptivity): when set and
    # the run is actually sharded, shards exchange profiler snapshots
    # for coordinator cache plans at epoch boundaries.
    adaptivity: Optional[AdaptivityConfig] = None
    # Elastic resharding: stop cleanly after this many positions of the
    # global stream (an update boundary), so ParallelRun.rescale can
    # hand the suffix to a run with a different shard count ...
    stop_after_updates: Optional[int] = None
    # ... which resumes via this seed (windows + the prefix to skip).
    reshard: Optional[ReshardSeed] = None

    def __post_init__(self) -> None:
        if self.arrivals <= 0:
            raise ParallelError(
                f"arrivals must be positive, got {self.arrivals}"
            )
        if self.batch_size < 1:
            raise ParallelError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.output_mode not in OUTPUT_MODES:
            raise ParallelError(
                f"output_mode must be one of {OUTPUT_MODES}, "
                f"got {self.output_mode!r}"
            )
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ParallelError(
                f"warmup_fraction must be in [0, 1), got "
                f"{self.warmup_fraction}"
            )
        if self.adaptivity is not None and self.engine.kind != "acaching":
            raise ParallelError(
                "coordinated adaptivity requires an acaching engine, "
                f"got kind {self.engine.kind!r}"
            )
        if self.stop_after_updates is not None and self.stop_after_updates < 1:
            raise ParallelError(
                "stop_after_updates must be >= 1, got "
                f"{self.stop_after_updates}"
            )
        if self.reshard is not None and self.engine.kind == "xjoin":
            # XJoin materializes intermediate subresults that the window
            # seed cannot reconstruct; resharding it would silently drop
            # results.
            raise ParallelError("xjoin engines cannot be resharded")
