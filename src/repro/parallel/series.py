"""Sharded throughput time series (Figure 12/13-style curves).

Rate experiments can run each shard to completion independently, but a
*time series* needs all shards sampled at the same global stream
positions. This runner therefore keeps every shard in-process and drives
the global update stream once, routing each update to its owning
shard(s) and sampling a merged :class:`SeriesPoint` every
``sample_every_updates`` source updates.

Window throughput is modeled the same way the rate path models it: the
source updates of the window divided by the *slowest* shard's virtual
time spent inside the window (one core per shard). Cache sets union,
shed counts sum, and degradation ORs across shards, so the series stays
truthful about what the fleet as a whole did.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.engine.runtime import SeriesPoint
from repro.parallel.partitioner import scheme_for_workload
from repro.parallel.shard import _memory_in_use, _used_caches
from repro.parallel.spec import ExperimentSpec
from repro.streams.events import DeltaBatch, Update


def run_series_sharded(
    spec: ExperimentSpec,
    shards: int,
    sample_every_updates: int = 2000,
    x_of: Optional[Callable[[Update], bool]] = None,
) -> List[SeriesPoint]:
    """Drive one sharded experiment, sampling merged throughput.

    Mirrors :func:`repro.engine.runtime.run_with_series` — same sampling
    cadence (source updates), same x-axis — with per-shard engines
    behind it. Always in-process: a time axis needs lockstep sampling,
    which per-worker replay cannot give.
    """
    driver = spec.workload_factory()
    scheme = scheme_for_workload(driver, shards)
    plans = [spec.engine.build(spec.workload_factory()) for _ in range(shards)]
    contexts = [plan.ctx for plan in plans]
    resiliences = [getattr(plan, "resilience", None) for plan in plans]

    updates: Iterable[Update] = driver.updates(spec.arrivals)
    if spec.fault_spec is not None:
        from repro.faults.plan import FaultPlan

        updates = FaultPlan(spec.fault_spec, seed=spec.fault_seed).updates(
            updates
        )

    series: List[SeriesPoint] = []
    x = 0
    source_processed = 0
    window_start_source = 0
    window_start_us = [ctx.clock.now_us for ctx in contexts]
    window_start_probes = [ctx.metrics.cache_probes for ctx in contexts]
    window_start_hits = [ctx.metrics.cache_hits for ctx in contexts]
    window_start_seq = [ctx.obs.decisions.last_seq for ctx in contexts]
    window_start_shed = [
        r.shed_total if r else 0 for r in resiliences
    ]
    run_start_us = 0.0

    def emit_point() -> None:
        nonlocal window_start_source
        spans = [
            ctx.clock.now_us - start
            for ctx, start in zip(contexts, window_start_us)
        ]
        span_s = max(1e-12, max(spans) / 1e6)
        probes = sum(
            ctx.metrics.cache_probes - start
            for ctx, start in zip(contexts, window_start_probes)
        )
        hits = sum(
            ctx.metrics.cache_hits - start
            for ctx, start in zip(contexts, window_start_hits)
        )
        decisions = tuple(
            record
            for ctx, start in zip(contexts, window_start_seq)
            for record in ctx.obs.decisions.since(start)
        )
        shed_now = [r.shed_total if r else 0 for r in resiliences]
        shed_in_window = sum(
            now - start for now, start in zip(shed_now, window_start_shed)
        )
        elapsed_s = max(
            1e-12,
            (max(ctx.clock.now_us for ctx in contexts) - run_start_us) / 1e6,
        )
        used = sorted({cid for plan in plans for cid in _used_caches(plan)})
        series.append(
            SeriesPoint(
                x=x,
                updates=source_processed,
                window_throughput=(
                    (source_processed - window_start_source) / span_s
                ),
                cumulative_throughput=source_processed / elapsed_s,
                used_caches=tuple(used),
                memory_bytes=sum(_memory_in_use(plan) for plan in plans),
                hit_rate=hits / probes if probes else 0.0,
                decisions=decisions,
                degraded=any(
                    bool(r and r.degraded) for r in resiliences
                ) or shed_in_window > 0,
                shed_updates=shed_in_window,
                shard_count=shards,
            )
        )
        window_start_source = source_processed
        for index, ctx in enumerate(contexts):
            window_start_us[index] = ctx.clock.now_us
            window_start_probes[index] = ctx.metrics.cache_probes
            window_start_hits[index] = ctx.metrics.cache_hits
            window_start_seq[index] = ctx.obs.decisions.last_seq
            window_start_shed[index] = shed_now[index]

    # Per-shard micro-batch buffers (spec.batch_size = 1 keeps the
    # unbatched per-update path). All buffers drain before a sample is
    # taken so every point still reflects a lockstep stream position.
    pending: List[List[Update]] = [[] for _ in range(shards)]

    def flush_shard(shard: int) -> None:
        if pending[shard]:
            plans[shard].process_batch(DeltaBatch(pending[shard]))
            pending[shard].clear()

    for update in updates:
        for shard in scheme.shards_for(update):
            if spec.batch_size == 1:
                plans[shard].process(update)
            else:
                pending[shard].append(update)
                if len(pending[shard]) >= spec.batch_size:
                    flush_shard(shard)
        source_processed += 1
        if x_of is None or x_of(update):
            x += 1
        if source_processed - window_start_source >= sample_every_updates:
            for shard in range(shards):
                flush_shard(shard)
            emit_point()
    for shard in range(shards):
        flush_shard(shard)
    # Flush the trailing partial window (if any updates landed in it).
    if source_processed > window_start_source:
        emit_point()
    return series
