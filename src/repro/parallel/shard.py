"""One shard's full pipeline run, and what it reports back.

A shard is a complete serial engine (MJoin/XJoin/A-Caching with windows,
caches, profiler, re-optimizer, resilience) that sees only the updates
routed to it. Workers rebuild the workload locally and replay the whole
globally ordered stream — generation is deterministic and cheap relative
to join work — filtering to their shard, so no update ever crosses a
process boundary and rids agree bit-for-bit with the serial run.

Each emitted :class:`OutputDelta` is tagged with its source update's
global ``seq`` plus an emission index, which is all the merge step needs
to restore the global arrival order.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.parallel.partitioner import PartitionScheme, scheme_for_workload
from repro.parallel.spec import ExperimentSpec
from repro.streams.events import DeltaBatch, OutputDelta, Sign, canonical_delta

# Exit status a deliberately killed worker dies with (crash injection).
KILL_EXIT_CODE = 23

# (source seq, emission index within that update, the delta itself)
TaggedDelta = Tuple[int, int, OutputDelta]


@dataclass
class ShardStats:
    """One shard's counters, ready to cross a process boundary."""

    shard: int
    shard_count: int
    updates_processed: int = 0
    outputs_emitted: int = 0
    cache_probes: int = 0
    cache_hits: int = 0
    profiled_tuples: int = 0
    reoptimizations: int = 0
    caches_added: int = 0
    caches_dropped: int = 0
    per_cache_hits: Dict[str, int] = field(default_factory=dict)
    clock_us: float = 0.0                # this shard's virtual elapsed time
    measured_updates: int = 0            # post-warmup updates
    measured_span_us: float = 0.0        # post-warmup virtual span
    used_caches: Tuple[str, ...] = ()
    memory_bytes: int = 0
    shed_updates: int = 0
    quarantined: int = 0
    degraded: bool = False
    decision_count: int = 0
    poisonings: int = 0


@dataclass
class ShardResult:
    """Everything one shard run produced."""

    stats: ShardStats
    deltas: List[TaggedDelta] = field(default_factory=list)
    canonical: Optional[Counter] = None
    windows: Optional[Dict[str, List[Tuple[int, tuple]]]] = None
    resilience_summary: Optional[Dict[str, object]] = None
    # Quarantined updates retained by this shard's dead-letter buffer
    # (``repro chaos --dump-dead-letters`` surfaces them merged).
    dead_letters: List[object] = field(default_factory=list)
    # Full worker observability state (a TelemetrySnapshot) when the
    # spec asked for it (collect_obs/profile); rides the same pickle
    # paths (pool.map and the Supervisor pipe) as everything above.
    telemetry: Optional[object] = None


def _relations_of(plan):
    """The relation-name -> Relation map behind any plan kind."""
    executor = getattr(plan, "executor", plan)
    return executor.relations


def _used_caches(plan) -> Tuple[str, ...]:
    """Candidate ids of caches currently probed, if the plan has any."""
    used = getattr(plan, "used_caches", None)
    if callable(used):
        return tuple(used())
    fixed = getattr(plan, "used", None)
    return tuple(fixed) if fixed else ()


def _memory_in_use(plan) -> int:
    memory = getattr(plan, "memory_in_use", None)
    current = int(memory()) if callable(memory) else 0
    # XJoin tracks a peak (its subresults grow with the windows); report
    # whichever is larger so memory-feasibility checks stay conservative.
    return max(current, int(getattr(plan, "peak_memory_bytes", 0)))


def _seed_reshard_windows(plan, seed, scheme, shard: int) -> None:
    """Load the predecessor run's window rows this shard now owns.

    Rows are inserted directly into the relation states (the
    RecoveryManager rebuild idiom) — no pipeline execution, no modeled
    cost: the prefix's join work already happened in the stopped run.
    Routing uses the *new* scheme, so a partitioned row lands on exactly
    the shard that will see its future deletes, and broadcast rows land
    everywhere — the same placement a fixed-shard run would have built.
    """
    from repro.streams.events import Update
    from repro.streams.tuples import Row

    relations = _relations_of(plan)
    for name, rows in seed.windows.items():
        relation = relations.get(name)
        if relation is None:
            continue
        for rid, values in rows:
            row = Row(rid, tuple(values))
            probe = Update(name, row, Sign.INSERT, 0)
            if shard in scheme.shards_for(probe):
                relation.insert(row)


def _poison_one_entry(plan) -> bool:
    """Chaos support: swap one cached row for a fake-rid impostor.

    Mirrors the serial chaos harness, but per shard: each shard poisons
    the deterministically-first entry of its own first wired cache so the
    coherence auditor has something to catch on every shard.
    """
    from repro.faults.chaos import POISON_RID
    from repro.streams.tuples import CompositeTuple, Row

    reoptimizer = getattr(plan, "reoptimizer", None)
    if reoptimizer is None:
        return False
    wiring = reoptimizer.wiring
    for candidate_id in sorted(wiring.wired):
        wired = wiring.wired[candidate_id]
        for _key, value in wired.cache.store.entries():
            for identity, composite in value.items():
                relation = wired.cache.segment[0]
                rows = {r: composite.row(r) for r in composite.relations()}
                rows[relation] = Row(POISON_RID, rows[relation].values)
                value[identity] = CompositeTuple(rows)
                return True
    return False


def run_shard(
    spec: ExperimentSpec,
    shard: int,
    shard_count: int,
    scheme: Optional[PartitionScheme] = None,
    recovery=None,
    progress: Optional[Callable[[int], None]] = None,
    kill_after: Optional[int] = None,
    coordination=None,
) -> ShardResult:
    """Execute shard ``shard`` of ``shard_count`` for one experiment.

    This is the module-level worker the process backend maps over; it is
    also what the in-process ``serial-shards`` backend calls directly, so
    the two backends run byte-identical computations.

    With ``spec.collect_obs`` (or ``spec.profile``) the whole shard runs
    under its own enabled :class:`~repro.obs.Observability` session —
    engines built here adopt it via the ExecContext default factory — and
    the worker's registry/tracer/decisions/profiler state comes back as a
    :class:`~repro.obs.merge.TelemetrySnapshot` on the result. The
    observability layer never touches the virtual clock, so telemetry
    collection cannot change outputs or modeled costs.

    With a :class:`~repro.recovery.manager.RecoveryConfig` in
    ``recovery`` the shard journals its routed sub-stream to a WAL and
    checkpoints at batch boundaries — and, before running, *restores*:
    whatever checkpoint + WAL suffix survives in the config's directory
    is loaded and replayed, and processing resumes past it. A fresh
    directory degenerates to a normal full run, so supervised restarts
    just call this function again with the same config.

    ``progress`` is invoked with the shard's processed-update count after
    every update (the supervisor throttles it into heartbeats).
    ``kill_after`` hard-kills the process (``os._exit``) once that count
    is reached — crash injection, only ever passed to worker processes.

    ``coordination`` (with ``spec.adaptivity`` set) joins the shard to
    the global adaptivity plane: an object with
    ``exchange(epoch, shard, snapshot) -> CachePlan`` — a
    :class:`~repro.parallel.adaptivity.ThreadChannel` or
    :class:`~repro.parallel.adaptivity.PipeChannel`. At every epoch
    boundary of the global stream the shard submits its profiler
    snapshot, blocks for the coordinator's merged cache plan, and
    applies it; local re-optimization cycles are disabled.
    """
    if not (spec.collect_obs or spec.profile):
        return _run_shard(
            spec, shard, shard_count, scheme, recovery, progress,
            kill_after, coordination,
        )
    from repro import obs as obs_api

    worker_obs = obs_api.Observability.tracing(profile=spec.profile)
    with obs_api.session(worker_obs):
        return _run_shard(
            spec, shard, shard_count, scheme, recovery, progress,
            kill_after, coordination,
        )


def _run_shard(
    spec: ExperimentSpec,
    shard: int,
    shard_count: int,
    scheme: Optional[PartitionScheme] = None,
    recovery=None,
    progress: Optional[Callable[[int], None]] = None,
    kill_after: Optional[int] = None,
    coordination=None,
) -> ShardResult:
    """The body of :func:`run_shard` (observability session pre-applied)."""
    workload = spec.workload_factory()
    if scheme is None:
        scheme = scheme_for_workload(workload, shard_count)

    restored = None
    recorder = None
    if recovery is not None:
        from repro.recovery.manager import Recorder, RecoveryManager

        manager = RecoveryManager(
            recovery, builder=lambda: spec.engine.build(workload)
        )
        restored = manager.restore()
        plan = restored.plan
    else:
        plan = spec.engine.build(workload)
    ctx = plan.ctx

    coordinate = coordination is not None and spec.adaptivity is not None
    sync_every = spec.adaptivity.sync_every_updates if coordinate else 0
    reoptimizer = getattr(plan, "reoptimizer", None)
    if reoptimizer is not None:
        # Always (re)set: a pickled checkpoint carries the attribute of
        # the run that wrote it, which need not match this run's mode.
        reoptimizer.coordinated = coordinate
    if coordinate:
        from repro.parallel.adaptivity import scale_bloom_windows

        scale_bloom_windows(plan, shard_count)

    def exchange_epoch(epoch: int) -> None:
        """Submit this shard's snapshot; apply the coordinator's plan."""
        from repro.parallel.adaptivity import snapshot_from_plan

        snapshot = snapshot_from_plan(plan, shard, epoch)
        pushed = coordination.exchange(epoch, shard, snapshot)
        if pushed is not None and reoptimizer is not None:
            reoptimizer.apply_plan(pushed)

    if spec.reshard is not None and (
        restored is None
        or (restored.checkpoint_seq < 0 and not restored.replayed)
    ):
        # A rescaled run starting fresh (not restored mid-phase): seed
        # the windows this shard owns under the *new* partitioning.
        _seed_reshard_windows(plan, spec.reshard, scheme, shard)

    updates = workload.updates(spec.arrivals)
    if spec.fault_spec is not None:
        updates = FaultPlan(spec.fault_spec, seed=spec.fault_seed).updates(
            updates
        )

    warmup_arrivals = int(spec.arrivals * spec.warmup_fraction)
    arrivals_seen = 0                  # counted over the *global* stream
    start_updates: Optional[int] = None
    start_time_us = 0.0
    deltas: List[TaggedDelta] = []
    canonical: Optional[Counter] = (
        Counter() if spec.output_mode == "canonical" else None
    )
    processed_here = 0
    poisonings = 0
    resume_seq = -1                    # skip source updates <= this
    checkpoint_seq = -1                # arrivals <= this already counted
    # Per-shard poisoning point: the serial harness poisons after N
    # processed updates; a shard sees roughly 1/n of them.
    poison_after = (
        max(1, spec.poison_at // shard_count)
        if spec.poison_at is not None
        else None
    )

    def record(update_seq: int, outputs) -> None:
        nonlocal processed_here
        processed_here += 1
        if spec.output_mode == "deltas":
            for index, delta in enumerate(outputs):
                deltas.append((update_seq, index, delta))
        elif canonical is not None:
            for delta in outputs:
                canonical[canonical_delta(delta)] += 1
        if progress is not None:
            progress(processed_here)
        if kill_after is not None and processed_here >= kill_after:
            # Crash injection: die the way a real fault would — no
            # flush, no atexit, losing every un-fsynced WAL byte.
            os._exit(KILL_EXIT_CODE)

    def maybe_poison() -> None:
        nonlocal poisonings
        if (
            poison_after is not None
            and poisonings == 0
            and processed_here >= poison_after
            and _poison_one_entry(plan)
        ):
            poisonings = 1

    def runner_state() -> dict:
        """Shard bookkeeping a checkpoint must carry so a restart's
        ShardResult is complete, not just post-restore."""
        return {
            "deltas": list(deltas),
            "canonical": dict(canonical) if canonical is not None else None,
            "processed_here": processed_here,
            "arrivals_seen": arrivals_seen,
            "poisonings": poisonings,
            "warmup_done": start_updates is not None,
            "start_updates": start_updates if start_updates else 0,
            "start_time_us": start_time_us,
        }

    if restored is not None:
        state = restored.runner_state or {}
        deltas = list(state.get("deltas", ()))
        if canonical is not None and state.get("canonical"):
            canonical.update(state["canonical"])
        processed_here = state.get("processed_here", 0)
        arrivals_seen = state.get("arrivals_seen", 0)
        poisonings = state.get("poisonings", 0)
        if state.get("warmup_done"):
            start_updates = state.get("start_updates", 0)
            start_time_us = state.get("start_time_us", 0.0)
        checkpoint_seq = restored.checkpoint_seq
        resume_seq = restored.last_seq
        # The WAL suffix was already replayed through the plan inside
        # restore(); fold its outputs into the shard's tally.
        for seq, outputs in restored.replayed:
            record(seq, outputs)
        maybe_poison()
        recorder = Recorder(plan, recovery)
        recorder.mark_processed(len(restored.replayed))

    # This shard's routed updates, grouped into consecutive micro-batches
    # (spec.batch_size; 1 = the unbatched per-update path).
    pending: List = []

    def flush_pending() -> None:
        if not pending:
            return
        batch = DeltaBatch(pending)
        last_seq = pending[-1].seq
        for update, outputs in zip(pending, plan.process_batch(batch)):
            record(update.seq, outputs)
        pending.clear()
        maybe_poison()
        if recorder is not None:
            recorder.mark_processed(len(batch))
            recorder.maybe_checkpoint(last_seq, runner_state())

    # Epoch barriers sit at fixed *positions* of the global stream
    # (``source_seen``); every worker iterates the identical stream, so
    # the barrier set is identical across shards with no communication.
    skip_through = (
        spec.reshard.skip_source_through if spec.reshard is not None else 0
    )
    source_seen = 0

    prof = ctx.obs.profiler
    if prof.enabled:
        prof.begin("run", ctx.clock.now_us)
    for update in updates:
        source_seen += 1
        if source_seen <= skip_through:
            # Reshard skip region: the seeded windows already reflect
            # this prefix. Every worker skips the same prefix, so no
            # epoch barriers are crossed inside it.
            if update.sign is Sign.INSERT:
                arrivals_seen += 1
            continue
        if update.seq <= resume_seq:
            # Restored region: replayed (or checkpoint-covered) already.
            # Arrivals at or before the checkpoint were counted in the
            # restored tally; the replay span's still need counting. No
            # ``continue``: the barrier check below must still run so a
            # restarted worker re-passes decided epochs (answered from
            # the coordinator's plan log without blocking anyone).
            if update.seq > checkpoint_seq and update.sign is Sign.INSERT:
                arrivals_seen += 1
        else:
            if start_updates is None and arrivals_seen >= warmup_arrivals:
                # Drain buffered pre-warmup updates so the measured span
                # starts at a batch boundary.
                flush_pending()
                start_updates = ctx.metrics.updates_processed
                start_time_us = ctx.clock.now_us
            if update.sign is Sign.INSERT:
                arrivals_seen += 1
            if shard in scheme.shards_for(update):
                if recorder is not None:
                    recorder.log(update)
                if spec.batch_size == 1:
                    record(update.seq, plan.process(update))
                    maybe_poison()
                    if recorder is not None:
                        recorder.mark_processed()
                        recorder.maybe_checkpoint(update.seq, runner_state())
                else:
                    pending.append(update)
                    if len(pending) >= spec.batch_size:
                        flush_pending()
        if sync_every and source_seen % sync_every == 0:
            flush_pending()
            exchange_epoch(source_seen // sync_every)
        if (
            spec.stop_after_updates is not None
            and source_seen >= spec.stop_after_updates
        ):
            break
    flush_pending()
    if prof.enabled:
        prof.end(ctx.clock.now_us)
    if recorder is not None:
        recorder.close()

    if start_updates is None:
        start_updates, start_time_us = 0, 0.0
    metrics = ctx.metrics
    resilience = getattr(plan, "resilience", None)
    stats = ShardStats(
        shard=shard,
        shard_count=shard_count,
        updates_processed=metrics.updates_processed,
        outputs_emitted=metrics.outputs_emitted,
        cache_probes=metrics.cache_probes,
        cache_hits=metrics.cache_hits,
        profiled_tuples=metrics.profiled_tuples,
        reoptimizations=metrics.reoptimizations,
        caches_added=metrics.caches_added,
        caches_dropped=metrics.caches_dropped,
        per_cache_hits=dict(metrics.per_cache_hits),
        clock_us=ctx.clock.now_us,
        measured_updates=metrics.updates_processed - start_updates,
        measured_span_us=ctx.clock.now_us - start_time_us,
        used_caches=_used_caches(plan),
        memory_bytes=_memory_in_use(plan),
        shed_updates=resilience.shed_total if resilience else 0,
        quarantined=resilience.quarantined if resilience else 0,
        degraded=bool(resilience and resilience.degraded),
        decision_count=len(ctx.obs.decisions),
        poisonings=poisonings,
    )
    windows = None
    if spec.collect_windows:
        windows = {
            name: sorted(
                ((row.rid, row.values) for row in relation.rows()),
                key=lambda pair: pair[0],
            )
            for name, relation in _relations_of(plan).items()
        }
    summary = resilience.summary() if resilience else None
    dead_letters = (
        list(resilience.guard.dead_letters.entries())
        if resilience is not None and resilience.guard is not None
        else []
    )
    telemetry = None
    if spec.collect_obs or spec.profile:
        from repro.obs.merge import collect_telemetry

        telemetry = collect_telemetry(
            ctx.obs, metrics=metrics, shard=shard
        )
    return ShardResult(
        stats=stats,
        deltas=deltas,
        canonical=canonical,
        windows=windows,
        resilience_summary=summary,
        dead_letters=dead_letters,
        telemetry=telemetry,
    )
