"""Merging per-shard statistics back into one global view.

The A-Caching machinery reasons about *global* quantities: benefit and
cost estimates per candidate cache, overall hit rate, memory in use,
throughput. When the engine is sharded each shard only observes its
partition, so the :class:`StatsMerger` re-aggregates: counters sum,
per-candidate hits sum (the merged benefit view the re-optimizer's
estimates correspond to), memory sums against the global budget, and
elapsed time splits into *total work* (the serial-equivalent cost, the
sum of shard clocks) and the *critical path* (the slowest shard — what a
machine with one core per shard would take).

Modeled parallel throughput is therefore ``updates / critical path``:
deterministic, hardware-independent, and exactly comparable with the
serial engine's virtual-clock throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ParallelError
from repro.parallel.shard import ShardStats


@dataclass
class MergedStats:
    """The global view reassembled from every shard's counters."""

    shard_count: int
    updates_processed: int               # shard-local work, incl. broadcast
    source_updates: int                  # distinct source updates covered
    outputs_emitted: int
    cache_probes: int
    cache_hits: int
    profiled_tuples: int
    reoptimizations: int
    caches_added: int
    caches_dropped: int
    per_cache_hits: Dict[str, int]
    total_work_us: float                 # sum of shard clocks
    critical_path_us: float              # max shard clock
    measured_updates: int
    measured_critical_us: float
    used_caches: Tuple[str, ...]         # union across shards
    used_caches_by_shard: Dict[int, Tuple[str, ...]]
    memory_bytes: int
    shed_updates: int
    quarantined: int
    degraded: bool
    decision_count: int
    poisonings: int
    per_shard_updates: List[int] = field(default_factory=list)
    per_shard_clock_us: List[float] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        """Global cache hit probability across every shard's probes."""
        if self.cache_probes == 0:
            return 0.0
        return self.cache_hits / self.cache_probes

    @property
    def modeled_throughput(self) -> float:
        """Source updates per second with one core per shard (critical
        path), on the virtual clock."""
        span = max(1e-12, self.critical_path_us / 1e6)
        return self.source_updates / span

    @property
    def steady_throughput(self) -> float:
        """Post-warmup modeled throughput (sum of shard measured work
        over the slowest shard's measured span)."""
        span = max(1e-12, self.measured_critical_us / 1e6)
        return self.measured_updates / span

    @property
    def serial_equivalent_throughput(self) -> float:
        """Throughput if all shard work ran on one core (total work)."""
        span = max(1e-12, self.total_work_us / 1e6)
        return self.source_updates / span

    @property
    def balance(self) -> float:
        """Load balance in (0, 1]: mean shard clock over max shard clock."""
        if not self.per_shard_clock_us or self.critical_path_us <= 0:
            return 1.0
        mean = sum(self.per_shard_clock_us) / len(self.per_shard_clock_us)
        return mean / self.critical_path_us

    def speedup_over_us(self, serial_elapsed_us: float) -> float:
        """Modeled speedup vs a serial run that took ``serial_elapsed_us``."""
        return serial_elapsed_us / max(1e-12, self.critical_path_us)


class StatsMerger:
    """Folds :class:`ShardStats` into one :class:`MergedStats`."""

    def merge(
        self,
        shard_stats: Sequence[ShardStats],
        source_updates: Optional[int] = None,
    ) -> MergedStats:
        """Aggregate one run's shard stats.

        ``source_updates`` is the number of distinct updates in the
        global stream — broadcast updates are processed by every shard
        but are still one logical update. Callers that drove the stream
        should pass it; when omitted, the largest shard's count stands in
        (a lower bound once anything is broadcast).
        """
        if not shard_stats:
            raise ParallelError("cannot merge zero shards")
        counts = sorted({s.shard_count for s in shard_stats})
        if len(counts) != 1 or counts[0] != len(shard_stats):
            raise ParallelError(
                f"inconsistent shard set: got {len(shard_stats)} results "
                f"for shard_count={counts}"
            )
        per_cache: Dict[str, int] = {}
        for stats in shard_stats:
            for cache, hits in stats.per_cache_hits.items():
                per_cache[cache] = per_cache.get(cache, 0) + hits
        used_union = sorted(
            {cid for s in shard_stats for cid in s.used_caches}
        )
        if source_updates is None:
            source_updates = max(s.updates_processed for s in shard_stats)
        return MergedStats(
            shard_count=len(shard_stats),
            updates_processed=sum(s.updates_processed for s in shard_stats),
            source_updates=source_updates,
            outputs_emitted=sum(s.outputs_emitted for s in shard_stats),
            cache_probes=sum(s.cache_probes for s in shard_stats),
            cache_hits=sum(s.cache_hits for s in shard_stats),
            profiled_tuples=sum(s.profiled_tuples for s in shard_stats),
            reoptimizations=sum(s.reoptimizations for s in shard_stats),
            caches_added=sum(s.caches_added for s in shard_stats),
            caches_dropped=sum(s.caches_dropped for s in shard_stats),
            per_cache_hits=per_cache,
            total_work_us=sum(s.clock_us for s in shard_stats),
            critical_path_us=max(s.clock_us for s in shard_stats),
            measured_updates=sum(s.measured_updates for s in shard_stats),
            measured_critical_us=max(
                s.measured_span_us for s in shard_stats
            ),
            used_caches=tuple(used_union),
            used_caches_by_shard={
                s.shard: tuple(s.used_caches) for s in shard_stats
            },
            memory_bytes=sum(s.memory_bytes for s in shard_stats),
            shed_updates=sum(s.shed_updates for s in shard_stats),
            quarantined=sum(s.quarantined for s in shard_stats),
            degraded=any(s.degraded for s in shard_stats),
            decision_count=sum(s.decision_count for s in shard_stats),
            poisonings=sum(s.poisonings for s in shard_stats),
            per_shard_updates=[
                s.updates_processed
                for s in sorted(shard_stats, key=lambda s: s.shard)
            ],
            per_shard_clock_us=[
                s.clock_us
                for s in sorted(shard_stats, key=lambda s: s.shard)
            ],
        )

    def merge_summaries(
        self, summaries: Sequence[Optional[Dict[str, object]]]
    ) -> Dict[str, object]:
        """Fold per-shard resilience summaries into one global summary.

        Scalar counters sum, nested per-reason/per-stream dicts sum
        key-wise, and boolean flags OR — global degradation means *any*
        shard is degraded.
        """
        merged: Dict[str, object] = {}
        for summary in summaries:
            if not summary:
                continue
            for key, value in summary.items():
                if isinstance(value, bool):
                    merged[key] = bool(merged.get(key, False)) or value
                elif isinstance(value, (int, float)):
                    merged[key] = merged.get(key, 0) + value
                elif isinstance(value, dict):
                    bucket = dict(merged.get(key, {}))
                    for inner, count in value.items():
                        bucket[inner] = bucket.get(inner, 0) + count
                    merged[key] = bucket
                else:
                    merged.setdefault(key, value)
        return merged
