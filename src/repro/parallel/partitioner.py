"""Hash partitioning of update streams across shards.

A multiway equijoin can be split into independent shards when every
output composite is fully determined by one *attribute equivalence
class*: the transitive closure of the query's equijoin predicates groups
attributes into classes whose members are all equal within any result
tuple. Partitioning every relation that owns an attribute of one chosen
class by a stable hash of that attribute's value co-locates all the rows
of any potential result on a single shard, so the union of the shards'
outputs is exactly the serial output, each result emitted exactly once.

Relations with no attribute in the chosen class cannot be shard-aligned
and are **broadcast**: every shard keeps a full copy of their window and
processes all of their updates. Their join results still surface exactly
once, because each result also contains partitioned rows that live on
only one shard.

The class is chosen to minimize the declared arrival-rate mass of the
broadcast relations (ties broken lexicographically), so e.g. the
three-way chain ``R ⋈A S ⋈B T`` with T five times hotter than R
partitions on the ``{S.B, T.B}`` class and broadcasts only R.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ParallelError
from repro.relations.predicates import AttrRef, JoinGraph
from repro.streams.events import Update


def stable_hash(value: object) -> int:
    """A hash that is identical across processes and interpreter runs.

    ``hash(str)`` is salted per process (PYTHONHASHSEED), which would
    route the same tuple to different shards in different workers; ints
    hash to themselves and everything else goes through CRC32 of its
    repr. Only used for shard routing, so quality just needs to be
    "spreads integer domains evenly".
    """
    if type(value) is int:
        return value
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    return zlib.crc32(repr(value).encode("utf-8"))


@dataclass(frozen=True)
class PartitionScheme:
    """How one query's streams map onto ``shard_count`` shards."""

    shard_count: int
    class_attrs: Tuple[AttrRef, ...]          # the chosen equivalence class
    positions: Mapping[str, int]              # relation -> partition column
    broadcast: Tuple[str, ...]                # relations copied to all shards

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ParallelError(
                f"shard count must be >= 1, got {self.shard_count}"
            )

    @property
    def partitioned(self) -> Tuple[str, ...]:
        """Relations that are hash-partitioned (not broadcast)."""
        return tuple(sorted(self.positions))

    def shard_of_value(self, value: object) -> int:
        """The shard owning one partition-attribute value."""
        return stable_hash(value) % self.shard_count

    def shards_for(self, update: Update) -> Tuple[int, ...]:
        """The shards that must process ``update``.

        Broadcast relations go everywhere. A partition-attribute value
        that cannot be hashed (e.g. an injected corrupt sentinel) also
        falls back to broadcast, so every shard's ingress guard sees it
        exactly as the serial engine would.
        """
        if self.shard_count == 1:
            return (0,)
        position = self.positions.get(update.relation)
        if position is None:
            return tuple(range(self.shard_count))
        try:
            return (self.shard_of_value(update.row.values[position]),)
        except TypeError:
            return tuple(range(self.shard_count))

    def describe(self) -> Dict[str, object]:
        """A JSON-friendly summary for bench reports and docs."""
        return {
            "shards": self.shard_count,
            "class": [f"{a.relation}.{a.attribute}" for a in self.class_attrs],
            "partitioned": list(self.partitioned),
            "broadcast": list(self.broadcast),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        attrs = ",".join(f"{a.relation}.{a.attribute}" for a in self.class_attrs)
        return (
            f"PartitionScheme({self.shard_count} shards on [{attrs}]; "
            f"broadcast {list(self.broadcast)})"
        )


def attribute_classes(graph: JoinGraph) -> List[Tuple[AttrRef, ...]]:
    """The equivalence classes of join attributes under the predicates.

    Uses the graph's transitive closure, so ``R1.A = R2.A = R3.A`` is a
    single three-member class even if only adjacent equalities were
    written.
    """
    parent: Dict[AttrRef, AttrRef] = {}

    def find(ref: AttrRef) -> AttrRef:
        parent.setdefault(ref, ref)
        while parent[ref] != ref:
            parent[ref] = parent[parent[ref]]
            ref = parent[ref]
        return ref

    for pred in graph.predicates:
        left, right = find(pred.left), find(pred.right)
        if left != right:
            parent[left] = right
    classes: Dict[AttrRef, List[AttrRef]] = {}
    for ref in parent:
        classes.setdefault(find(ref), []).append(ref)
    return sorted(tuple(sorted(c)) for c in classes.values())


def choose_scheme(
    graph: JoinGraph,
    shard_count: int,
    rates: Optional[Mapping[str, float]] = None,
) -> PartitionScheme:
    """Pick the partitioning class that minimizes broadcast traffic.

    ``rates`` weighs each relation by its declared arrival rate (how many
    updates a shard would re-process if the relation were broadcast);
    without rates every relation weighs 1. Ties break on the
    lexicographically smallest class so the choice is deterministic.
    """
    if shard_count < 1:
        raise ParallelError(f"shard count must be >= 1, got {shard_count}")
    classes = attribute_classes(graph)
    if not classes:
        raise ParallelError(
            "cannot partition a join with no equijoin predicates"
        )

    def weight(relation: str) -> float:
        if rates is None:
            return 1.0
        return float(rates.get(relation, 1.0))

    best: Optional[Tuple[float, Tuple[AttrRef, ...]]] = None
    for cls in classes:
        covered = {ref.relation for ref in cls}
        broadcast_cost = sum(
            weight(name) for name in graph.relations if name not in covered
        )
        key = (broadcast_cost, cls)
        if best is None or key < best:
            best = key
    _, chosen = best
    positions: Dict[str, int] = {}
    for ref in chosen:
        # A relation could own several attributes of the class (e.g. a
        # self-equality materialized by closure); the first sorted member
        # wins, and any member is correct since they are equal per-row
        # only across relations — within a relation we just need one
        # deterministic column.
        positions.setdefault(ref.relation, graph.attr_position(ref))
    broadcast = tuple(
        sorted(name for name in graph.relations if name not in positions)
    )
    return PartitionScheme(
        shard_count=shard_count,
        class_attrs=chosen,
        positions=positions,
        broadcast=broadcast,
    )


def scheme_for_workload(workload, shard_count: int) -> PartitionScheme:
    """Rate-aware scheme for a synthetic workload."""
    return choose_scheme(workload.graph, shard_count, rates=workload.rates)
