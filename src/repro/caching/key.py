"""Cache keys ``Kijk``.

Section 3.2: the cache key of ``Cijk`` is the set of join attributes
between the relations of the pipeline *prefix* (those joined before the
cached segment, including the pipeline's own update relation) and the
relations of the cached *segment*.

We canonicalize the key as the ordered tuple of crossing predicates. Probe
values are extracted from the prefix side of each predicate, entry keys
from the segment side; because the predicates are equijoins, a probe value
equals the entry key of exactly the segment tuples that join with the
probing composite, so a hit needs no residual predicate checks.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import PlanError
from repro.relations.predicates import EquiPredicate, JoinGraph
from repro.streams.tuples import CompositeTuple


class CacheKey:
    """The resolved key of one cache: paired (prefix, segment) attr slots."""

    __slots__ = ("predicates", "_prefix_slots", "_segment_slots")

    def __init__(
        self,
        graph: JoinGraph,
        prefix_relations: Tuple[str, ...],
        segment_relations: Tuple[str, ...],
    ):
        crossing = graph.crossing_predicates(prefix_relations, segment_relations)
        if not crossing:
            raise PlanError(
                "cache key would be empty: no predicates connect prefix "
                f"{prefix_relations} to segment {segment_relations}"
            )
        prefix_set = set(prefix_relations)
        resolved = []
        for pred in crossing:
            if pred.left.relation in prefix_set:
                prefix_ref, segment_ref = pred.left, pred.right
            else:
                prefix_ref, segment_ref = pred.right, pred.left
            resolved.append(
                (
                    (segment_ref.relation, graph.attr_position(segment_ref)),
                    (prefix_ref.relation, graph.attr_position(prefix_ref)),
                    pred,
                )
            )
        # Canonical component order: sorted by segment-side slot, so two
        # shared caches (Definition 4.1) in different pipelines build
        # identical entry keys and can back one physical store. Duplicate
        # segment slots are dropped: the transitive closure can equate one
        # segment attribute to several prefix attributes, but those prefix
        # attributes are already equal in any composite that reaches the
        # lookup (every closure predicate is enforced upstream), so one
        # component carries the full constraint.
        resolved.sort(key=lambda item: item[0])
        deduped = []
        seen_slots = set()
        for item in resolved:
            if item[0] in seen_slots:
                continue
            seen_slots.add(item[0])
            deduped.append(item)
        self._segment_slots = tuple(item[0] for item in deduped)
        self._prefix_slots = tuple(item[1] for item in deduped)
        self.predicates: Tuple[EquiPredicate, ...] = tuple(
            item[2] for item in deduped
        )

    def probe_value(self, composite: CompositeTuple) -> tuple:
        """Key extracted from a prefix-side composite (a probing tuple)."""
        return tuple(
            composite.value(rel, pos) for rel, pos in self._prefix_slots
        )

    def entry_key(self, composite: CompositeTuple) -> tuple:
        """Key extracted from a segment-side composite (a cached value)."""
        return tuple(
            composite.value(rel, pos) for rel, pos in self._segment_slots
        )

    @property
    def prefix_slots(self) -> Tuple[Tuple[str, int], ...]:
        """(relation, position) of each key component on the prefix side."""
        return self._prefix_slots

    @property
    def width(self) -> int:
        """Number of key components (constant per cache, Section 3.3)."""
        return len(self.predicates)

    def signature(self) -> tuple:
        """A hashable identity used to detect shared caches (Def. 4.1).

        Two caches share iff they cache the same relation set with the same
        key; the key part of that identity is the *segment-side* slots,
        which are pipeline-independent.
        """
        return self._segment_slots  # already canonically sorted

    def __repr__(self) -> str:
        parts = ", ".join(repr(p) for p in self.predicates)
        return f"CacheKey({parts})"


def segment_predicate_signature(
    graph: JoinGraph, segment: Tuple[str, ...]
) -> tuple:
    """Canonical identity of the join predicates *inside* a segment.

    Two caches over the same relation set with the same key signature can
    still disagree on their cached contents if the predicates linking the
    segment's members differ — the segment join itself differs. Cross-query
    sharing therefore matches on this signature in addition to the key:
    every predicate with both endpoints in the segment, each endpoint
    canonicalized to its (relation, attribute position) slot and the pair
    ordered, the whole set sorted.
    """
    members = set(segment)
    signature = []
    for pred in graph.predicates:
        if pred.left.relation in members and pred.right.relation in members:
            left = (pred.left.relation, graph.attr_position(pred.left))
            right = (pred.right.relation, graph.attr_position(pred.right))
            signature.append((min(left, right), max(left, right)))
    return tuple(sorted(set(signature)))
