"""Bloom filter used for online miss-probability estimation.

Appendix A: when a candidate cache ``Cijk`` is not in use, a CacheLookup
operator in profile mode hashes the key of every tuple reaching ``./ij``
into a Bloom filter of ``α·Wd`` bits over non-overlapping windows of ``Wd``
tuples. If ``b`` bits are set at the end of a window, the estimate of
``miss_prob`` is ``b / Wd`` — intuitively, ``b`` distinct keys appeared,
and each distinct key misses exactly once before being cached.
"""

from __future__ import annotations

import math
from typing import Optional


class BloomFilter:
    """A bit-set Bloom filter over hashable keys."""

    __slots__ = ("bits", "hashes", "_words", "_set_bits", "inserted")

    def __init__(self, bits: int, hashes: int = 2):
        if bits < 1:
            raise ValueError("bloom filter needs at least one bit")
        if hashes < 1:
            raise ValueError("bloom filter needs at least one hash")
        self.bits = bits
        self.hashes = hashes
        self._words = bytearray((bits + 7) // 8)
        self._set_bits = 0
        self.inserted = 0

    def _positions(self, key) -> range:
        base = hash(key)
        # Double hashing: position_i = h1 + i*h2 (standard Kirsch-Mitzenmacher).
        h1 = base & 0xFFFFFFFF
        h2 = (base >> 32) | 1
        return [(h1 + i * h2) % self.bits for i in range(self.hashes)]

    def add(self, key) -> None:
        """Set this key's bit positions (duplicates are absorbed)."""
        self.inserted += 1
        for pos in self._positions(key):
            byte, bit = divmod(pos, 8)
            mask = 1 << bit
            if not self._words[byte] & mask:
                self._words[byte] |= mask
                self._set_bits += 1

    def __contains__(self, key) -> bool:
        for pos in self._positions(key):
            byte, bit = divmod(pos, 8)
            if not self._words[byte] & (1 << bit):
                return False
        return True

    @property
    def set_bits(self) -> int:
        """Number of bits currently set (the paper's ``b``)."""
        return self._set_bits

    def distinct_estimate(self) -> float:
        """Standard occupancy-based distinct-count estimate.

        ``n ≈ -(m/k) · ln(1 - b/m)`` for ``m`` bits, ``k`` hashes, ``b``
        set bits. Falls back to ``inserted`` when the filter saturates.
        """
        if self._set_bits >= self.bits:
            return float(self.inserted)
        fill = self._set_bits / self.bits
        return -(self.bits / self.hashes) * math.log(1.0 - fill)

    def reset(self) -> None:
        """Clear the filter for the next non-overlapping window."""
        self._words = bytearray(len(self._words))
        self._set_bits = 0
        self.inserted = 0


class MissProbEstimator:
    """Windowed miss-probability estimation per Appendix A.

    Feeds probe keys into a Bloom filter over non-overlapping windows of
    ``window_tuples`` keys; at each window boundary emits one observation
    ``distinct/window`` and resets. With ``paper_mode=True`` (default) the
    distinct count is the raw set-bit count ``b`` as in the paper; the
    occupancy-corrected estimate is available with ``paper_mode=False``.
    """

    def __init__(
        self,
        window_tuples: int = 64,
        alpha: float = 4.0,
        paper_mode: bool = True,
        hashes: int = 2,
        sign_aware: bool = True,
    ):
        self.sign_aware = sign_aware
        if window_tuples < 1:
            raise ValueError("window must contain at least one tuple")
        if alpha < 1.0:
            raise ValueError("alpha must be >= 1 (bits per window tuple)")
        self.window_tuples = window_tuples
        self.paper_mode = paper_mode
        # Duty cycling: once the consumer has enough observations it may
        # pause the estimator; a paused BloomLookup skips hashing entirely
        # until the next re-optimization cycle reactivates it.
        self.paused = False
        self._filter = BloomFilter(
            bits=max(8, int(alpha * window_tuples)), hashes=hashes
        )
        self._seen_in_window = 0
        self._last_observation: Optional[float] = None

    def observe(self, key, is_insert: bool = True) -> Optional[float]:
        """Feed one probe key; returns an observation at window boundaries.

        Sign-aware refinement of the Appendix A scheme for windowed
        inputs: a *deletion* re-probes the key its tuple was inserted
        with — an almost-sure hit (the entry was created at insert time) —
        so only insertion keys feed the distinct count, while deletions
        still advance the window. ``distinct / window`` then estimates the
        miss probability of the full probe stream instead of wildly
        overestimating it whenever the window span exceeds ``Wd``.

        With ``sign_aware=False`` (used for globally-consistent
        candidates, whose delete probes *consume* entries) every key feeds
        the filter, which is the paper's original estimator.
        """
        if is_insert or not self.sign_aware:
            self._filter.add(key)
        self._seen_in_window += 1
        if self._seen_in_window < self.window_tuples:
            return None
        if self.paper_mode:
            distinct = float(self._filter.set_bits) / self._filter.hashes
        else:
            distinct = self._filter.distinct_estimate()
        observation = min(1.0, distinct / self.window_tuples)
        self._filter.reset()
        self._seen_in_window = 0
        self._last_observation = observation
        return observation

    @property
    def last_observation(self) -> Optional[float]:
        """The most recently completed window's estimate, if any."""
        return self._last_observation
