"""Join-subresult caches ``Cijk`` (Sections 3.2-3.3).

A cache lives in one pipeline (its *owner*), covers a contiguous segment of
join operators, and maps a key ``u`` (projection on ``Kijk``) to the set of
segment-join composites ``σ_{Kijk=u}(Rij ⋈ … ⋈ Rik)``.

The consistency invariant (Definition 3.1) is equality with the true
segment join for every *present* key; completeness across keys is never
guaranteed, so entries may be dropped at any time (direct-mapped
replacement, memory reclamation, plan switches) without affecting
correctness.

Value composites are stored keyed by their rid identity, so a maintenance
delete removes exactly the right derivation: for prefix-invariant caches a
derivation *is* a full segment composite and appears exactly once, which is
why no multiplicity counting is needed here (contrast with
:mod:`repro.caching.global_cache`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.caching.key import CacheKey
from repro.caching.store import (
    DirectMappedStore,
    ENTRY_OVERHEAD_BYTES,
    KEY_COMPONENT_BYTES,
    REFERENCE_BYTES,
)
from repro.streams.tuples import CompositeTuple

DEFAULT_BUCKETS = 256


class Cache:
    """One cache: key, direct-mapped store, and consistency operations."""

    # Exact-consistency stores (Definition 3.1) may back lookups from other
    # queries whose segment join is provably identical — the inter-query
    # extension of Definition 4.1. GlobalCache overrides this to False.
    inter_query_shareable = True

    def __init__(
        self,
        name: str,
        owner_pipeline: str,
        segment: Tuple[str, ...],
        key: CacheKey,
        buckets: int = DEFAULT_BUCKETS,
        store=None,
    ):
        self.name = name
        self.owner_pipeline = owner_pipeline
        self.segment = tuple(segment)
        self._canonical_order = tuple(sorted(self.segment))
        self.key = key
        self.store = store if store is not None else DirectMappedStore(buckets)
        self.probes = 0
        self.hits = 0
        # Lifetime totals: unlike probes/hits these survive the periodic
        # reset_counters() of a profiler harvest, so exporters see the
        # whole run's activity.
        self.total_probes = 0
        self.total_hits = 0
        self._memory_bytes = 0
        self._entry_base = (
            ENTRY_OVERHEAD_BYTES + key.width * KEY_COMPONENT_BYTES
        )
        self._composite_bytes = REFERENCE_BYTES * len(self.segment)

    # ------------------------------------------------------------------
    # probe path (CacheLookup)
    # ------------------------------------------------------------------
    def probe(
        self, composite: CompositeTuple, key: Optional[CacheKey] = None
    ) -> Tuple[tuple, Optional[List[CompositeTuple]]]:
        """Probe with a prefix-side composite.

        Returns ``(key, values)`` where values is the list of cached
        segment composites on a hit or None on a miss (an empty list is a
        *hit* on a key known to join nothing). The key is returned so the
        pipeline can group misses and call :meth:`create` once per key.

        ``key`` overrides the cache's own key extractor: a shared cache
        (Definition 4.1) is probed from several pipelines whose prefix
        slots differ even though entry keys coincide.
        """
        self.probes += 1
        self.total_probes += 1
        probe_key = (key or self.key).probe_value(composite)
        value = self.store.get(probe_key)
        if value is None:
            return probe_key, None
        self.hits += 1
        self.total_hits += 1
        return probe_key, list(value.values())

    def create(self, probe_key: tuple, composites: List[CompositeTuple]) -> int:
        """Add an entry computed on a miss (the ``create(u, v)`` of §3.2).

        Returns the net change in stored composite count (for cost
        accounting); handles direct-mapped eviction bookkeeping.
        """
        value: Dict[tuple, CompositeTuple] = {
            c.identity(self._canonical_order): c for c in composites
        }
        evicted = self.store.put(probe_key, value)
        self._memory_bytes += self._entry_base + len(value) * self._composite_bytes
        if evicted is not None:
            self._memory_bytes -= (
                self._entry_base + len(evicted[1]) * self._composite_bytes
            )
        return len(value)

    # ------------------------------------------------------------------
    # maintenance path (CacheUpdate operators in segment pipelines)
    # ------------------------------------------------------------------
    def maintain_insert(self, composite: CompositeTuple) -> bool:
        """Apply ``insert(u, r)``: ignored unless key ``u`` is present."""
        seg = self._segment_part(composite)
        value = self.store.get(self.key.entry_key(seg))
        if value is None:
            return False
        identity = seg.identity(self._canonical_order)
        if identity not in value:
            value[identity] = seg
            self._memory_bytes += self._composite_bytes
        return True

    def maintain_delete(self, composite: CompositeTuple) -> bool:
        """Apply ``delete(u, r)``: ignored unless key ``u`` is present."""
        seg = self._segment_part(composite)
        value = self.store.get(self.key.entry_key(seg))
        if value is None:
            return False
        if value.pop(seg.identity(self._canonical_order), None) is not None:
            self._memory_bytes -= self._composite_bytes
        return True

    def invalidate(self, probe_key: tuple) -> bool:
        """Drop one entry wholesale (always consistent); True if present."""
        value = self.store.get(probe_key)
        if value is None:
            return False
        self.store.remove(probe_key)
        self._memory_bytes -= (
            self._entry_base + len(value) * self._composite_bytes
        )
        return True

    def _segment_part(self, composite: CompositeTuple) -> CompositeTuple:
        if composite.relations() == frozenset(self.segment):
            return composite
        return composite.project(self.segment)

    def maintenance_key(self, composite: CompositeTuple) -> tuple:
        """The entry key a maintenance delta for ``composite`` targets.

        Used by micro-batched maintenance taps to group same-key deltas
        behind a single hash + bucket check charge.
        """
        return self.key.entry_key(self._segment_part(composite))

    # ------------------------------------------------------------------
    # lifecycle / accounting
    # ------------------------------------------------------------------
    def drop_all(self) -> None:
        """Empty the cache (plan switch / memory reclamation); always safe."""
        self.store.clear()
        self._memory_bytes = 0

    @property
    def memory_bytes(self) -> int:
        """Reference-based footprint of all entries (Section 3.3)."""
        return max(0, self._memory_bytes)

    @property
    def entry_count(self) -> int:
        """Number of keys currently cached."""
        return len(self.store)

    @property
    def observed_miss_prob(self) -> float:
        """Directly observed miss probability (Appendix A, in-use case)."""
        if self.probes == 0:
            return 1.0
        return 1.0 - self.hits / self.probes

    def reset_counters(self) -> None:
        """Zero the windowed probe/hit counters (after a profiler
        harvest); the lifetime totals keep accumulating."""
        self.probes = 0
        self.hits = 0

    def stats_snapshot(self) -> Dict[str, object]:
        """Point-in-time stats for exporters and the metrics registry."""
        return {
            "name": self.name,
            "owner_pipeline": self.owner_pipeline,
            "segment": list(self.segment),
            "entries": self.entry_count,
            "memory_bytes": self.memory_bytes,
            "probes": self.total_probes,
            "hits": self.total_hits,
            "hit_rate": (
                self.total_hits / self.total_probes
                if self.total_probes else 0.0
            ),
        }

    def __repr__(self) -> str:
        seg = "⋈".join(self.segment)
        return (
            f"Cache[{self.name}: {seg} in ∆{self.owner_pipeline}, "
            f"entries={self.entry_count}]"
        )
