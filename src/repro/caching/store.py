"""Direct-mapped hash store backing each cache.

Section 3.3: each cache is a hash table probed on the cache key, with a
*direct-mapped* replacement scheme — if a new key hashes to a bucket that
already holds a different key, the existing entry is simply replaced. This
keeps run-time overhead low and never violates consistency (dropping an
entry is always safe because caches make no completeness guarantee).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

# Memory accounting constants (bytes). Cached values are sets of references
# to window tuples (Section 3.3), so an entry costs its bucket slot plus one
# reference per relation per cached composite.
ENTRY_OVERHEAD_BYTES = 24
REFERENCE_BYTES = 8
KEY_COMPONENT_BYTES = 8


class DirectMappedStore:
    """A fixed-bucket-count, one-entry-per-bucket associative store."""

    __slots__ = ("buckets", "_table", "replacements")

    def __init__(self, buckets: int):
        if buckets < 1:
            raise ValueError("store needs at least one bucket")
        self.buckets = buckets
        self._table: Dict[int, Tuple[tuple, Any]] = {}
        self.replacements = 0  # collisions that evicted an entry

    def _slot(self, key: tuple) -> int:
        return hash(key) % self.buckets

    def get(self, key: tuple) -> Optional[Any]:
        """Return the value stored under ``key`` or None."""
        entry = self._table.get(self._slot(key))
        if entry is None or entry[0] != key:
            return None
        return entry[1]

    def put(self, key: tuple, value: Any) -> Optional[Tuple[tuple, Any]]:
        """Store ``(key, value)``; return the displaced entry, if any.

        The displaced entry is returned both for a direct-mapped collision
        (different key, counted in ``replacements``) and for a same-key
        overwrite, so callers can keep memory accounting exact.
        """
        slot = self._slot(key)
        evicted = self._table.get(slot)
        if evicted is not None and evicted[0] != key:
            self.replacements += 1
        self._table[slot] = (key, value)
        return evicted

    def remove(self, key: tuple) -> bool:
        """Drop the entry for ``key``; True if something was removed."""
        slot = self._slot(key)
        entry = self._table.get(slot)
        if entry is None or entry[0] != key:
            return False
        del self._table[slot]
        return True

    def clear(self) -> None:
        """Drop every entry."""
        self._table.clear()

    def entries(self) -> Iterator[Tuple[tuple, Any]]:
        """Iterate over the live (key, value) pairs."""
        return iter(self._table.values())

    @property
    def occupancy(self) -> float:
        """Live-entry fraction of the bucket table (0.0–1.0).

        Cross-query shared stores concentrate several probe streams on one
        table; the multi-query bench reports this to show sharing does not
        thrash the direct-mapped replacement.
        """
        return len(self._table) / self.buckets

    def __len__(self) -> int:
        return len(self._table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DirectMappedStore({len(self)}/{self.buckets})"


class LRUStore:
    """An LRU-evicting alternative used only by the replacement ablation.

    The paper (Section 3.3) deliberately picks direct-mapped replacement
    for its low constant cost and notes other schemes as future work; this
    store bounds the *entry count* and evicts the least recently probed
    entry on overflow, giving the ablation benchmark its comparison point.
    """

    __slots__ = ("capacity", "_table")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("store needs capacity >= 1")
        self.capacity = capacity
        self._table: Dict[tuple, Any] = {}

    def get(self, key: tuple) -> Optional[Any]:
        """Return the value stored under ``key`` or None."""
        value = self._table.get(key)
        if value is not None:
            # Refresh recency.
            del self._table[key]
            self._table[key] = value
        return value

    def put(self, key: tuple, value: Any) -> Optional[Tuple[tuple, Any]]:
        """Store ``(key, value)``; return the displaced entry, if any."""
        if key in self._table:
            evicted = (key, self._table.pop(key))
        elif len(self._table) >= self.capacity:
            oldest_key = next(iter(self._table))
            evicted = (oldest_key, self._table.pop(oldest_key))
        else:
            evicted = None
        self._table[key] = value
        return evicted

    def remove(self, key: tuple) -> bool:
        """Drop the entry for ``key``; True if something was removed."""
        return self._table.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry."""
        self._table.clear()

    def entries(self) -> Iterator[Tuple[tuple, Any]]:
        """Iterate over the live (key, value) pairs."""
        return iter(self._table.items())

    @property
    def occupancy(self) -> float:
        """Live-entry fraction of the capacity (0.0–1.0)."""
        return len(self._table) / self.capacity

    def __len__(self) -> int:
        return len(self._table)
