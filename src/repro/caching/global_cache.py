"""Globally-consistent caches ``X ⋉ Y`` (Section 6).

A globally-consistent cache stores composites of the relation set ``X``
(a contiguous pipeline segment that does *not* satisfy the prefix
invariant) and is maintained through the pipelines of ``X ∪ Y``, the
smallest enclosing set that does. Its entries obey the relaxed invariant
of Definition 6.1: a present key's value set lies between the
``Y``-semijoin-filtered segment join and the full segment join.

**Maintenance scheme.** Maintenance deltas arrive as full ``X ∪ Y``
composites; projecting them onto ``X`` loses derivation multiplicity, so
per-composite delete counting is unsound without witness counts, and
witness *counts* are themselves unsound when the anchor contains the
cache's own probing relation (a count that drops to zero evicts a
composite that a future probing tuple still needs — and that probe runs
before its own maintenance, so the loss is unrecoverable). We therefore
use a counting-free scheme that is sound for every anchor position:

* **segment (X) insert/delete** — add/remove the projected composite;
  a derivation *is* the composite here, so set semantics are exact;
* **anchor (Y) insert** — set-insert the projected composite; this also
  repairs composites that were skipped earlier for lack of a witness;
* **anchor (Y) delete** — drop the *whole entry*; the next probe misses
  and recomputes, which is always consistent.

Soundness sketch (full argument in DESIGN.md): an entry is created
complete by a probing miss, and while it exists every prefix-side witness
(owner or upstream anchors) for its key is guaranteed live — the probing
tuple that created it is inserted right after creation, and any delete of
such a witness invalidates the entry. Hence composites absent from a live
entry lack only *downstream* anchor witnesses, and those composites
produce no outputs downstream anyway, so a hit never loses results.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.caching.cache import Cache
from repro.caching.key import CacheKey
from repro.streams.tuples import CompositeTuple


class GlobalCache(Cache):
    """A cache of ``X`` maintained through ``X ∪ Y`` pipelines."""

    # A globally-consistent store holds a semijoin-filtered *subset* of the
    # segment join (Definition 6.1), filtered by this query's own anchor
    # windows and repaired through this query's pipelines — it can never
    # back another query's exact-consistency (or differently-anchored)
    # lookups, so inter-query shared-cache groups exclude it.
    inter_query_shareable = False

    def __init__(
        self,
        name: str,
        owner_pipeline: str,
        segment: Tuple[str, ...],
        key: CacheKey,
        anchor: Tuple[str, ...],
        buckets: int = 256,
        store=None,
    ):
        super().__init__(name, owner_pipeline, segment, key, buckets, store)
        self.anchor = tuple(anchor)
        if set(self.anchor) & set(self.segment):
            raise ValueError("anchor relations must be disjoint from segment")
        self.invalidations = 0  # entries dropped by anchor deletes

    @property
    def maintenance_relations(self) -> Tuple[str, ...]:
        """Relations whose pipelines carry maintenance for this cache."""
        return tuple(self.segment) + tuple(self.anchor)

    # ------------------------------------------------------------------
    # maintenance path (CacheUpdate taps pass the updated relation)
    # ------------------------------------------------------------------
    def maintain_insert(
        self, composite: CompositeTuple, updated_relation: str = ""
    ) -> bool:
        # Inserts behave identically for segment and anchor updates: make
        # sure the projected composite is present (idempotent set-add).
        """Set-insert the projected composite (segment or anchor insert)."""
        seg = composite.project(self.segment)
        value = self.store.get(self.key.entry_key(seg))
        if value is None:
            return False
        identity = seg.identity(self._canonical_order)
        if identity not in value:
            value[identity] = seg
            self._memory_bytes += self._composite_bytes
        return True

    def maintain_delete(
        self, composite: CompositeTuple, updated_relation: str = ""
    ) -> bool:
        """Segment delete removes the composite; anchor delete invalidates the entry."""
        seg = composite.project(self.segment)
        entry_key = self.key.entry_key(seg)
        value = self.store.get(entry_key)
        if value is None:
            return False
        if updated_relation in self.anchor:
            # Anchor delete: the affected composites may retain other
            # witnesses we do not count, so invalidate the entry wholesale.
            self.invalidate(entry_key)
            self.invalidations += 1
            return True
        if value.pop(seg.identity(self._canonical_order), None) is not None:
            self._memory_bytes -= self._composite_bytes
        return True

    def __repr__(self) -> str:
        seg = "⋈".join(self.segment)
        anchor = "⋈".join(self.anchor) if self.anchor else "∅"
        return (
            f"GlobalCache[{self.name}: ({seg})⋉({anchor}) in "
            f"∆{self.owner_pipeline}, entries={self.entry_count}]"
        )
