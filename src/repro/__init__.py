"""A-Caching: adaptive caching for continuous multiway stream joins.

A from-scratch reproduction of Babu, Munagala, Widom, and Motwani,
*Adaptive Caching for Continuous Queries* (ICDE 2005): the full spectrum
of stream-join plans between subresult-free MJoins and subresult-rich
XJoins, navigated adaptively by placing and removing join-subresult
caches as stream and system conditions change.

Quickstart — build engines through the :mod:`repro.api` facade::

    from repro import EngineConfig, Session, three_way_chain

    workload = three_way_chain()
    session = Session.adaptive(workload, EngineConfig(batch_size=64))
    deltas = session.run(arrivals=20_000)    # micro-batched execution
    print(session.throughput(), session.used_caches())

or drive a custom query update-by-update::

    from repro import ACaching, JoinGraph, Schema

    graph = JoinGraph.parse(
        [Schema("R", ("A",)), Schema("S", ("A", "B")), Schema("T", ("B",))],
        ["R.A = S.A", "S.B = T.B"],
    )
    engine = ACaching(graph)
    for update in my_update_stream:          # Update(relation, row, sign, seq)
        for delta in engine.process(update):
            handle(delta)

See DESIGN.md for the system inventory, docs/api.md for the facade, and
EXPERIMENTS.md for the paper-versus-measured record of every figure and
table.
"""

from repro.api import (
    EngineConfig,
    Session,
    build_adaptive_engine,
    build_static_plan,
)
from repro.caching.bloom import BloomFilter, MissProbEstimator
from repro.caching.cache import Cache
from repro.caching.global_cache import GlobalCache
from repro.caching.key import CacheKey
from repro.core.acaching import ACaching, ACachingConfig
from repro.core.candidates import (
    CandidateCache,
    enumerate_candidates,
    prefix_valid_sets,
    satisfies_prefix_invariant,
    shared_groups,
)
from repro.core.cost_model import CacheStatistics, benefit, cost, net_benefit, proc
from repro.core.memory import CacheDemand, MemoryAllocator
from repro.core.profiler import Profiler, ProfilerConfig
from repro.core.reoptimizer import CandidateState, Reoptimizer, ReoptimizerConfig
from repro.core.selection import SelectionProblem, select
from repro.core.wiring import CacheWiring
from repro.engine.clock import CostModel, VirtualClock, WallClock
from repro.engine.metrics import Metrics
from repro.engine.reporting import (
    rows_to_csv,
    rows_to_json,
    series_to_csv,
)
from repro.engine.runtime import (
    StaticPlan,
    available_candidates,
    run_with_series,
    static_plan,
)
from repro.errors import (
    CacheConsistencyError,
    MemoryBudgetError,
    PlanError,
    PrefixInvariantError,
    ReproError,
    SchemaError,
    WorkloadError,
)
from repro.mjoin.executor import MJoinExecutor
from repro.operators.base import ExecContext
from repro.ordering.agreedy import AGreedyOrderer, OrderingConfig
from repro.planner.enumeration import (
    PlanResult,
    best_xjoin,
    plan_spectrum,
    run_acaching,
    run_mjoin,
)
from repro.relations.predicates import AttrRef, EquiPredicate, JoinGraph
from repro.relations.relation import Relation
from repro.streams.events import DeltaBatch, OutputDelta, Sign, Update, batched
from repro.streams.tuples import CompositeTuple, Row, RowFactory, Schema
from repro.streams.windows import CountWindow
from repro.streams.workloads import (
    TABLE2_POINTS,
    Workload,
    fig6_workload,
    fig7_workload,
    fig8_workload,
    fig9_workload,
    fig10_workload,
    fig12_workload,
    star_graph,
    table2_workload,
    three_way_chain,
)
from repro.xjoin.executor import XJoinExecutor
from repro.xjoin.tree import Inner, Leaf, enumerate_trees, left_deep

__version__ = "1.0.0"

__all__ = [
    "ACaching",
    "ACachingConfig",
    "AGreedyOrderer",
    "AttrRef",
    "BloomFilter",
    "Cache",
    "CacheConsistencyError",
    "CacheDemand",
    "CacheKey",
    "CacheStatistics",
    "CacheWiring",
    "CandidateCache",
    "CandidateState",
    "CompositeTuple",
    "CostModel",
    "CountWindow",
    "DeltaBatch",
    "EngineConfig",
    "EquiPredicate",
    "ExecContext",
    "GlobalCache",
    "Inner",
    "JoinGraph",
    "Leaf",
    "MJoinExecutor",
    "MemoryAllocator",
    "MemoryBudgetError",
    "Metrics",
    "MissProbEstimator",
    "OrderingConfig",
    "OutputDelta",
    "PlanError",
    "PlanResult",
    "PrefixInvariantError",
    "Profiler",
    "ProfilerConfig",
    "Relation",
    "Reoptimizer",
    "ReoptimizerConfig",
    "ReproError",
    "Row",
    "RowFactory",
    "Schema",
    "SchemaError",
    "SelectionProblem",
    "Session",
    "Sign",
    "StaticPlan",
    "TABLE2_POINTS",
    "Update",
    "VirtualClock",
    "WallClock",
    "Workload",
    "WorkloadError",
    "XJoinExecutor",
    "available_candidates",
    "batched",
    "benefit",
    "best_xjoin",
    "build_adaptive_engine",
    "build_static_plan",
    "cost",
    "enumerate_candidates",
    "enumerate_trees",
    "fig6_workload",
    "fig7_workload",
    "fig8_workload",
    "fig9_workload",
    "fig10_workload",
    "fig12_workload",
    "left_deep",
    "net_benefit",
    "plan_spectrum",
    "prefix_valid_sets",
    "proc",
    "rows_to_csv",
    "rows_to_json",
    "run_acaching",
    "run_mjoin",
    "run_with_series",
    "series_to_csv",
    "satisfies_prefix_invariant",
    "select",
    "shared_groups",
    "star_graph",
    "static_plan",
    "table2_workload",
    "three_way_chain",
]
