"""The A-Caching controller: Profiler + Re-optimizer + Executor (Figure 4).

This is the main public entry point of the library: build one from a
:class:`~repro.relations.predicates.JoinGraph` (or a workload) and feed it
the update stream; it executes the stream join while adaptively ordering
pipelines (A-Greedy), selecting caches, and allocating memory.

>>> from repro.api import Session
>>> engine = Session.adaptive(workload).plan
>>> for update in workload.updates(100_000):
...     engine.process(update)
>>> engine.throughput()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.memory import MemoryAllocator
from repro.core.profiler import Profiler, ProfilerConfig
from repro.core.wiring import CacheWiring
from repro.errors import ConfigError
from repro.relations.relation import Relation
from repro.faults.resilience import ResilienceConfig, ResilienceController
from repro.core.reoptimizer import (
    CandidateState,
    Reoptimizer,
    ReoptimizerConfig,
)
from repro.mjoin.executor import MJoinExecutor
from repro.operators.base import ExecContext
from repro.ordering.agreedy import AGreedyOrderer, OrderingConfig
from repro.relations.predicates import JoinGraph
from repro.streams.events import DeltaBatch, OutputDelta, Update, batched


@dataclass
class ACachingConfig:
    """All tunables in one place; defaults follow Section 7.1.

    ``incremental_reoptimizer`` enables the Section 8 future-work
    extension: local add/drop/swap re-selection with unimportant-statistic
    tracking (see :mod:`repro.core.incremental`).
    """

    profiler: ProfilerConfig = field(default_factory=ProfilerConfig)
    reoptimizer: ReoptimizerConfig = field(default_factory=ReoptimizerConfig)
    ordering: Optional[OrderingConfig] = field(default_factory=OrderingConfig)
    adaptive_ordering: bool = True
    memory_check_every_updates: int = 500
    incremental_reoptimizer: bool = False
    # Graceful degradation (repro.faults): ingress quarantine, load
    # shedding, and the cache coherence auditor. None disables all three.
    resilience: Optional[ResilienceConfig] = None


class ACaching:
    """Adaptive caching for one continuous multiway join query."""

    def __init__(
        self,
        graph: JoinGraph,
        orders: Optional[Dict[str, Sequence[str]]] = None,
        indexed_attributes: Optional[Dict[str, Iterable[str]]] = None,
        config: Optional[ACachingConfig] = None,
        ctx: Optional[ExecContext] = None,
        relations: Optional[Dict[str, Relation]] = None,
        wiring_factory: Optional[
            Callable[[MJoinExecutor], CacheWiring]
        ] = None,
        allocator: Optional[MemoryAllocator] = None,
    ):
        self.config = config if config is not None else ACachingConfig()
        self.executor = MJoinExecutor(
            graph,
            orders=orders,
            indexed_attributes=indexed_attributes,
            ctx=ctx,
            relations=relations,
        )
        self.profiler = Profiler(self.executor, self.config.profiler)
        if self.config.incremental_reoptimizer:
            if wiring_factory is not None or allocator is not None:
                raise ConfigError(
                    "the incremental re-optimizer does not support "
                    "multi-query wiring/allocator injection"
                )
            from repro.core.incremental import IncrementalReoptimizer

            self.reoptimizer: Reoptimizer = IncrementalReoptimizer(
                self.executor, self.profiler, self.config.reoptimizer
            )
        else:
            self.reoptimizer = Reoptimizer(
                self.executor,
                self.profiler,
                self.config.reoptimizer,
                wiring=(
                    wiring_factory(self.executor)
                    if wiring_factory is not None
                    else None
                ),
                allocator=allocator,
            )
        self.orderer: Optional[AGreedyOrderer] = None
        if self.config.adaptive_ordering and self.config.ordering is not None:
            self.orderer = AGreedyOrderer(self.executor, self.config.ordering)
        self.resilience: Optional[ResilienceController] = None
        if self.config.resilience is not None:
            self.resilience = ResilienceController(
                self.executor, self.config.resilience
            )
            self.executor.resilience = self.resilience
            # The auditor must see the live wiring, and its detach/attach
            # must keep the re-optimizer's candidate states consistent.
            self.resilience.bind_wiring(
                self.reoptimizer.wiring, state_listener=self.reoptimizer
            )
        self._updates_at_memory_check = 0

    @classmethod
    def for_workload(
        cls, workload, config: Optional[ACachingConfig] = None
    ) -> "ACaching":
        """Deprecated; build engines through :mod:`repro.api` instead.

        .. deprecated::
           Use ``Session.adaptive(workload, EngineConfig(tuning=...))``
           or ``repro.api.build_adaptive_engine``.
        """
        import warnings

        warnings.warn(
            "ACaching.for_workload(...) is deprecated; build engines via "
            "repro.api.Session.adaptive(workload, EngineConfig(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls(
            workload.graph,
            indexed_attributes=workload.indexed_attributes,
            config=config,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def process(
        self, update: Update, apply_window: bool = True
    ) -> List[OutputDelta]:
        """Process one update and run the adaptive machinery hooks.

        ``apply_window=False`` defers the window mutation to the caller
        (see :meth:`MJoinExecutor.process`); the multi-query engine uses it
        to apply each shared-stream update exactly once.
        """
        outputs = self.executor.process(update, apply_window=apply_window)
        self._adaptivity_hooks()
        return outputs

    def process_batch(self, batch: DeltaBatch) -> List[List[OutputDelta]]:
        """Process one micro-batch; returns per-update delta lists.

        Join results and window contents are identical to per-update
        execution (see :meth:`MJoinExecutor.process_batch`). The adaptive
        machinery — reordering, re-optimization, memory enforcement — is
        evaluated once per batch boundary instead of once per update; the
        profiler still samples individual updates inside the batch. Which
        caches and orders are chosen may therefore differ between batch
        sizes, but those choices never affect the emitted deltas.
        """
        per_update = self.executor.process_batch(batch)
        self._adaptivity_hooks()
        return per_update

    def _adaptivity_hooks(self) -> None:
        if self.orderer is not None:
            for owner in self.orderer.maybe_reorder():
                self.reoptimizer.on_reorder(owner)
        self.reoptimizer.after_update()
        metrics = self.executor.ctx.metrics
        if (
            self.reoptimizer.allocator.budget_bytes is not None
            and metrics.updates_processed - self._updates_at_memory_check
            >= self.config.memory_check_every_updates
        ):
            self._updates_at_memory_check = metrics.updates_processed
            self.reoptimizer.enforce_memory()

    def run(
        self, updates: Iterable[Update], batch_size: int = 1
    ) -> List[OutputDelta]:
        """Process a whole update sequence; returns all result deltas."""
        outputs: List[OutputDelta] = []
        if batch_size <= 1:
            for update in updates:
                outputs.extend(self.process(update))
            return outputs
        for batch in batched(updates, batch_size):
            for per_update in self.process_batch(batch):
                outputs.extend(per_update)
        return outputs

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def ctx(self):
        """The execution context (clock, cost model, metrics)."""
        return self.executor.ctx

    def throughput(self) -> float:
        """Updates per second of (virtual) time, all overheads included."""
        ctx = self.executor.ctx
        return ctx.metrics.throughput(ctx.clock.now_seconds)

    def used_caches(self) -> List[str]:
        """Candidate ids of the caches currently probed by pipelines."""
        return [
            c.candidate_id for c in self.reoptimizer.wiring.used_candidates()
        ]

    def candidate_states(self) -> Dict[str, str]:
        """Candidate id -> used/profiled/unused (Section 4.5 states)."""
        return {
            cid: state.value for cid, state in self.reoptimizer.states.items()
        }

    def memory_in_use(self) -> int:
        """Bytes held by all wired cache stores (shared counted once)."""
        return self.reoptimizer.wiring.memory_bytes()
