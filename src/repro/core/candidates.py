"""Candidate-cache enumeration (Sections 4.2, 4.4, and 6).

Given the current pipeline orderings, the candidate caches are:

* every contiguous pipeline segment of ≥ 2 relations whose relation set
  satisfies the **prefix invariant** (Definition 3.2) — these are the
  Section 4 candidates, maintained for free by regular join processing;
* when a quota remains (Section 6, parameter ``m``), globally-consistent
  candidates ``X ⋉ Y``: a contiguous segment ``X`` that does *not* satisfy
  the invariant, anchored by the smallest relation set ``Y`` from the same
  pipeline such that ``X ∪ Y`` does satisfy it. Larger ``X`` first, per
  the paper's enumeration order.

The module also derives the structures the selection algorithms need:
shared-cache groups (Definition 4.1) and the per-pipeline containment
forests of Theorem 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.caching.key import CacheKey, segment_predicate_signature
from repro.errors import PlanError
from repro.relations.predicates import JoinGraph

Orders = Mapping[str, Sequence[str]]


@dataclass(frozen=True)
class CandidateCache:
    """One candidate: a (pipeline, segment) pair plus derived structure."""

    candidate_id: str
    owner: str                      # pipeline the lookup would live in
    start: int                      # first covered operator slot
    end: int                        # last covered operator slot (inclusive)
    segment: Tuple[str, ...]        # relations at slots start..end, in order
    prefix: Tuple[str, ...]         # owner + relations before the segment
    anchor: Tuple[str, ...] = ()    # Y relations (empty → prefix-invariant)
    key_signature: Tuple = ()

    @property
    def is_global(self) -> bool:
        """True for globally-consistent (anchored) candidates (Section 6)."""
        return bool(self.anchor)

    @property
    def member_set(self) -> FrozenSet[str]:
        """The segment's relation set."""
        return frozenset(self.segment)

    @property
    def maintenance_set(self) -> FrozenSet[str]:
        """The prefix-valid relation set ``X ∪ Y`` the cache rides on."""
        return frozenset(self.segment) | frozenset(self.anchor)

    @property
    def tap_relations(self) -> FrozenSet[str]:
        """Relations whose pipelines actually carry maintenance taps.

        The owner's own tap is skipped when it anchors its cache: its
        witnesses are fully key-determined (its predicates to the segment
        are all key components) and its deletes are handled by the
        lookup-side consume rule, so its pipeline's full-join deltas carry
        no information the cache needs — and charging them is what would
        make owner-anchored caches drown in maintenance under bursts.
        Candidates with ``owner ∈ anchor`` can never be shared with a
        different owner (equal share tokens force equal anchors), so the
        skip is safe for shared groups too.
        """
        relations = self.maintenance_set
        if self.owner in self.anchor:
            relations = relations - {self.owner}
        return relations

    @property
    def covered_slots(self) -> Tuple[Tuple[str, int], ...]:
        """The (pipeline, operator-slot) pairs this cache bypasses."""
        return tuple((self.owner, slot) for slot in range(self.start, self.end + 1))

    @property
    def share_token(self) -> Tuple:
        """Caches with equal tokens are shared (Definition 4.1).

        The anchor participates: a globally-consistent cache stores a
        semijoin-filtered subset and cannot back a prefix-invariant
        cache's exact-consistency store.
        """
        return (
            frozenset(self.segment),
            self.key_signature,
            frozenset(self.anchor),
        )

    def overlaps(self, other: "CandidateCache") -> bool:
        """True if the two candidates have join operators in common."""
        if self.owner != other.owner:
            return False
        return not (self.end < other.start or self.start > other.end)

    @property
    def tap_slot(self) -> int:
        """Pipeline slot of this cache's maintenance taps (input to the
        ``|maintained set|``-th operator of each member pipeline)."""
        return len(self.maintenance_set) - 1

    def _bypasses_tap_of(self, other: "CandidateCache") -> bool:
        """True if this cache's hit bypass would starve ``other``'s
        maintenance tap in this owner's pipeline."""
        if self.owner not in other.tap_relations:
            return False
        return self.start < other.tap_slot <= self.end

    def conflicts_with(self, other: "CandidateCache") -> bool:
        """Candidates that cannot be used together.

        Prefix-invariant candidates only conflict by operator overlap
        (Section 4.2's nonoverlap rule); globally-consistent candidates add
        tap-bypass conflicts, which is why selection over them is as hard
        as independent set (Section 6).
        """
        return (
            self.overlaps(other)
            or self._bypasses_tap_of(other)
            or other._bypasses_tap_of(self)
        )

    def contains(self, other: "CandidateCache") -> bool:
        """Strict containment of ``other``'s operator range (same pipeline)."""
        return (
            self.owner == other.owner
            and self.start <= other.start
            and other.end <= self.end
            and (self.start, self.end) != (other.start, other.end)
        )

    def __repr__(self) -> str:
        seg = "⋈".join(self.segment)
        tail = f"⋉{'⋈'.join(self.anchor)}" if self.anchor else ""
        return f"Candidate[{self.candidate_id}: ({seg}){tail}]"


def satisfies_prefix_invariant(
    member_set: FrozenSet[str], orders: Orders
) -> bool:
    """Definition 3.2 for a relation set: every member's pipeline joins the
    other members first, in some order."""
    width = len(member_set) - 1
    for member in member_set:
        order = orders[member]
        if set(order[:width]) != member_set - {member}:
            return False
    return True


def prefix_valid_sets(orders: Orders) -> Set[FrozenSet[str]]:
    """All relation sets (size ≥ 2) satisfying the prefix invariant."""
    valid: Set[FrozenSet[str]] = set()
    for owner, order in orders.items():
        for width in range(1, len(order) + 1):
            candidate = frozenset(order[:width]) | {owner}
            if candidate in valid:
                continue
            if satisfies_prefix_invariant(candidate, orders):
                valid.add(candidate)
    return valid


def _build_candidate(
    graph: JoinGraph,
    owner: str,
    order: Sequence[str],
    start: int,
    end: int,
    anchor: Tuple[str, ...] = (),
) -> Optional[CandidateCache]:
    segment = tuple(order[start : end + 1])
    prefix = (owner,) + tuple(order[:start])
    try:
        key = CacheKey(graph, prefix, segment)
    except PlanError:
        return None  # keyless segment (cross product): not cacheable
    suffix = "g" if anchor else "p"
    candidate_id = f"{owner}:{start}-{end}{suffix}"
    return CandidateCache(
        candidate_id=candidate_id,
        owner=owner,
        start=start,
        end=end,
        segment=segment,
        prefix=prefix,
        anchor=anchor,
        key_signature=key.signature(),
    )


def enumerate_prefix_candidates(
    graph: JoinGraph, orders: Orders
) -> List[CandidateCache]:
    """All Section 4 candidates under the current orderings."""
    candidates: List[CandidateCache] = []
    for owner, order in orders.items():
        for start in range(len(order)):
            for end in range(start + 1, len(order)):
                member_set = frozenset(order[start : end + 1])
                if not satisfies_prefix_invariant(member_set, orders):
                    continue
                candidate = _build_candidate(graph, owner, order, start, end)
                if candidate is not None:
                    candidates.append(candidate)
    return candidates


def enumerate_global_candidates(
    graph: JoinGraph,
    orders: Orders,
    quota: int,
    existing: Sequence[CandidateCache] = (),
) -> List[CandidateCache]:
    """Section 6's quota-bounded globally-consistent candidates.

    For each pipeline segment ``X`` that fails the prefix invariant, the
    anchor ``Y`` is the smallest prefix-valid superset's complement taken
    from the *same pipeline* (owner excluded — anchoring on the probing
    relation itself would let live composites be dropped; see DESIGN.md).
    Enumeration proceeds from the largest segments down, as the paper
    fills its quota with "X is all but one relation" first.
    """
    if quota <= 0:
        return []
    valid_sets = prefix_valid_sets(orders)
    existing_slots = {
        (c.owner, c.start, c.end) for c in existing
    }
    collected: List[CandidateCache] = []
    max_len = max((len(order) for order in orders.values()), default=0)
    for segment_len in range(max_len, 1, -1):
        for owner, order in orders.items():
            for start in range(0, len(order) - segment_len + 1):
                end = start + segment_len - 1
                if (owner, start, end) in existing_slots:
                    continue
                member_set = frozenset(order[start : end + 1])
                if satisfies_prefix_invariant(member_set, orders):
                    continue  # already a prefix candidate
                anchor = _smallest_anchor(
                    member_set, owner, order, valid_sets
                )
                if anchor is None:
                    continue
                candidate = _build_candidate(
                    graph, owner, order, start, end, anchor=anchor
                )
                if candidate is not None:
                    collected.append(candidate)
                    if len(collected) >= quota:
                        return collected
    return collected


def _smallest_anchor(
    member_set: FrozenSet[str],
    owner: str,
    order: Sequence[str],
    valid_sets: Set[FrozenSet[str]],
) -> Optional[Tuple[str, ...]]:
    """The smallest prefix-valid superset's complement.

    The anchor may include the pipeline's own relation (the full relation
    set is always prefix-valid, which is the paper's fallback: any segment
    ``X`` can be cached as ``X ⋉ (everything else)``); the entry-
    invalidation maintenance of :class:`GlobalCache` keeps that sound.
    """
    allowed = frozenset(order) | {owner}
    best: Optional[FrozenSet[str]] = None
    for valid in valid_sets:
        if not (member_set < valid and valid <= allowed):
            continue
        if best is None or len(valid) < len(best):
            best = valid
    if best is None:
        return None
    anchor = best - member_set
    return tuple(sorted(anchor))


def enumerate_candidates(
    graph: JoinGraph, orders: Orders, global_quota: int = 0
) -> List[CandidateCache]:
    """Prefix candidates, topped up to ``global_quota`` with global ones.

    Matches Section 6: with ``p`` prefix candidates and quota ``m``, global
    candidates are only considered when ``p < m``.
    """
    prefix = enumerate_prefix_candidates(graph, orders)
    if global_quota <= len(prefix):
        return prefix
    extras = enumerate_global_candidates(
        graph, orders, global_quota - len(prefix), existing=prefix
    )
    return prefix + extras


def shared_groups(
    candidates: Sequence[CandidateCache],
) -> Dict[Tuple, List[CandidateCache]]:
    """Group candidates by share token (Definition 4.1)."""
    groups: Dict[Tuple, List[CandidateCache]] = {}
    for candidate in candidates:
        groups.setdefault(candidate.share_token, []).append(candidate)
    return groups


def inter_query_token(
    graph: JoinGraph, candidate: CandidateCache
) -> Optional[Tuple]:
    """The cross-query sharing identity of a candidate, or None.

    Two candidates from *different* queries can back one physical store
    exactly when their cached contents are provably identical functions of
    the shared windows. That needs three things beyond the intra-query
    share token:

    * **prefix invariance** (empty anchor) — a globally-consistent store
      holds an anchor-filtered subset specific to its own query;
    * equal **segment relation sets and key signatures** — same entries
      under the same entry keys (segment-side slots are
      pipeline-independent, so the probing query's own prefix key still
      extracts matching probe values);
    * equal **intra-segment predicate signatures** — the intra-query token
      may match while the predicates *inside* the segment differ, in which
      case the segment joins (the cached values) differ.

    The token also pins the maintenance contract: equal segments mean
    equal tap relations and tap slots, so maintenance taps hosted in any
    one member query keep the store consistent for all of them.
    """
    if candidate.is_global:
        return None
    return (
        candidate.member_set,
        candidate.key_signature,
        segment_predicate_signature(graph, candidate.segment),
    )


def inter_query_groups(
    per_query: Mapping[str, Tuple[JoinGraph, Sequence[CandidateCache]]],
) -> Dict[Tuple, Dict[str, List[CandidateCache]]]:
    """Group each query's candidates into inter-query shared-cache groups.

    ``per_query`` maps query id to ``(graph, candidates)``; the result maps
    each inter-query token to ``{query_id: [candidates]}`` for the tokens
    held by at least one query. Singleton groups are included — whether a
    group actually shares depends on which members get selected at run
    time; enumeration only fixes the equivalence classes.
    """
    groups: Dict[Tuple, Dict[str, List[CandidateCache]]] = {}
    for query_id, (graph, candidates) in per_query.items():
        for candidate in candidates:
            token = inter_query_token(graph, candidate)
            if token is None:
                continue
            groups.setdefault(token, {}).setdefault(query_id, []).append(
                candidate
            )
    return groups


@dataclass
class ContainmentNode:
    """A node of the per-pipeline containment forest (Theorem 4.1)."""

    candidate: CandidateCache
    children: List["ContainmentNode"] = field(default_factory=list)


def containment_forest(
    candidates: Sequence[CandidateCache],
) -> Dict[str, List[ContainmentNode]]:
    """Build, per pipeline, the forest where a cache's parent is the
    smallest candidate strictly containing it.

    Overlapping prefix-invariant candidates in one pipeline are always
    nested (Section 4.4), so this is well defined; a genuine partial
    overlap would indicate an enumeration bug and raises.
    """
    by_owner: Dict[str, List[CandidateCache]] = {}
    for candidate in candidates:
        by_owner.setdefault(candidate.owner, []).append(candidate)
    forests: Dict[str, List[ContainmentNode]] = {}
    for owner, group in by_owner.items():
        for a in group:
            for b in group:
                if a is not b and a.overlaps(b):
                    if not (a.contains(b) or b.contains(a) or a.covered_slots == b.covered_slots):
                        raise PlanError(
                            f"overlapping non-nested candidates: {a} / {b}"
                        )
        # Sort by width ascending; attach each to the smallest container.
        ordered = sorted(group, key=lambda c: c.end - c.start)
        nodes = {c.candidate_id: ContainmentNode(c) for c in ordered}
        roots: List[ContainmentNode] = []
        for candidate in ordered:
            parent = None
            for other in ordered:
                if other.contains(candidate):
                    if parent is None or (other.end - other.start) < (
                        parent.end - parent.start
                    ):
                        parent = other
            if parent is None:
                roots.append(nodes[candidate.candidate_id])
            else:
                nodes[parent.candidate_id].children.append(
                    nodes[candidate.candidate_id]
                )
        forests[owner] = roots
    return forests
