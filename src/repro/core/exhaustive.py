"""Exact selection by branch-and-bound over candidate subsets.

Section 4.4 notes that exhaustively searching the 2^m combinations is
"typically negligible for n ≤ 6, even in an adaptive setting"; Section 6
reuses the same search for globally-consistent caches with m capped. This
implementation explores candidates in a fixed order, skipping overlaps,
and prunes with an optimistic bound (every remaining candidate's benefit,
all group costs already paid).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.selection import SelectionProblem
from repro.errors import PlanError

MAX_EXHAUSTIVE_CANDIDATES = 24


def select_exhaustive(problem: SelectionProblem) -> List:
    """Optimal nonoverlapping subset by pruned subset search."""
    candidates = sorted(
        problem.candidates,
        key=lambda c: problem.benefit[c.candidate_id],
        reverse=True,
    )
    if len(candidates) > MAX_EXHAUSTIVE_CANDIDATES:
        raise PlanError(
            f"{len(candidates)} candidates is past the exhaustive-search "
            f"cutoff ({MAX_EXHAUSTIVE_CANDIDATES}); use the greedy solver"
        )
    benefits = [problem.benefit[c.candidate_id] for c in candidates]
    # Optimistic tail bound: the sum of remaining positive benefits.
    tail = [0.0] * (len(candidates) + 1)
    for i in range(len(candidates) - 1, -1, -1):
        tail[i] = tail[i + 1] + max(0.0, benefits[i])

    best_value = 0.0
    best_picks: List = []

    def recurse(
        index: int,
        picks: List,
        value: float,
        paid_tokens: Set[Tuple],
    ) -> None:
        nonlocal best_value, best_picks
        if value > best_value:
            best_value = value
            best_picks = list(picks)
        if index >= len(candidates):
            return
        if value + tail[index] <= best_value:
            return  # cannot beat the incumbent
        candidate = candidates[index]
        # Branch 1: take it (if compatible).
        if not any(candidate.conflicts_with(chosen) for chosen in picks):
            token = candidate.share_token
            extra_cost = (
                0.0 if token in paid_tokens else problem.group_cost[token]
            )
            picks.append(candidate)
            added = token not in paid_tokens
            if added:
                paid_tokens.add(token)
            recurse(
                index + 1,
                picks,
                value + benefits[index] - extra_cost,
                paid_tokens,
            )
            picks.pop()
            if added:
                paid_tokens.discard(token)
        # Branch 2: skip it.
        recurse(index + 1, picks, value, paid_tokens)

    recurse(0, [], 0.0, set())
    return best_picks
