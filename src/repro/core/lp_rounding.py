"""Randomized LP-rounding selection (Theorem B.1).

Solves the linear relaxation of the covering integer program — variables
``xc`` per cache (operators included as zero-length caches), ``zr`` per
shared group, coverage equality per operator, ``xc ≤ zr`` — then rounds:
per group draw ``αr`` uniform in [0,1] and keep every member with
``xc ≥ αr``; repeat ``3·log2(m)`` times and take the union, resolving
overlaps by keeping the widest cache. Expected cost is within O(log n) of
the optimum.

Requires scipy for the LP solve; falls back to the greedy algorithm when
scipy is unavailable so the adaptive engine never hard-depends on it.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Tuple

from repro.core.selection import (
    SelectionProblem,
    prune_negative_groups,
    resolve_overlaps,
)


def solve_relaxation(problem: SelectionProblem) -> Dict[str, float]:
    """The LP-relaxation values ``xc`` for every real candidate."""
    import numpy as np
    from scipy.optimize import linprog

    candidates = problem.candidates
    tokens = sorted({c.share_token for c in candidates}, key=repr)
    token_index = {token: i for i, token in enumerate(tokens)}
    slots = sorted(problem.operator_cost)
    slot_index = {slot: i for i, slot in enumerate(slots)}

    n_x = len(candidates)           # real cache variables
    n_pseudo = len(slots)           # zero-length operator caches
    n_z = len(tokens)
    n_vars = n_x + n_pseudo + n_z

    objective = np.zeros(n_vars)
    for i, candidate in enumerate(candidates):
        objective[i] = problem.proc[candidate.candidate_id]
    for j, slot in enumerate(slots):
        objective[n_x + j] = problem.operator_cost[slot]
    for token, k in token_index.items():
        objective[n_x + n_pseudo + k] = problem.group_cost[token]

    # Coverage: every operator covered exactly once.
    a_eq = np.zeros((len(slots), n_vars))
    for i, candidate in enumerate(candidates):
        for slot in candidate.covered_slots:
            a_eq[slot_index[slot], i] = 1.0
    for j in range(n_pseudo):
        a_eq[j, n_x + j] = 1.0
    b_eq = np.ones(len(slots))

    # Linking: xc − zr ≤ 0.
    a_ub = np.zeros((n_x, n_vars))
    for i, candidate in enumerate(candidates):
        a_ub[i, i] = 1.0
        a_ub[i, n_x + n_pseudo + token_index[candidate.share_token]] = -1.0
    b_ub = np.zeros(n_x)

    result = linprog(
        objective,
        A_eq=a_eq,
        b_eq=b_eq,
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(0.0, 1.0)] * n_vars,
        method="highs",
    )
    if not result.success:  # pragma: no cover - LP is always feasible
        raise RuntimeError(f"LP relaxation failed: {result.message}")
    return {
        candidates[i].candidate_id: float(result.x[i]) for i in range(n_x)
    }


def select_lp_rounding(problem: SelectionProblem, seed: int = 0) -> List:
    """Round the LP relaxation; O(log n)-approximate in expectation."""
    try:
        fractional = solve_relaxation(problem)
    except ImportError:  # pragma: no cover - scipy present in CI
        from repro.core.greedy import select_greedy

        return select_greedy(problem)

    rng = random.Random(seed)
    groups = problem.groups()
    operator_count = max(2, len(problem.operator_cost))
    rounds = max(1, int(math.ceil(3 * math.log2(operator_count))))
    picked_ids = set()
    for _ in range(rounds):
        for members in groups.values():
            alpha = rng.random()
            for candidate in members:
                if fractional[candidate.candidate_id] >= alpha:
                    picked_ids.add(candidate.candidate_id)
    by_id = problem.by_id
    picked = [by_id[cid] for cid in sorted(picked_ids)]
    kept = resolve_overlaps(picked)
    return prune_negative_groups(problem, kept)
