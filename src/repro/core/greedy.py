"""The greedy O(log n) approximation of Theorem 4.3 / Appendix B.

Minimizes total cost ``Σ proc + Σ group costs`` over a cover of all join
operators, where every operator is also available as a zero-length cache
of cost ``d·c``. Per iteration, each shared group ``Gr`` is scored by its
best cost-rate

    Dr = min over prefixes S of Gr (sorted by Bc/nc) of
         (Lr + Σ_{c∈S} Bc) / (Σ_{c∈S} nc)

(Appendix B proves a sorted prefix is optimal), the cheapest group's
prefix is chosen, its operators are deleted, and coverage counts ``nc``
shrink accordingly. Overlapping picks are resolved afterwards by keeping
the widest cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.selection import (
    OperatorSlot,
    SelectionProblem,
    prune_negative_groups,
    resolve_overlaps,
)


def _best_prefix(
    members: List,
    problem: SelectionProblem,
    uncovered: Set[OperatorSlot],
    group_cost: float,
) -> Optional[Tuple[float, List]]:
    """The optimal (rate, subset) for one group given current coverage."""
    scored = []
    for candidate in members:
        covered = [s for s in candidate.covered_slots if s in uncovered]
        if covered:
            scored.append(
                (problem.proc[candidate.candidate_id], len(covered), candidate)
            )
    if not scored:
        return None
    scored.sort(key=lambda item: item[0] / item[1])
    best_rate, best_subset = None, None
    total_b, total_n = group_cost, 0
    subset: List = []
    for b, n, candidate in scored:
        total_b += b
        total_n += n
        subset.append(candidate)
        rate = total_b / total_n
        if best_rate is None or rate < best_rate:
            best_rate = rate
            best_subset = list(subset)
    return best_rate, best_subset


def select_greedy(problem: SelectionProblem) -> List:
    """Greedy set-cover-style selection; logarithmic approximation."""
    uncovered: Set[OperatorSlot] = set(problem.operator_cost)
    groups = problem.groups()
    chosen: List = []
    while uncovered:
        best_rate: Optional[float] = None
        best_subset: Optional[List] = None
        best_is_real = False
        for token, members in groups.items():
            live = [
                c
                for c in members
                if c not in chosen
                and any(s in uncovered for s in c.covered_slots)
            ]
            result = _best_prefix(
                live, problem, uncovered, problem.group_cost[token]
            )
            if result is None:
                continue
            rate, subset = result
            if best_rate is None or rate < best_rate:
                best_rate, best_subset, best_is_real = rate, subset, True
        # Zero-length operator caches: singleton groups of cost d·c.
        cheapest_op: Optional[OperatorSlot] = None
        for slot in uncovered:
            rate = problem.operator_cost[slot]
            if best_rate is None or rate < best_rate:
                best_rate = rate
                cheapest_op = slot
                best_is_real = False
        if best_is_real and best_subset is not None:
            chosen.extend(best_subset)
            for candidate in best_subset:
                uncovered.difference_update(candidate.covered_slots)
        elif cheapest_op is not None:
            uncovered.discard(cheapest_op)
        else:  # pragma: no cover - uncovered implies one branch fires
            break
    kept = resolve_overlaps(chosen)
    return prune_negative_groups(problem, kept)
