"""Offline cache selection (Section 4.4): problem container + dispatch.

The objective is to pick the nonoverlapping subset ``X`` of candidate
caches maximizing ``Σ benefit(C) − Σ cost(group)``, where the maintenance
cost of a shared group (Definition 4.1) is paid once however many of its
members are used. Equivalently (Section 4.4), minimize
``Σ_{uncovered ops} d·c + Σ proc(C) + Σ cost(group)`` with each operator
treated as a zero-length cache.

Solvers:

* :func:`repro.core.tree_dp.select_tree_optimal` — exact, linear, when no
  sharing exists (Theorems 4.1 / 4.2);
* :func:`repro.core.exhaustive.select_exhaustive` — exact branch-and-bound
  over ≤ ``exhaustive_limit`` candidates (the paper notes 2^m search is
  negligible for n ≤ 6);
* :func:`repro.core.greedy.select_greedy` — the O(log n)-approximate
  greedy of Theorem 4.3 / Appendix B;
* :func:`repro.core.lp_rounding.select_lp_rounding` — the randomized
  LP-rounding algorithm of Theorem B.1 (uses scipy when available).

``select`` picks per the paper: exact where exact is cheap, greedy beyond.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.candidates import CandidateCache, shared_groups
from repro.errors import PlanError

OperatorSlot = Tuple[str, int]  # (pipeline owner, operator position)


@dataclass
class SelectionProblem:
    """Candidates plus the cost-model numbers selection needs."""

    candidates: List[CandidateCache]
    benefit: Dict[str, float]          # candidate_id -> benefit (µs/sec)
    proc: Dict[str, float]             # candidate_id -> proc (µs/sec)
    group_cost: Dict[Tuple, float]     # share token -> maintenance cost
    operator_cost: Dict[OperatorSlot, float]  # (owner, slot) -> d·c

    def __post_init__(self) -> None:
        for candidate in self.candidates:
            if candidate.candidate_id not in self.benefit:
                raise PlanError(
                    f"no benefit estimate for {candidate.candidate_id}"
                )
            if candidate.share_token not in self.group_cost:
                raise PlanError(
                    f"no group cost for {candidate.candidate_id}"
                )

    @property
    def by_id(self) -> Dict[str, CandidateCache]:
        """Candidate id -> candidate, for solvers that work on ids."""
        return {c.candidate_id: c for c in self.candidates}

    def groups(self) -> Dict[Tuple, List[CandidateCache]]:
        """Share token -> candidates (Definition 4.1 groups)."""
        return shared_groups(self.candidates)

    def has_sharing(self) -> bool:
        """True if any group has more than one member."""
        return any(len(members) > 1 for members in self.groups().values())

    def subset_value(self, selected: Sequence[CandidateCache]) -> float:
        """Σ benefit − Σ group costs for a candidate subset."""
        value = sum(self.benefit[c.candidate_id] for c in selected)
        tokens = {c.share_token for c in selected}
        value -= sum(self.group_cost[token] for token in tokens)
        return value

    def validate_compatible(
        self, selected: Sequence[CandidateCache]
    ) -> None:
        """Raise PlanError if any two selected caches conflict."""
        for i, a in enumerate(selected):
            for b in selected[i + 1 :]:
                if a.conflicts_with(b):
                    raise PlanError(f"selected caches conflict: {a} / {b}")


def resolve_overlaps(
    selected: Sequence[CandidateCache],
) -> List[CandidateCache]:
    """Appendix B: among conflicting picks keep the widest, drop the rest."""
    kept: List[CandidateCache] = []
    for candidate in sorted(
        selected, key=lambda c: (c.end - c.start), reverse=True
    ):
        if not any(candidate.conflicts_with(existing) for existing in kept):
            kept.append(candidate)
    return kept


def prune_negative_groups(
    problem: SelectionProblem, selected: Sequence[CandidateCache]
) -> List[CandidateCache]:
    """Drop whole groups whose summed benefit no longer covers their cost.

    Approximate solvers can leave such groups behind after overlap
    resolution; removing one never hurts the objective.
    """
    kept = list(selected)
    changed = True
    while changed:
        changed = False
        by_token: Dict[Tuple, List[CandidateCache]] = {}
        for candidate in kept:
            by_token.setdefault(candidate.share_token, []).append(candidate)
        for token, members in by_token.items():
            total_benefit = sum(
                problem.benefit[c.candidate_id] for c in members
            )
            if total_benefit < problem.group_cost[token]:
                kept = [c for c in kept if c.share_token != token]
                changed = True
                break
    return kept


def select(
    problem: SelectionProblem,
    method: str = "auto",
    exhaustive_limit: int = 16,
    seed: int = 0,
) -> List[CandidateCache]:
    """Run offline cache selection and return the chosen candidates."""
    from repro.core.exhaustive import select_exhaustive
    from repro.core.greedy import select_greedy
    from repro.core.lp_rounding import select_lp_rounding
    from repro.core.tree_dp import select_tree_optimal

    if not problem.candidates:
        return []
    if method == "auto":
        pure_prefix = all(not c.is_global for c in problem.candidates)
        if pure_prefix and not problem.has_sharing():
            method = "tree"
        elif len(problem.candidates) <= exhaustive_limit:
            method = "exhaustive"
        else:
            method = "greedy"
    if method == "tree":
        selected = select_tree_optimal(problem)
    elif method == "exhaustive":
        selected = select_exhaustive(problem)
    elif method == "greedy":
        selected = select_greedy(problem)
    elif method == "lp":
        selected = select_lp_rounding(problem, seed=seed)
    else:
        raise PlanError(f"unknown selection method {method!r}")
    problem.validate_compatible(selected)
    return selected
