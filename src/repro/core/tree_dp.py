"""Exact selection without sharing (Theorems 4.1 and 4.2).

Overlapping candidates in one pipeline are nested under the prefix
invariant, so per pipeline they form a containment forest. With no shared
caches the objective decomposes per tree: the best choice for a subtree
rooted at cache ``C`` is either ``C`` itself (worth ``benefit − cost`` if
positive) or the union of the best choices of its children. One bottom-up
pass per tree — O(m) overall.
"""

from __future__ import annotations

from typing import List

from repro.core.candidates import ContainmentNode, containment_forest
from repro.core.selection import SelectionProblem
from repro.errors import PlanError


def select_tree_optimal(problem: SelectionProblem) -> List:
    """Optimal nonoverlapping subset when no candidates share."""
    if problem.has_sharing():
        raise PlanError(
            "tree DP is only optimal without shared caches; use the "
            "greedy or exhaustive solver"
        )
    selected: List = []
    forests = containment_forest(problem.candidates)
    for roots in forests.values():
        for root in roots:
            _value, picks = _best(root, problem)
            selected.extend(picks)
    return selected


def _best(node: ContainmentNode, problem: SelectionProblem):
    """Return (value, picks) for the subtree rooted at ``node``."""
    candidate = node.candidate
    own_value = (
        problem.benefit[candidate.candidate_id]
        - problem.group_cost[candidate.share_token]
    )
    child_value = 0.0
    child_picks: List = []
    for child in node.children:
        value, picks = _best(child, problem)
        child_value += value
        child_picks.extend(picks)
    # Choosing nothing is always allowed, hence the 0 floor.
    best_value = max(0.0, own_value, child_value)
    if best_value == 0.0:
        return 0.0, []
    if own_value >= child_value:
        return own_value, [candidate]
    return child_value, child_picks
