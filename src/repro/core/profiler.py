"""The Profiler of Figure 4: online benefit/cost estimation (Appendix A).

Per pipeline it samples full tuple processing with probability ``p``:
profiled tuples bypass caches, and per operator we record ``δj`` (tuples
processed) and ``τj`` (virtual time spent). Estimates are windowed means
over the last ``W`` observations (Table 1):

    dij = rate(Ri) · sum(δj)/W        cij = sum(τj)/sum(δj)

``miss_prob`` comes from Bloom-filter lookups for unused candidates
(:class:`repro.caching.bloom.MissProbEstimator`) and from direct
observation for used caches. ``probe_cost``/``update_cost`` derive from
the constant key width and the mean tuples-per-entry ``d_out/d_probe``
(see :mod:`repro.core.cost_model`).
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.caching.bloom import MissProbEstimator
from repro.caching.cache import Cache
from repro.core.candidates import CandidateCache
from repro.core.cost_model import CacheStatistics
from repro.mjoin.executor import MJoinExecutor
from repro.operators.cache_ops import BloomLookup
from repro.operators.pipeline import ProfileSample


def deterministic_gate_hash(seed: int, seq: int) -> float:
    """A uniform-in-[0,1) hash of (seed, seq): the deterministic profile
    gate, shared by every shard so all workers sample the same updates."""
    return (
        zlib.crc32(f"{seed}:{seq}".encode("ascii")) & 0xFFFFFFFF
    ) / 4294967296.0


@dataclass
class ProfilerConfig:
    """Tunables, with Section 7.1 defaults where the paper gives them."""

    window: int = 10                # W: observations per estimated statistic
    profile_probability: float = 0.05
    bloom_window_tuples: int = 256  # Wd (must span the window-expiry reuse distance)
    bloom_alpha: float = 4.0        # α: bits per window tuple
    rate_window: int = 32           # arrivals used for rate(Ri)
    seed: int = 17
    # Gate sampling by a hash of (seed, global seq) instead of a local
    # RNG stream. Under sharding every worker then profiles the *same*
    # global update set, so cross-shard merged statistics match what a
    # serial profiler would have measured (repro.parallel.adaptivity).
    deterministic_gate: bool = False


class PipelineProfile:
    """Windowed δ/τ statistics for one pipeline."""

    def __init__(self, owner: str, slots: int, window: int):
        self.owner = owner
        self.slots = slots
        # One δ window per slot 0..slots (slot ``slots`` = final outputs),
        # one τ window per operator 0..slots-1.
        self.delta_windows: List[Deque[int]] = [
            deque(maxlen=window) for _ in range(slots + 1)
        ]
        self.tau_windows: List[Deque[float]] = [
            deque(maxlen=window) for _ in range(slots)
        ]
        self._window = window
        self._arrival_times: Deque[float] = deque(maxlen=64)

    def record_sample(self, sample: ProfileSample) -> None:
        """Fold one profiled tuple's δ/τ measurements into the windows."""
        for slot, delta in enumerate(sample.deltas[: self.slots + 1]):
            self.delta_windows[slot].append(delta)
        for position, tau in enumerate(sample.taus[: self.slots]):
            self.tau_windows[position].append(tau)

    def record_arrival(self, now_us: float) -> None:
        """Note an update's (virtual) arrival time for rate estimation."""
        self._arrival_times.append(now_us)

    def rate(self) -> float:
        """Updates per second of virtual time, over the recent window."""
        if len(self._arrival_times) < 2:
            return 0.0
        span_us = self._arrival_times[-1] - self._arrival_times[0]
        if span_us <= 0:
            return 0.0
        return (len(self._arrival_times) - 1) / (span_us / 1e6)

    def ready(self) -> bool:
        """True once every statistic has W observations (Section 4.5)."""
        return all(
            len(window) >= self._window for window in self.delta_windows
        )

    def d(self, slot: int) -> float:
        """dij: tuples/sec entering ``slot`` (slot==slots → output rate)."""
        window = self.delta_windows[slot]
        if not window:
            return 0.0
        mean_delta = sum(window) / len(window)
        return self.rate() * mean_delta

    def c(self, position: int) -> float:
        """cij: µs per tuple in operator ``position``."""
        total_delta = sum(self.delta_windows[position])
        if total_delta == 0:
            return 0.0
        return sum(self.tau_windows[position]) / total_delta


class Profiler:
    """Samples execution, tracks rates, and estimates candidate statistics."""

    def __init__(
        self,
        executor: MJoinExecutor,
        config: Optional[ProfilerConfig] = None,
    ):
        self.executor = executor
        self.config = config if config is not None else ProfilerConfig()
        self._rng = random.Random(self.config.seed)
        self.profiles: Dict[str, PipelineProfile] = {}
        self.miss_windows: Dict[str, Deque[float]] = {}
        # candidate_id -> (owner, estimator); the estimator handle enables
        # duty cycling (pause once W observations are in).
        self._installed_blooms: Dict[str, tuple] = {}
        self.rebuild_profiles()
        executor.profile_gate = self._gate
        executor.sample_sink = self._sink

    # ------------------------------------------------------------------
    # wiring into the executor
    # ------------------------------------------------------------------
    def rebuild_profiles(self, owner: Optional[str] = None) -> None:
        """(Re)create per-pipeline windows — after an ordering change the
        old δ/τ measurements describe a different plan and are discarded.

        Arrival times survive the rebuild: ``rate(Ri)`` describes the
        *stream*, not the plan, so the accumulated rate history stays
        valid across reorders and coordinator plan pushes — without it
        every rebuild would stall all estimates for ``rate_window``
        arrivals (the warm-stats regression this preserves against).
        """
        owners = [owner] if owner else list(self.executor.pipelines)
        for name in owners:
            pipeline = self.executor.pipelines[name]
            fresh = PipelineProfile(
                name, pipeline.slots, self.config.window
            )
            previous = self.profiles.get(name)
            if previous is not None:
                fresh._arrival_times.extend(previous._arrival_times)
            self.profiles[name] = fresh
            pipeline.observation_sink = self._observe_miss

    def _gate(self, relation: str, seq: Optional[int] = None) -> bool:
        profile = self.profiles.get(relation)
        if profile is not None:
            profile.record_arrival(self.executor.ctx.clock.now_us)
        if self.config.deterministic_gate and seq is not None:
            return (
                deterministic_gate_hash(self.config.seed, seq)
                < self.config.profile_probability
            )
        return self._rng.random() < self.config.profile_probability

    def _sink(self, relation: str, sample: ProfileSample) -> None:
        profile = self.profiles.get(relation)
        if profile is not None:
            profile.record_sample(sample)
        ctx = self.executor.ctx
        if ctx.obs.enabled:
            ctx.obs.tracer.emit(
                "profile_sample",
                ctx.clock.now_us,
                pipeline=relation,
                deltas=list(sample.deltas),
                taus=[round(t, 3) for t in sample.taus],
            )

    def _observe_miss(self, candidate_id: str, observation: float) -> None:
        window = self.miss_windows.setdefault(
            candidate_id, deque(maxlen=self.config.window)
        )
        window.append(observation)
        # Duty cycling: one observation per re-optimization cycle keeps
        # steady-state hashing cost negligible; the W-deep window then
        # spans several cycles, which matches the paper's "react gradually
        # to changes that make an unused cache useful".
        installed = self._installed_blooms.get(candidate_id)
        if installed is not None:
            installed[1].paused = True

    def reactivate_blooms(self) -> None:
        """Resume paused estimators (called at each re-optimization cycle)."""
        for _owner, estimator in self._installed_blooms.values():
            estimator.paused = False

    # ------------------------------------------------------------------
    # miss-probability plumbing
    # ------------------------------------------------------------------
    def install_bloom(self, candidate: CandidateCache) -> None:
        """Attach a profile-mode lookup for an unused candidate."""
        if candidate.candidate_id in self._installed_blooms:
            return
        from repro.caching.key import CacheKey

        key = CacheKey(
            self.executor.graph, candidate.prefix, candidate.segment
        )
        estimator = MissProbEstimator(
            window_tuples=self.config.bloom_window_tuples,
            alpha=self.config.bloom_alpha,
            # Delete probes almost surely hit a prefix-invariant cache but
            # consume a globally-consistent cache's entry, so only the
            # former get the optimistic sign-aware distinct counting.
            sign_aware=not candidate.is_global,
        )
        bloom = BloomLookup(
            candidate.candidate_id, key, candidate.start, estimator
        )
        self.executor.pipelines[candidate.owner].attach_bloom(bloom)
        self._installed_blooms[candidate.candidate_id] = (
            candidate.owner,
            estimator,
        )

    def remove_bloom(self, candidate_id: str) -> None:
        """Detach a candidate's profile-mode lookup, if installed."""
        installed = self._installed_blooms.pop(candidate_id, None)
        if installed is not None and installed[0] in self.executor.pipelines:
            self.executor.pipelines[installed[0]].detach_bloom(candidate_id)

    def remove_all_blooms(self) -> None:
        """Detach every installed profile-mode lookup."""
        for candidate_id in list(self._installed_blooms):
            self.remove_bloom(candidate_id)

    def harvest_used_cache(
        self, candidate_id: str, cache: Cache, min_probes: int = 300
    ) -> None:
        """Record the directly observed miss probability of a used cache
        and reset its counters (Appendix A, in-use case).

        Observations are skipped while the cache is still *populating*:
        a fresh cache misses once per distinct key regardless of its
        steady-state quality, so folding the fill-phase miss spike into
        the statistics makes the re-optimizer deselect caches it just
        chose. Maturity is self-calibrating — during the fill phase
        probes ≈ entries (each miss creates one entry), so we wait until
        probes comfortably exceed the entry count.
        """
        if cache.probes < max(min_probes, 2 * cache.entry_count):
            return
        self._observe_miss(candidate_id, cache.observed_miss_prob)
        cache.reset_counters()

    # ------------------------------------------------------------------
    # estimates
    # ------------------------------------------------------------------
    def miss_prob(self, candidate_id: str) -> Optional[float]:
        """Windowed mean miss-probability estimate for a candidate, or None."""
        window = self.miss_windows.get(candidate_id)
        if not window:
            return None
        return sum(window) / len(window)

    def statistics_for(
        self, candidate: CandidateCache
    ) -> Optional[CacheStatistics]:
        """Assemble :class:`CacheStatistics`, or None if data is missing."""
        profile = self.profiles.get(candidate.owner)
        if profile is None or not profile.ready():
            return None
        segment_d = [
            profile.d(slot) for slot in range(candidate.start, candidate.end + 1)
        ]
        segment_c = [
            profile.c(slot) for slot in range(candidate.start, candidate.end + 1)
        ]
        d_out = profile.d(candidate.end + 1)
        miss = self.miss_prob(candidate.candidate_id)
        if miss is None:
            return None
        maintenance_slot = len(candidate.maintenance_set) - 1
        maintenance_rate = 0.0
        for member in candidate.tap_relations:
            member_profile = self.profiles.get(member)
            if member_profile is None or not member_profile.ready():
                return None
            maintenance_rate += member_profile.d(maintenance_slot)
        return CacheStatistics(
            segment_d=segment_d,
            segment_c=segment_c,
            d_out=d_out,
            miss_prob=miss,
            maintenance_rate=maintenance_rate,
            key_width=max(1, len(candidate.key_signature)),
            anchor_size=len(candidate.anchor),
        )

    def expected_entries(
        self, candidate: CandidateCache, horizon_seconds: float = 1.0
    ) -> float:
        """Expected steady-state entry count of a candidate's store.

        Appendix A: the Bloom filter's distinct estimate doubles as the
        memory-requirement estimate. ``miss_prob × Wd`` is the distinct
        key count of one estimation window; the store saturates at the
        live key population, which that window's distinct count tracks up
        to the keys it did not sample — the factor 2 covers them (exact
        when the window spans about half the key population, conservative
        beyond). ``horizon_seconds`` is accepted for compatibility but the
        saturation estimate does not grow with time.
        """
        miss = self.miss_prob(candidate.candidate_id)
        if miss is None:
            return 0.0
        return 2.0 * miss * self.config.bloom_window_tuples
