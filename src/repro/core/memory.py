"""Adaptive memory allocation to caches (Section 5).

Memory in a DSMS is partitioned across all active queries, so the caches
chosen by selection may not all fit. Following the paper's modular scheme
we select assuming infinite memory, then admit caches greedily by
**priority** — net benefit per expected byte — until the page budget is
spent. At run time the same priority order decides which caches to drop
if actual usage grows past the budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.candidates import CandidateCache

PAGE_BYTES = 4096


@dataclass(frozen=True)
class CacheDemand:
    """One selected cache's claim on memory."""

    candidate: CandidateCache
    net_benefit: float       # µs/sec saved (benefit − cost)
    expected_bytes: float    # profiler estimate of the store footprint

    @property
    def priority(self) -> float:
        """Net benefit per byte (Section 5)."""
        if self.expected_bytes <= 0:
            return math.inf if self.net_benefit > 0 else 0.0
        return self.net_benefit / self.expected_bytes

    @property
    def expected_pages(self) -> int:
        """The demand rounded up to whole pages."""
        return max(1, math.ceil(self.expected_bytes / PAGE_BYTES))


@dataclass
class AllocationResult:
    """Outcome of one admission round: admitted/rejected caches and pages.

    ``audit`` records the round in admission order as
    ``(verdict, demand)`` pairs (verdict ``"admit"`` or ``"reject"``), so
    the adaptivity decision log can report *why* a selected cache never
    went live — its priority, expected footprint, and the page budget it
    collided with.
    """
    admitted: List[CandidateCache] = field(default_factory=list)
    rejected: List[CandidateCache] = field(default_factory=list)
    pages_used: int = 0
    audit: List[Tuple[str, CacheDemand]] = field(default_factory=list)

    def explain(self) -> List[Dict[str, object]]:
        """The admission round as plain dicts (exporter-friendly)."""
        return [
            {
                "verdict": verdict,
                "candidate_id": demand.candidate.candidate_id,
                "net_benefit": demand.net_benefit,
                "expected_bytes": demand.expected_bytes,
                "expected_pages": demand.expected_pages,
                "priority": demand.priority,
            }
            for verdict, demand in self.audit
        ]


class MemoryAllocator:
    """Greedy page allocation by cache priority."""

    def __init__(self, budget_bytes: Optional[int] = None):
        self.budget_bytes = budget_bytes

    @property
    def budget_pages(self) -> Optional[int]:
        """The byte budget in whole pages (None = unbounded)."""
        if self.budget_bytes is None:
            return None
        return self.budget_bytes // PAGE_BYTES

    def admit(self, demands: Sequence[CacheDemand]) -> AllocationResult:
        """Admit selected caches in priority order until pages run out.

        Shared caches appear once per physical store: callers pass one
        demand per share group (the group's summed net benefit, one
        store's footprint).
        """
        result = AllocationResult()
        budget = self.budget_pages
        # Equal priorities are broken by candidate id: admission order (and
        # therefore the cache plan) must be reproducible across runs and
        # shards, never an artifact of dict/input ordering.
        ordered = sorted(
            demands,
            key=lambda d: (-d.priority, d.candidate.candidate_id),
        )
        for demand in ordered:
            if budget is None:
                result.admitted.append(demand.candidate)
                result.pages_used += demand.expected_pages
                result.audit.append(("admit", demand))
                continue
            if result.pages_used + demand.expected_pages <= budget:
                result.admitted.append(demand.candidate)
                result.pages_used += demand.expected_pages
                result.audit.append(("admit", demand))
            else:
                result.rejected.append(demand.candidate)
                result.audit.append(("reject", demand))
        return result

    def over_budget(self, used_bytes: int) -> bool:
        """True if actual usage exceeds the configured budget."""
        return self.budget_bytes is not None and used_bytes > self.budget_bytes

    def victims(
        self,
        priorities: Dict[str, float],
        usage: Dict[str, int],
        used_bytes: int,
    ) -> List[str]:
        """Lowest-priority caches to drop until usage fits the budget."""
        if not self.over_budget(used_bytes):
            return []
        excess = used_bytes - (self.budget_bytes or 0)
        chosen: List[str] = []
        # Ties on priority evict the lexicographically smallest candidate
        # id first — same reproducibility contract as admission.
        for candidate_id in sorted(
            priorities, key=lambda cid: (priorities[cid], cid)
        ):
            if excess <= 0:
                break
            chosen.append(candidate_id)
            excess -= usage.get(candidate_id, 0)
        return chosen
