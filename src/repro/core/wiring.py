"""Physical wiring of candidate caches into executor pipelines.

Shared between the adaptive re-optimizer and the static plan runner: given
a :class:`CandidateCache`, build (or reuse, for shared groups) the physical
cache, attach the CacheLookup in the owner pipeline and one CacheUpdate tap
per maintained relation, and undo all of it on removal. Dropping a cache is
always consistent — caches make no completeness promise — so plan switching
costs stay negligible (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.caching.cache import Cache
from repro.caching.global_cache import GlobalCache
from repro.caching.key import CacheKey
from repro.core.candidates import CandidateCache
from repro.errors import PlanError
from repro.mjoin.executor import MJoinExecutor
from repro.operators.cache_ops import CacheLookup, CacheUpdate


@dataclass
class WiredCache:
    """A live cache: the physical store plus its attachment points."""

    candidate: CandidateCache
    cache: Cache
    lookup: CacheLookup
    tap_pipelines: Tuple[str, ...]
    lookup_attached: bool = True


class WindowWitness:
    """Owner-witness count with no owner↔segment predicate.

    Every owner row witnesses every composite, so a delete consumes its
    entry only when the owner window is emptying. A class (not a
    closure) so checkpointed engines pickle.
    """

    def __init__(self, relation):
        self.relation = relation

    def __call__(self, probe_key: tuple) -> int:
        return len(self.relation)


class OwnerWitnessCounter:
    """Counts live owner rows whose key-linked attributes match a probe.

    A class (not a closure) so checkpointed engines pickle.
    """

    def __init__(self, relation, first_index, first_attr, rest):
        self.relation = relation
        self.first_index = first_index
        self.first_attr = first_attr
        self.rest = rest

    def __call__(self, probe_key: tuple) -> int:
        rows = self.relation.matching(
            self.first_attr, probe_key[self.first_index]
        )
        if not self.rest:
            return len(rows)
        return sum(
            1
            for row in rows
            if all(
                row.values[position] == probe_key[index]
                for index, position in self.rest
            )
        )


class CacheWiring:
    """Creates, shares, attaches, and detaches physical caches."""

    def __init__(self, executor: MJoinExecutor):
        self.executor = executor
        # Physical stores shared across pipelines, keyed by share token.
        self._instances: Dict[Tuple, Cache] = {}
        self._instance_users: Dict[Tuple, int] = {}
        self.wired: Dict[str, WiredCache] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _make_key(self, candidate: CandidateCache) -> CacheKey:
        return CacheKey(
            self.executor.graph, candidate.prefix, candidate.segment
        )

    def _physical_cache(
        self, candidate: CandidateCache, buckets: int
    ) -> Cache:
        token = candidate.share_token
        if token in self._instances:
            return self._instances[token]
        cache = self._build_cache(candidate, buckets)
        self._instances[token] = cache
        return cache

    def _build_cache(self, candidate: CandidateCache, buckets: int) -> Cache:
        """Construct the physical store for a candidate (no registration)."""
        key = self._make_key(candidate)
        if candidate.is_global:
            cache = GlobalCache(
                name=candidate.candidate_id,
                owner_pipeline=candidate.owner,
                segment=candidate.segment,
                key=key,
                anchor=candidate.anchor,
                buckets=buckets,
            )
        else:
            cache = Cache(
                name=candidate.candidate_id,
                owner_pipeline=candidate.owner,
                segment=candidate.segment,
                key=key,
                buckets=buckets,
            )
        return cache

    def _owner_witness_counter(self, candidate: CandidateCache, key: CacheKey):
        """Build the last-owner-witness check for owner-anchored globals.

        Counts live owner rows whose key-linked attributes match a probe
        key; a delete consumes its entry only when this drops to the dying
        row itself. None for prefix caches and globals not anchored on
        their probing relation.
        """
        if not candidate.is_global or candidate.owner not in candidate.anchor:
            return None
        owner = candidate.owner
        relation = self.executor.relations[owner]
        owner_slots = [
            (index, position)
            for index, (rel, position) in enumerate(key.prefix_slots)
            if rel == owner
        ]
        if not owner_slots:
            # No direct owner↔segment predicate: every owner row witnesses
            # every composite, so consume only when the window is emptying.
            return WindowWitness(relation)
        first_index, first_position = owner_slots[0]
        first_attr = relation.schema.attributes[first_position]
        rest = owner_slots[1:]
        return OwnerWitnessCounter(relation, first_index, first_attr, rest)

    # ------------------------------------------------------------------
    # store acquisition hooks (overridden by the multi-query wiring)
    # ------------------------------------------------------------------
    def _acquire_store(
        self, candidate: CandidateCache, buckets: int
    ) -> Tuple[Cache, bool]:
        """Return ``(store, attach_taps)`` for a candidate being wired.

        The base wiring shares stores within one query by share token and
        makes the group's first user attach the maintenance taps. The
        multi-query wiring additionally consults the inter-query cache
        directory, where the tap host may be a *different query*.
        """
        token = candidate.share_token
        first_user = self._instance_users.get(token, 0) == 0
        return self._physical_cache(candidate, buckets), first_user

    def _release_store(self, wired: WiredCache) -> bool:
        """Tear down a store whose local users all detached.

        Returns True when the physical store was actually dropped — the
        multi-query wiring returns False while other queries still
        reference it (their bytes must survive a tenant's removal).
        """
        self._detach_taps(wired.cache, wired.tap_pipelines)
        wired.cache.drop_all()
        return True

    def _attach_taps(
        self, cache: Cache, tap_slot: int, maintained: Tuple[str, ...]
    ) -> None:
        for member in maintained:
            pipeline = self.executor.pipelines[member]
            pipeline.attach_update(CacheUpdate(cache, tap_slot, member))

    def _detach_taps(self, cache: Cache, maintained: Tuple[str, ...]) -> None:
        for member in maintained:
            pipeline = self.executor.pipelines.get(member)
            if pipeline is not None:
                pipeline.detach_updates(cache.name)

    # ------------------------------------------------------------------
    # attach / detach
    # ------------------------------------------------------------------
    def attach(
        self, candidate: CandidateCache, buckets: int = 256
    ) -> WiredCache:
        """Wire a candidate in: lookup + maintenance taps.

        A second candidate of the same share group reuses the physical
        store and its existing taps (maintenance is paid once per group,
        which is the whole point of sharing).
        """
        if candidate.candidate_id in self.wired:
            return self.wired[candidate.candidate_id]
        token = candidate.share_token
        cache, attach_taps = self._acquire_store(candidate, buckets)
        maintained = tuple(sorted(candidate.tap_relations))
        tap_slot = len(candidate.maintenance_set) - 1
        if attach_taps:
            self._attach_taps(cache, tap_slot, maintained)
        lookup_key = self._make_key(candidate)
        lookup = CacheLookup(
            cache,
            candidate.start,
            candidate.end,
            key=lookup_key,
            owner_witness_count=self._owner_witness_counter(
                candidate, lookup_key
            ),
        )
        self.executor.pipelines[candidate.owner].attach_lookup(lookup)
        self._instance_users[token] = self._instance_users.get(token, 0) + 1
        wired = WiredCache(
            candidate=candidate,
            cache=cache,
            lookup=lookup,
            tap_pipelines=maintained,
        )
        self.wired[candidate.candidate_id] = wired
        ctx = self.executor.ctx
        ctx.metrics.caches_added += 1
        if ctx.obs.enabled:
            ctx.obs.tracer.emit(
                "cache_attach",
                ctx.clock.now_us,
                candidate_id=candidate.candidate_id,
                owner=candidate.owner,
                segment=list(candidate.segment),
                is_global=candidate.is_global,
                shared_store=not attach_taps,
                taps=list(maintained),
            )
        return wired

    def suspend_lookup(self, candidate_id: str) -> None:
        """Stop probing but keep maintaining (the 'profiled' used cache of
        Section 4.5 improvement b: the store stays warm and consistent)."""
        wired = self.wired[candidate_id]
        if wired.lookup_attached:
            self.executor.pipelines[wired.candidate.owner].detach_lookup(
                wired.cache.name
            )
            wired.lookup_attached = False

    def resume_lookup(self, candidate_id: str) -> None:
        """Re-attach a suspended lookup (the store stayed consistent)."""
        wired = self.wired[candidate_id]
        if not wired.lookup_attached:
            self.executor.pipelines[wired.candidate.owner].attach_lookup(
                wired.lookup
            )
            wired.lookup_attached = True

    def detach(self, candidate_id: str) -> None:
        """Fully unwire a candidate; drops the store once unshared."""
        wired = self.wired.pop(candidate_id, None)
        if wired is None:
            return
        if wired.lookup_attached:
            self.executor.pipelines[wired.candidate.owner].detach_lookup(
                wired.cache.name
            )
        token = wired.candidate.share_token
        self._instance_users[token] -= 1
        store_dropped = False
        if self._instance_users[token] == 0:
            del self._instances[token]
            del self._instance_users[token]
            store_dropped = self._release_store(wired)
        ctx = self.executor.ctx
        ctx.metrics.caches_dropped += 1
        if ctx.obs.enabled:
            ctx.obs.tracer.emit(
                "cache_detach",
                ctx.clock.now_us,
                candidate_id=candidate_id,
                owner=wired.candidate.owner,
                store_dropped=store_dropped,
            )

    def detach_all(self) -> None:
        """Unwire every cache (full plan teardown)."""
        for candidate_id in list(self.wired):
            self.detach(candidate_id)

    def drop_touching(self, relation: str) -> List[str]:
        """Detach every cache probed in or maintained through ``relation``'s
        pipeline (Section 4.5 step 5: its ordering changed)."""
        dropped = []
        for candidate_id, wired in list(self.wired.items()):
            if (
                wired.candidate.owner == relation
                or relation in wired.candidate.maintenance_set
            ):
                self.detach(candidate_id)
                dropped.append(candidate_id)
        return dropped

    def memory_bytes(self) -> int:
        """Bytes across all distinct physical stores (shared counted once)."""
        return sum(cache.memory_bytes for cache in self._instances.values())

    def used_candidates(self) -> List[CandidateCache]:
        """Candidates whose lookups are currently attached."""
        return [
            w.candidate for w in self.wired.values() if w.lookup_attached
        ]
