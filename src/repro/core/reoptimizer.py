"""The Re-optimizer of Figure 4: adaptive cache selection (Section 4.5).

Candidate caches cycle through three states:

* **used** — wired into the pipelines (lookup + maintenance taps);
* **profiled** — not probed, but a Bloom lookup estimates ``miss_prob``
  and the shared Profiler supplies ``d``/``c`` statistics;
* **unused** — neither.

Against the simplified algorithm the paper lists three refinements, all
implemented here:

a. **immediate drop** — ``benefit − cost`` of every used cache is
   monitored continuously (cheap: observed miss probability plus existing
   profile statistics) and a cache whose net goes negative is unwired at
   once, while newly *useful* caches wait for the next re-optimization;
b. **keep warm while profiling** — a used cache is moved to the profiled
   state only when an unused subset candidate needs its probe stream; its
   maintenance taps stay attached so the store remains consistent and
   resuming costs nothing;
c. **change threshold** — the offline algorithm runs only when some
   benefit or cost drifted by ≥ ``p`` (default 20%) since the last
   selection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.core import cost_model
from repro.obs import decisions as decisions_log
from repro.core.candidates import (
    CandidateCache,
    enumerate_candidates,
    shared_groups,
)
from repro.core.memory import CacheDemand, MemoryAllocator
from repro.core.profiler import Profiler
from repro.core.selection import SelectionProblem, select
from repro.core.wiring import CacheWiring
from repro.mjoin.executor import MJoinExecutor


class CandidateState(Enum):
    """The three candidate states of Section 4.5."""
    USED = "used"
    PROFILED = "profiled"
    UNUSED = "unused"


@dataclass
class ReoptimizerConfig:
    """Section 7.1 defaults: I = 2 s, W = 10 (in the Profiler), p = 20%."""

    reopt_interval_seconds: float = 2.0
    reopt_interval_updates: Optional[int] = None  # overrides seconds if set
    change_threshold: float = 0.20
    global_quota: int = 6            # m of Section 6
    selection_method: str = "auto"
    exhaustive_limit: int = 16
    monitor_every_updates: int = 200
    profiling_phase_updates: int = 640  # ≈ W × Wd probe-stream tuples
    min_bucket_count: int = 64
    max_bucket_count: int = 65536
    memory_budget_bytes: Optional[int] = None
    entry_horizon_seconds: float = 1.0


class Reoptimizer:
    """Keeps the optimal nonoverlapping cache subset wired as stats drift."""

    # Set at runtime by the sharded worker (repro.parallel.shard) when a
    # run is coordinated: selection authority moves to the cross-shard
    # EpochCoordinator and local cycles are disabled — the shard only
    # profiles, snapshots, and applies pushed plans. A class-level default
    # keeps engines restored from pre-coordination checkpoints valid.
    coordinated = False

    def __init__(
        self,
        executor: MJoinExecutor,
        profiler: Profiler,
        config: Optional[ReoptimizerConfig] = None,
        wiring: Optional[CacheWiring] = None,
        allocator: Optional[MemoryAllocator] = None,
    ):
        self.executor = executor
        self.profiler = profiler
        self.config = config if config is not None else ReoptimizerConfig()
        # Injectable for multi-query engines: a wiring that consults the
        # inter-query cache directory and an allocator that routes through
        # the global memory arbiter.
        self.wiring = wiring if wiring is not None else CacheWiring(executor)
        self.allocator = (
            allocator
            if allocator is not None
            else MemoryAllocator(self.config.memory_budget_bytes)
        )
        self.candidates: Dict[str, CandidateCache] = {}
        self.states: Dict[str, CandidateState] = {}
        self._last_signature: Dict[str, Tuple[float, float]] = {}
        self._last_reopt_at: float = 0.0
        self._last_reopt_updates: int = 0
        self._last_monitor_updates: int = 0
        self._profiling_until_updates: Optional[int] = None
        self.bootstrap()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bootstrap(self) -> None:
        """Step 1: enumerate candidates; everything starts out profiled."""
        self.candidates = {
            c.candidate_id: c
            for c in enumerate_candidates(
                self.executor.graph,
                self.executor.orders(),
                global_quota=self.config.global_quota,
            )
        }
        self.states = {
            cid: CandidateState.PROFILED for cid in self.candidates
        }
        for candidate in self.candidates.values():
            self.profiler.install_bloom(candidate)

    def on_reorder(self, owner: str) -> None:
        """Step 5: a pipeline was reordered — drop affected caches and
        recompute candidates (the executor already swapped the pipeline)."""
        self.wiring.drop_touching(owner)
        self.profiler.rebuild_profiles(owner)
        previous = self.candidates
        self.candidates = {
            c.candidate_id: c
            for c in enumerate_candidates(
                self.executor.graph,
                self.executor.orders(),
                global_quota=self.config.global_quota,
            )
        }
        # Keep profiling history for candidates unaffected by the reorder;
        # candidates touching the reordered pipeline start over.
        for candidate_id in list(self.states):
            candidate = previous.get(candidate_id)
            stale = (
                candidate_id not in self.candidates
                or candidate is None
                or candidate.owner == owner
                or owner in candidate.maintenance_set
            )
            if stale:
                self.states.pop(candidate_id, None)
                self.profiler.miss_windows.pop(candidate_id, None)
                self.profiler.remove_bloom(candidate_id)
                self._last_signature.pop(candidate_id, None)
        for candidate_id, candidate in self.candidates.items():
            if candidate_id in self.wiring.wired:
                self.states[candidate_id] = CandidateState.USED
                self.profiler.remove_bloom(candidate_id)
            elif candidate_id not in self.states:
                self.states[candidate_id] = CandidateState.PROFILED
                self.profiler.install_bloom(candidate)

    # ------------------------------------------------------------------
    # coherence-auditor coordination (repro.faults.auditor)
    # ------------------------------------------------------------------
    def on_cache_quarantined(self, candidate_id: str) -> None:
        """The auditor detached a poisoned cache behind our back: return
        the candidate to the profiled pool (bloom reinstalled) so a later
        selection cycle may legitimately rebuild it."""
        candidate = self.candidates.get(candidate_id)
        if candidate is None:
            return
        if self.states.get(candidate_id) is CandidateState.USED:
            self.states[candidate_id] = CandidateState.PROFILED
            self.profiler.install_bloom(candidate)

    def on_cache_rebuilt(self, candidate_id: str) -> None:
        """The auditor re-attached a quarantined candidate: mirror the
        selection bookkeeping so states stay consistent with the wiring."""
        if candidate_id not in self.candidates:
            return
        if self.states.get(candidate_id) is not CandidateState.USED:
            self.states[candidate_id] = CandidateState.USED
            self.profiler.remove_bloom(candidate_id)

    # ------------------------------------------------------------------
    # per-update hook
    # ------------------------------------------------------------------
    def after_update(self) -> None:
        """Called once per processed update; drives monitoring and phases."""
        if self.coordinated:
            # Under global coordination every selection decision — adds,
            # drops, memory admission — comes from the coordinator's plan
            # pushes; running local cycles here would fight them.
            return
        metrics = self.executor.ctx.metrics
        updates = metrics.updates_processed
        if (
            updates - self._last_monitor_updates
            >= self.config.monitor_every_updates
        ):
            self._last_monitor_updates = updates
            self._monitor_used()
        if self._profiling_until_updates is not None:
            if updates >= self._profiling_until_updates:
                self._profiling_until_updates = None
                self.reoptimize()
            return
        if self._interval_elapsed():
            self._begin_cycle()

    def _interval_elapsed(self) -> bool:
        if self.config.reopt_interval_updates is not None:
            return (
                self.executor.ctx.metrics.updates_processed
                - self._last_reopt_updates
                >= self.config.reopt_interval_updates
            )
        return (
            self.executor.ctx.clock.now_seconds - self._last_reopt_at
            >= self.config.reopt_interval_seconds
        )

    def _begin_cycle(self) -> None:
        """Start a re-optimization cycle, with a profiling phase first when
        some used cache shadows a candidate's probe stream (improvement b).
        """
        self._last_reopt_at = self.executor.ctx.clock.now_seconds
        self._last_reopt_updates = (
            self.executor.ctx.metrics.updates_processed
        )
        self.profiler.reactivate_blooms()
        # Step 4 of the simplified algorithm: every candidate returns to
        # the profiled state at each interval, so caches dropped by the
        # continuous monitor are reconsidered once conditions change.
        for candidate_id, state in self.states.items():
            if state is CandidateState.UNUSED:
                self.states[candidate_id] = CandidateState.PROFILED
                candidate = self.candidates.get(candidate_id)
                if candidate is not None:
                    self.profiler.install_bloom(candidate)
        shadowing = self._shadowing_used_caches()
        if shadowing:
            for candidate_id in shadowing:
                self.wiring.suspend_lookup(candidate_id)
            self._profiling_until_updates = (
                self.executor.ctx.metrics.updates_processed
                + self.config.profiling_phase_updates
            )
        else:
            self.reoptimize()

    def _shadowing_used_caches(self) -> List[str]:
        """Used caches whose bypass hides a profiled candidate's bloom."""
        shadowing = []
        for candidate_id, wired in self.wiring.wired.items():
            if not wired.lookup_attached:
                continue
            used = wired.candidate
            for other_id, state in self.states.items():
                if state is not CandidateState.PROFILED:
                    continue
                other = self.candidates.get(other_id)
                if other is None or other.owner != used.owner:
                    continue
                if used.start < other.start <= used.end:
                    shadowing.append(candidate_id)
                    break
        return shadowing

    # ------------------------------------------------------------------
    # improvement (a): continuous monitoring of used caches
    # ------------------------------------------------------------------
    def _monitor_used(self) -> None:
        ctx = self.executor.ctx
        for candidate_id, wired in list(self.wiring.wired.items()):
            if not wired.lookup_attached:
                continue
            self.profiler.harvest_used_cache(candidate_id, wired.cache)
            stats = self.profiler.statistics_for(wired.candidate)
            if stats is None:
                continue
            net = cost_model.net_benefit(stats, ctx.cost_model)
            if net < 0:
                ctx.obs.decisions.record(
                    ctx.clock.now_us,
                    decisions_log.MONITOR_DROP,
                    candidate_id,
                    reason="continuous monitor: benefit - cost went negative",
                    reopt_seq=ctx.metrics.reoptimizations,
                    stats=stats,
                    benefit=cost_model.benefit(stats, ctx.cost_model),
                    cost=cost_model.cost(stats, ctx.cost_model),
                    memory_used_bytes=self.wiring.memory_bytes(),
                    memory_budget_bytes=self.allocator.budget_bytes,
                )
                self.wiring.detach(candidate_id)
                self.states[candidate_id] = CandidateState.UNUSED

    # ------------------------------------------------------------------
    # the re-optimization step itself
    # ------------------------------------------------------------------
    def reoptimize(self, force: bool = False) -> List[CandidateCache]:
        """Run offline selection on current estimates and apply the diff."""
        ctx = self.executor.ctx
        cm = ctx.cost_model
        metrics = ctx.metrics
        obs = ctx.obs
        stats: Dict[str, cost_model.CacheStatistics] = {}
        for candidate_id, wired in self.wiring.wired.items():
            self.profiler.harvest_used_cache(candidate_id, wired.cache)
        for candidate_id, candidate in self.candidates.items():
            estimate = self.profiler.statistics_for(candidate)
            if estimate is not None:
                stats[candidate_id] = estimate
        if not stats:
            self._resume_all_suspended()
            return self._currently_used()
        signature = {
            cid: (
                cost_model.benefit(s, cm),
                cost_model.cost(s, cm),
            )
            for cid, s in stats.items()
        }
        if not force and not self._changed_significantly(signature):
            if obs.enabled:
                obs.tracer.emit(
                    "reoptimize",
                    ctx.clock.now_us,
                    applied=False,
                    reason="below change threshold",
                    candidates_estimated=len(stats),
                    used=sorted(
                        c.candidate_id for c in self._currently_used()
                    ),
                )
            self._resume_all_suspended()
            return self._currently_used()
        self._last_signature = signature
        metrics.reoptimizations += 1
        reopt_seq = metrics.reoptimizations
        ctx.clock.charge(
            cm.reoptimize_base + cm.reoptimize_candidate * len(stats)
        )
        problem = self._build_problem(stats, cm)
        selected = select(
            problem,
            method=self.config.selection_method,
            exhaustive_limit=self.config.exhaustive_limit,
        )
        admitted = self._allocate_memory(selected, stats, cm, reopt_seq)
        previously_used = {
            c.candidate_id for c in self.wiring.used_candidates()
        }
        self._apply(admitted)
        self._record_selection(
            stats, signature, admitted, previously_used, reopt_seq
        )
        return admitted

    def _record_selection(
        self,
        stats: Dict[str, cost_model.CacheStatistics],
        signature: Dict[str, Tuple[float, float]],
        admitted: List[CandidateCache],
        previously_used: set,
        reopt_seq: int,
    ) -> None:
        """Log one re-optimization's add/drop decisions and trace event."""
        ctx = self.executor.ctx
        now_us = ctx.clock.now_us
        memory_used = self.wiring.memory_bytes()
        budget = self.allocator.budget_bytes
        target = {c.candidate_id for c in admitted}
        added = sorted(target - previously_used)
        dropped = sorted(previously_used - target)
        for candidate_id in added:
            benefit, cost = signature.get(candidate_id, (None, None))
            ctx.obs.decisions.record(
                now_us,
                decisions_log.ATTACH,
                candidate_id,
                reason="selected by re-optimization",
                reopt_seq=reopt_seq,
                stats=stats.get(candidate_id),
                benefit=benefit,
                cost=cost,
                memory_used_bytes=memory_used,
                memory_budget_bytes=budget,
            )
        for candidate_id in dropped:
            benefit, cost = signature.get(candidate_id, (None, None))
            ctx.obs.decisions.record(
                now_us,
                decisions_log.DETACH,
                candidate_id,
                reason="deselected by re-optimization",
                reopt_seq=reopt_seq,
                stats=stats.get(candidate_id),
                benefit=benefit,
                cost=cost,
                memory_used_bytes=memory_used,
                memory_budget_bytes=budget,
            )
        if ctx.obs.enabled:
            ctx.obs.tracer.emit(
                "reoptimize",
                now_us,
                applied=True,
                reopt_seq=reopt_seq,
                candidates_estimated=len(stats),
                used=sorted(target),
                added=added,
                dropped=dropped,
                memory_used_bytes=memory_used,
                memory_budget_bytes=budget,
            )

    def _changed_significantly(
        self, signature: Dict[str, Tuple[float, float]]
    ) -> bool:
        """Improvement (c): did any benefit/cost drift ≥ p since last time?"""
        if not self._last_signature:
            return True
        threshold = self.config.change_threshold
        for candidate_id, (new_benefit, new_cost) in signature.items():
            state = self.states.get(candidate_id)
            if state is CandidateState.UNUSED:
                continue
            old = self._last_signature.get(candidate_id)
            if old is None:
                return True
            for new, previous in ((new_benefit, old[0]), (new_cost, old[1])):
                scale = max(abs(previous), 1e-9)
                if abs(new - previous) / scale > threshold:
                    return True
        return False

    def _build_problem(
        self, stats: Dict[str, cost_model.CacheStatistics], cm
    ) -> SelectionProblem:
        live = [
            self.candidates[cid] for cid in stats if cid in self.candidates
        ]
        benefit = {
            cid: cost_model.benefit(stats[cid], cm) for cid in stats
        }
        proc = {cid: cost_model.proc(stats[cid], cm) for cid in stats}
        group_cost: Dict[Tuple, float] = {}
        for token, members in shared_groups(live).items():
            # All members of a group share one maintenance stream; any
            # member's estimate identifies it.
            group_cost[token] = cost_model.cost(
                stats[members[0].candidate_id], cm
            )
        operator_cost = {}
        for owner, profile in self.profiler.profiles.items():
            for slot in range(profile.slots):
                operator_cost[(owner, slot)] = profile.d(slot) * profile.c(
                    slot
                )
        return SelectionProblem(
            candidates=live,
            benefit=benefit,
            proc=proc,
            group_cost=group_cost,
            operator_cost=operator_cost,
        )

    def _allocate_memory(
        self,
        selected: List[CandidateCache],
        stats: Dict[str, cost_model.CacheStatistics],
        cm,
        reopt_seq: int = 0,
    ) -> List[CandidateCache]:
        """Section 5: admit the selection greedily by net benefit per byte."""
        if self.allocator.budget_bytes is None:
            return selected
        groups = shared_groups(selected)
        demands = []
        members_of: Dict[Tuple, List[CandidateCache]] = {}
        for token, members in groups.items():
            net = sum(
                cost_model.benefit(stats[c.candidate_id], cm)
                for c in members
            ) - cost_model.cost(stats[members[0].candidate_id], cm)
            expected = self._expected_bytes(members[0], stats, cm)
            demands.append(
                CacheDemand(
                    candidate=members[0],
                    net_benefit=net,
                    expected_bytes=expected,
                )
            )
            members_of[token] = members
        result = self.allocator.admit(demands)
        ctx = self.executor.ctx
        for verdict, demand in result.audit:
            if verdict != "reject":
                continue
            for member in members_of[demand.candidate.share_token]:
                candidate_id = member.candidate_id
                member_stats = stats.get(candidate_id)
                ctx.obs.decisions.record(
                    ctx.clock.now_us,
                    decisions_log.MEMORY_REJECT,
                    candidate_id,
                    reason=(
                        "selected but denied pages "
                        f"({result.pages_used} pages already committed)"
                    ),
                    reopt_seq=reopt_seq,
                    stats=member_stats,
                    benefit=(
                        cost_model.benefit(member_stats, cm)
                        if member_stats is not None else None
                    ),
                    cost=(
                        cost_model.cost(member_stats, cm)
                        if member_stats is not None else None
                    ),
                    memory_used_bytes=self.wiring.memory_bytes(),
                    memory_budget_bytes=self.allocator.budget_bytes,
                    expected_bytes=demand.expected_bytes,
                )
        admitted: List[CandidateCache] = []
        for representative in result.admitted:
            admitted.extend(members_of[representative.share_token])
        return admitted

    def _expected_bytes(self, candidate, stats, cm) -> float:
        entries = self.profiler.expected_entries(
            candidate, self.config.entry_horizon_seconds
        )
        return cost_model.expected_memory_bytes(
            stats[candidate.candidate_id],
            cm,
            expected_entries=entries,
            segment_size=len(candidate.segment),
        )

    def _apply(self, selected: List[CandidateCache]) -> None:
        target = {c.candidate_id for c in selected}
        for candidate_id in list(self.wiring.wired):
            if candidate_id not in target:
                self.wiring.detach(candidate_id)
                self.states[candidate_id] = CandidateState.PROFILED
                candidate = self.candidates.get(candidate_id)
                if candidate is not None:
                    self.profiler.install_bloom(candidate)
        for candidate in selected:
            if candidate.candidate_id in self.wiring.wired:
                self.wiring.resume_lookup(candidate.candidate_id)
            else:
                self.wiring.attach(
                    candidate, buckets=self._bucket_estimate(candidate)
                )
                self.profiler.remove_bloom(candidate.candidate_id)
            self.states[candidate.candidate_id] = CandidateState.USED

    def apply_plan(self, plan) -> None:
        """Apply a coordinator-pushed :class:`~repro.parallel.adaptivity.
        CachePlan`: wire exactly the plan's candidate set.

        The cross-shard twin of :meth:`_apply`, driven by the merged
        global statistics instead of local estimates. Candidates the
        plan names that this shard does not know (its ordering diverged)
        are skipped; bucket counts come from the plan's global entry
        estimate, falling back to the local one. Idempotent — carried-
        over plans re-apply as no-ops on the wiring.
        """
        ctx = self.executor.ctx
        cm = ctx.cost_model
        buckets = dict(plan.buckets)
        target_ids = [
            cid for cid in plan.candidate_ids if cid in self.candidates
        ]
        target = set(target_ids)
        previously_used = {
            c.candidate_id for c in self.wiring.used_candidates()
        }
        ctx.metrics.reoptimizations += 1
        reopt_seq = ctx.metrics.reoptimizations
        ctx.clock.charge(cm.reoptimize_base)
        self.profiler.reactivate_blooms()
        for candidate_id in list(self.wiring.wired):
            if candidate_id not in target:
                self.wiring.detach(candidate_id)
                self.states[candidate_id] = CandidateState.PROFILED
                candidate = self.candidates.get(candidate_id)
                if candidate is not None:
                    self.profiler.install_bloom(candidate)
        for candidate_id in target_ids:
            candidate = self.candidates[candidate_id]
            if candidate_id in self.wiring.wired:
                self.wiring.resume_lookup(candidate_id)
            else:
                self.wiring.attach(
                    candidate,
                    buckets=buckets.get(
                        candidate_id, self._bucket_estimate(candidate)
                    ),
                )
                self.profiler.remove_bloom(candidate_id)
            self.states[candidate_id] = CandidateState.USED
        now_us = ctx.clock.now_us
        memory_used = self.wiring.memory_bytes()
        for candidate_id in sorted(target - previously_used):
            ctx.obs.decisions.record(
                now_us,
                decisions_log.ATTACH,
                candidate_id,
                reason=f"coordinator plan push (epoch {plan.epoch})",
                reopt_seq=reopt_seq,
                memory_used_bytes=memory_used,
                memory_budget_bytes=self.allocator.budget_bytes,
            )
        for candidate_id in sorted(previously_used - target):
            ctx.obs.decisions.record(
                now_us,
                decisions_log.DETACH,
                candidate_id,
                reason=f"coordinator plan push (epoch {plan.epoch})",
                reopt_seq=reopt_seq,
                memory_used_bytes=memory_used,
                memory_budget_bytes=self.allocator.budget_bytes,
            )
        if ctx.obs.enabled:
            ctx.obs.tracer.emit(
                "plan_push",
                now_us,
                epoch=plan.epoch,
                applied=plan.applied,
                used=sorted(target),
                added=sorted(target - previously_used),
                dropped=sorted(previously_used - target),
            )

    def _bucket_estimate(self, candidate: CandidateCache) -> int:
        """Section 3.3: bucket count from the expected entry count."""
        entries = self.profiler.expected_entries(
            candidate, self.config.entry_horizon_seconds
        )
        wanted = max(self.config.min_bucket_count, int(entries * 2))
        return min(self.config.max_bucket_count, 1 << (wanted - 1).bit_length())

    def _resume_all_suspended(self) -> None:
        for candidate_id, wired in self.wiring.wired.items():
            if not wired.lookup_attached:
                self.wiring.resume_lookup(candidate_id)

    def _currently_used(self) -> List[CandidateCache]:
        return self.wiring.used_candidates()

    # ------------------------------------------------------------------
    # runtime memory enforcement (Section 5 / Figure 13)
    # ------------------------------------------------------------------
    def drop_candidate(self, candidate_id: str, reason: str) -> bool:
        """Evict one wired cache on an external arbiter's verdict.

        The multi-query engine's global enforcement pass picks victims
        across *all* tenants; each victim is unwired through its own
        query's re-optimizer so candidate states, blooms, and the decision
        log stay consistent. Returns False when the candidate is not
        currently wired.
        """
        wired = self.wiring.wired.get(candidate_id)
        if wired is None:
            return False
        ctx = self.executor.ctx
        cm = ctx.cost_model
        stats = self.profiler.statistics_for(wired.candidate)
        ctx.obs.decisions.record(
            ctx.clock.now_us,
            decisions_log.MEMORY_EVICT,
            candidate_id,
            reason=reason,
            reopt_seq=ctx.metrics.reoptimizations,
            stats=stats,
            benefit=(
                cost_model.benefit(stats, cm) if stats is not None else None
            ),
            cost=(
                cost_model.cost(stats, cm) if stats is not None else None
            ),
            memory_used_bytes=self.wiring.memory_bytes(),
            memory_budget_bytes=self.allocator.budget_bytes,
            expected_bytes=float(wired.cache.memory_bytes),
        )
        self.wiring.detach(candidate_id)
        self.states[candidate_id] = CandidateState.PROFILED
        candidate = self.candidates.get(candidate_id)
        if candidate is not None:
            self.profiler.install_bloom(candidate)
        return True

    def enforce_memory(self) -> List[str]:
        """Drop lowest-priority caches while actual usage exceeds budget."""
        used_bytes = self.wiring.memory_bytes()
        if not self.allocator.over_budget(used_bytes):
            return []
        ctx = self.executor.ctx
        cm = ctx.cost_model
        priorities: Dict[str, float] = {}
        usage: Dict[str, int] = {}
        victim_stats: Dict[str, Optional[cost_model.CacheStatistics]] = {}
        for candidate_id, wired in self.wiring.wired.items():
            stats = self.profiler.statistics_for(wired.candidate)
            victim_stats[candidate_id] = stats
            memory = max(1, wired.cache.memory_bytes)
            usage[candidate_id] = wired.cache.memory_bytes
            if stats is None:
                priorities[candidate_id] = 0.0
            else:
                priorities[candidate_id] = (
                    cost_model.net_benefit(stats, cm) / memory
                )
        victims = self.allocator.victims(priorities, usage, used_bytes)
        if victims and ctx.obs.enabled:
            ctx.obs.tracer.emit(
                "memory_pressure",
                ctx.clock.now_us,
                used_bytes=used_bytes,
                budget_bytes=self.allocator.budget_bytes,
                victims=list(victims),
            )
        for candidate_id in victims:
            stats = victim_stats.get(candidate_id)
            ctx.obs.decisions.record(
                ctx.clock.now_us,
                decisions_log.MEMORY_EVICT,
                candidate_id,
                reason=(
                    f"memory pressure: {used_bytes} bytes in use over "
                    f"budget {self.allocator.budget_bytes}"
                ),
                reopt_seq=ctx.metrics.reoptimizations,
                stats=stats,
                benefit=(
                    cost_model.benefit(stats, cm)
                    if stats is not None else None
                ),
                cost=(
                    cost_model.cost(stats, cm)
                    if stats is not None else None
                ),
                memory_used_bytes=used_bytes,
                memory_budget_bytes=self.allocator.budget_bytes,
                expected_bytes=float(usage.get(candidate_id, 0)),
            )
            self.wiring.detach(candidate_id)
            self.states[candidate_id] = CandidateState.PROFILED
            candidate = self.candidates.get(candidate_id)
            if candidate is not None:
                self.profiler.install_bloom(candidate)
        return victims
