"""The cache cost model of Section 4.1 under the unit-time metric.

For a cache ``Cijk`` over the segment ``./ij … ./ik`` of ``∆Ri``'s
pipeline, with ``dil`` tuples/unit-time entering segment operator ``l`` at
``cil`` cost each, ``d_out`` tuples/unit-time leaving the segment, and
``d_probe = dij``:

    benefit(C) = Σ dil·cil − d_probe·probe_cost
                 − miss_prob·(Σ dil·cil + d_out·update_cost)
    cost(C)    = update_cost · maintenance_rate
    proc(C)    = d_probe·probe_cost
                 + miss_prob·(Σ dil·cil + d_out·update_cost)

where ``maintenance_rate = Σ_{l∈segment} d_{l,k−j+1}`` — the rate of
segment-join deltas arriving through the member pipelines, available for
free thanks to the prefix invariant. ``probe_cost`` and ``update_cost``
derive from the engine cost model, the constant key width, and the average
number of tuples per cached entry ``d_out / d_probe`` (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.engine.clock import CostModel


@dataclass(frozen=True)
class CacheStatistics:
    """Everything the cost model needs about one candidate cache."""

    segment_d: Sequence[float]   # dil for each segment operator, tuples/sec
    segment_c: Sequence[float]   # cil, microseconds per tuple
    d_out: float                 # tuples/sec leaving the segment
    miss_prob: float             # estimated or observed miss probability
    maintenance_rate: float      # segment-join deltas/sec via member pipelines
    key_width: int = 1
    anchor_size: int = 0         # |Y| for globally-consistent caches

    def __post_init__(self) -> None:
        if len(self.segment_d) != len(self.segment_c):
            raise ValueError("segment_d and segment_c must align")
        if not self.segment_d:
            raise ValueError("a cache segment spans at least one operator")
        if not 0.0 <= self.miss_prob <= 1.0:
            raise ValueError("miss_prob must be a probability")

    @property
    def d_probe(self) -> float:
        """Probe rate: tuples/sec reaching the segment's first operator."""
        return self.segment_d[0]

    @property
    def segment_work(self) -> float:
        """Σ dil·cil — µs/sec spent in the segment without the cache."""
        return sum(d * c for d, c in zip(self.segment_d, self.segment_c))

    @property
    def tuples_per_entry(self) -> float:
        """Average cached-value size, ``d_out / d_probe`` (Appendix A)."""
        if self.d_probe <= 0:
            return 0.0
        return self.d_out / self.d_probe


def probe_cost(stats: CacheStatistics, cm: CostModel) -> float:
    """µs per probe: key hash + emitting the average hit's composites."""
    hit_prob = 1.0 - stats.miss_prob
    return (
        cm.cache_probe
        + hit_prob * stats.tuples_per_entry * cm.cache_hit_tuple
    )


def update_cost(stats: CacheStatistics, cm: CostModel) -> float:
    """µs per cache update call (maintenance or miss-path store).

    Identical for prefix-invariant and globally-consistent caches: the
    entry-invalidation maintenance of :class:`GlobalCache` costs the same
    per call, and its effect on hit rates surfaces through the observed
    ``miss_prob`` rather than through a direct surcharge.

    A maintenance call whose key is absent is just a hash check (ignored
    per Section 3.2); a delta is applied roughly when the key is cached,
    which happens with probability ≈ ``1 − miss_prob``.
    """
    present_prob = 1.0 - stats.miss_prob
    return cm.cache_maintain_check + present_prob * (
        cm.cache_maintain + cm.cache_store_tuple
    )


def proc(stats: CacheStatistics, cm: CostModel) -> float:
    """Average µs/sec of using the cache in its owner pipeline (§4.4)."""
    return stats.d_probe * probe_cost(stats, cm) + stats.miss_prob * (
        stats.segment_work + stats.d_out * update_cost(stats, cm)
    )


def cost(stats: CacheStatistics, cm: CostModel) -> float:
    """Average µs/sec of maintaining the cache (Section 4.1)."""
    return update_cost(stats, cm) * stats.maintenance_rate


def benefit(stats: CacheStatistics, cm: CostModel) -> float:
    """Average µs/sec saved by the cache in its owner pipeline."""
    return stats.segment_work - proc(stats, cm)


def net_benefit(stats: CacheStatistics, cm: CostModel) -> float:
    """benefit − cost: the quantity A-Caching maximizes per cache."""
    return benefit(stats, cm) - cost(stats, cm)


def expected_memory_bytes(
    stats: CacheStatistics,
    cm: CostModel,
    expected_entries: float,
    segment_size: int,
) -> float:
    """Expected footprint: entries × (overhead + refs per composite).

    ``expected_entries`` comes from the profiler's distinct-key estimate
    (Appendix A: the Bloom filter's distinct count also yields the memory
    requirement).
    """
    from repro.caching.store import (
        ENTRY_OVERHEAD_BYTES,
        KEY_COMPONENT_BYTES,
        REFERENCE_BYTES,
    )

    per_entry = (
        ENTRY_OVERHEAD_BYTES
        + stats.key_width * KEY_COMPONENT_BYTES
        + stats.tuples_per_entry * REFERENCE_BYTES * segment_size
    )
    return max(0.0, expected_entries) * per_entry
