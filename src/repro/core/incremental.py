"""Incremental re-optimization — the paper's Section 8 future work.

The baseline Re-optimizer runs offline selection from scratch whenever any
statistic drifts past the change threshold. Section 8 sketches two
improvements, both implemented here:

1. **Incremental re-selection** (§8.2.i): add or drop caches based solely
   on the candidates whose statistics changed, instead of re-solving the
   whole selection problem. A full from-scratch selection still runs every
   ``full_reselect_every`` cycles as a safety net, because local swaps can
   drift from the global optimum under shared-cache interactions.

2. **Unimportant-statistic tracking** (§8.2.ii): a candidate whose
   significant changes repeatedly fail to alter the selection gets an
   exponentially widened personal change threshold, so its noise stops
   triggering optimizer work; one change that *does* alter the selection
   resets it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core import cost_model
from repro.core.candidates import CandidateCache
from repro.core.profiler import Profiler
from repro.core.reoptimizer import (
    CandidateState,
    Reoptimizer,
    ReoptimizerConfig,
)
from repro.mjoin.executor import MJoinExecutor


@dataclass
class ImportanceTracker:
    """Widens per-candidate change thresholds for ineffective statistics."""

    base_threshold: float
    widen_factor: float = 2.0
    max_widenings: int = 3
    _ineffective: Dict[str, int] = field(default_factory=dict)

    def threshold_for(self, candidate_id: str) -> float:
        """The candidate's personal change threshold, widened if ineffective."""
        widenings = min(
            self._ineffective.get(candidate_id, 0), self.max_widenings
        )
        return self.base_threshold * (self.widen_factor ** widenings)

    def record(self, triggering: Set[str], selection_changed: bool) -> None:
        """Update importance after a re-optimization round.

        ``triggering`` is the set of candidates whose drift exceeded their
        threshold this round.
        """
        for candidate_id in triggering:
            if selection_changed:
                self._ineffective[candidate_id] = 0
            else:
                self._ineffective[candidate_id] = (
                    self._ineffective.get(candidate_id, 0) + 1
                )

    def widenings(self, candidate_id: str) -> int:
        """How many consecutive ineffective changes the candidate has had."""
        return self._ineffective.get(candidate_id, 0)


class IncrementalReoptimizer(Reoptimizer):
    """A Re-optimizer that prefers local add/drop/swap moves."""

    def __init__(
        self,
        executor: MJoinExecutor,
        profiler: Profiler,
        config: Optional[ReoptimizerConfig] = None,
        full_reselect_every: int = 5,
    ):
        super().__init__(executor, profiler, config)
        self.full_reselect_every = full_reselect_every
        self.importance = ImportanceTracker(
            base_threshold=self.config.change_threshold
        )
        self._cycles = 0
        self.incremental_rounds = 0
        self.full_rounds = 0

    # ------------------------------------------------------------------
    def reoptimize(self, force: bool = False) -> List[CandidateCache]:
        """Local add/drop/swap moves; full re-selection every few cycles."""
        self._cycles += 1
        if force or self._cycles % self.full_reselect_every == 0:
            self.full_rounds += 1
            return super().reoptimize(force=True)

        cm = self.executor.ctx.cost_model
        for candidate_id, wired in self.wiring.wired.items():
            self.profiler.harvest_used_cache(candidate_id, wired.cache)
        stats = {}
        for candidate_id, candidate in self.candidates.items():
            estimate = self.profiler.statistics_for(candidate)
            if estimate is not None:
                stats[candidate_id] = estimate
        if not stats:
            self._resume_all_suspended()
            return self._currently_used()

        signature = {
            cid: (cost_model.benefit(s, cm), cost_model.cost(s, cm))
            for cid, s in stats.items()
        }
        triggering = self._triggering_candidates(signature)
        if not triggering:
            self._resume_all_suspended()
            return self._currently_used()
        self._last_signature = signature
        self.executor.ctx.metrics.reoptimizations += 1
        self.executor.ctx.clock.charge(
            cm.reoptimize_base / 4
            + cm.reoptimize_candidate * len(triggering)
        )
        self.incremental_rounds += 1

        nets = {
            cid: cost_model.benefit(stats[cid], cm)
            - cost_model.cost(stats[cid], cm)
            for cid in stats
        }
        previous = {c.candidate_id for c in self._currently_used()}
        target = self._local_moves(previous, triggering, nets)
        admitted = self._allocate_memory(
            [self.candidates[cid] for cid in target if cid in self.candidates],
            stats,
            cm,
        )
        self._apply(admitted)
        selection_changed = {
            c.candidate_id for c in admitted
        } != previous
        self.importance.record(triggering, selection_changed)
        return admitted

    # ------------------------------------------------------------------
    def _triggering_candidates(
        self, signature: Dict[str, Tuple[float, float]]
    ) -> Set[str]:
        """Candidates whose drift exceeds their personal threshold."""
        if not self._last_signature:
            return set(signature)
        triggering: Set[str] = set()
        for candidate_id, (new_benefit, new_cost) in signature.items():
            old = self._last_signature.get(candidate_id)
            if old is None:
                triggering.add(candidate_id)
                continue
            threshold = self.importance.threshold_for(candidate_id)
            for new, previous in ((new_benefit, old[0]), (new_cost, old[1])):
                scale = max(abs(previous), 1e-9)
                if abs(new - previous) / scale > threshold:
                    triggering.add(candidate_id)
                    break
        return triggering

    def _local_moves(
        self,
        current: Set[str],
        triggering: Set[str],
        nets: Dict[str, float],
    ) -> Set[str]:
        """Drop negative used caches; add/swap positive changed ones."""
        target = set(current)
        # Drops: any used cache whose net went negative.
        for candidate_id in list(target):
            if nets.get(candidate_id, 0.0) < 0:
                target.discard(candidate_id)
        # Adds/swaps: changed candidates with positive net, best first.
        additions = sorted(
            (
                cid
                for cid in triggering
                if cid not in target and nets.get(cid, 0.0) > 0
            ),
            key=lambda cid: nets[cid],
            reverse=True,
        )
        for candidate_id in additions:
            candidate = self.candidates.get(candidate_id)
            if candidate is None:
                continue
            conflicting = [
                other
                for other in target
                if other in self.candidates
                and candidate.conflicts_with(self.candidates[other])
            ]
            conflict_net = sum(nets.get(o, 0.0) for o in conflicting)
            if nets[candidate_id] > conflict_net:
                target.difference_update(conflicting)
                target.add(candidate_id)
        return target
