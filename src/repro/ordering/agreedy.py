"""Adaptive greedy join ordering — the A-Greedy baseline dependency [5].

A-Caching is modular (Section 4): join orderings come from an adaptive
ordering algorithm and cache selection runs on top of whatever ordering is
current. The paper uses A-Greedy from Babu et al. (SIGMOD 2004), designed
for pipelined *filters*; this module is its natural adaptation to MJoin
pipelines, as used by the paper's implementation:

* the greedy invariant becomes: at every pipeline position, the next
  relation is the connected one with the smallest expected match rate
  (fan-out) given the already-joined prefix;
* match rates are estimated online by probing each relation's index with a
  small sample of live values from the joined prefix (charged to the cost
  clock as profiling overhead);
* periodically the greedy order is recomputed from fresh estimates and the
  pipeline is reordered when the invariant is violated, with hysteresis so
  estimation noise does not thrash plans.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.mjoin.executor import MJoinExecutor
from repro.relations.predicates import JoinGraph
from repro.relations.relation import Relation


@dataclass
class OrderingConfig:
    """A-Greedy tunables (cadence, sampling, hysteresis, cooldown)."""
    interval_updates: int = 1000   # recompute cadence
    sample_size: int = 24          # prefix values sampled per estimate
    hysteresis: float = 0.18       # required relative cost improvement
    probe_charge: float = 0.5      # µs charged per sampled index count
    cooldown_intervals: int = 3    # min intervals between reorders of a pipeline
    smoothing: float = 0.3         # EWMA weight of a fresh sample batch
    plumbing_penalty: float = 2.0  # extra hysteresis when caches are wired


class MatchRateEstimator:
    """Estimates the expected fan-out of joining ``target`` to a prefix."""

    def __init__(
        self,
        graph: JoinGraph,
        relations: Dict[str, Relation],
        config: OrderingConfig,
        charge: Optional[Callable[[float], None]] = None,
    ):
        self.graph = graph
        self.relations = relations
        self.config = config
        self._charge = charge if charge is not None else (lambda cost: None)
        self._memo: Dict[Tuple[frozenset, str], float] = {}
        self._smoothed: Dict[Tuple[frozenset, str], float] = {}

    def begin_batch(self) -> None:
        """Start a fresh estimation batch.

        Within one batch, repeated queries for the same (prefix set,
        target) return the same estimate, so comparing the current order
        against the proposed one is noise-free. Across batches, estimates
        are EWMA-smoothed — raw per-batch sampling jitter compounds
        multiplicatively along a pipeline and makes A-Greedy thrash
        between equivalent plans, and every reorder drops that pipeline's
        caches (Section 4.5, step 5).
        """
        self._memo.clear()

    def match_rate(self, prefix: Sequence[str], target: str) -> float:
        """Expected matches in ``target`` per prefix tuple (memoized per batch)."""
        token = (frozenset(prefix), target)
        cached = self._memo.get(token)
        if cached is None:
            fresh = self._sampled_match_rate(prefix, target)
            previous = self._smoothed.get(token)
            alpha = self.config.smoothing
            if previous is None:
                cached = fresh
            else:
                cached = alpha * fresh + (1.0 - alpha) * previous
            self._smoothed[token] = cached
            self._memo[token] = cached
        return cached

    def _sampled_match_rate(self, prefix: Sequence[str], target: str) -> float:
        """Expected matches in ``target`` per prefix tuple.

        Sampled: for each predicate joining the prefix to the target, take
        up to ``sample_size`` live values from the prefix side and average
        the target's index match counts; multiple predicates conjoin, so
        the smallest per-predicate estimate bounds the conjunction.
        """
        predicates = self.graph.predicates_between(prefix, target)
        if not predicates:
            # Cross product: every target row matches.
            return float(len(self.relations[target]))
        estimates: List[float] = []
        for predicate in predicates:
            target_ref = predicate.side_for(target)
            source_ref = predicate.other_side(target)
            source = self.relations[source_ref.relation]
            target_relation = self.relations[target_ref.relation]
            sample = list(
                itertools.islice(source.rows(), self.config.sample_size)
            )
            if not sample:
                # No prefix data yet: fall back to |R| / distinct values.
                estimates.append(self._structural_estimate(target, target_ref))
                continue
            position = self.graph.attr_position(source_ref)
            total = 0
            for row in sample:
                self._charge(self.config.probe_charge)
                total += target_relation.match_count(
                    target_ref.attribute, row.values[position]
                )
            estimates.append(total / len(sample))
        return min(estimates)

    def _structural_estimate(self, target: str, target_ref) -> float:
        relation = self.relations[target]
        if len(relation) == 0:
            return 0.0
        if relation.has_index(target_ref.attribute):
            distinct = relation.index(target_ref.attribute).distinct_values()
            return len(relation) / max(1, distinct)
        return float(len(relation))


def greedy_order(
    owner: str,
    graph: JoinGraph,
    estimator: MatchRateEstimator,
) -> Tuple[str, ...]:
    """Greedy MJoin ordering: repeatedly append the connected relation
    with the smallest estimated match rate."""
    remaining = [r for r in graph.relations if r != owner]
    prefix: List[str] = [owner]
    order: List[str] = []
    while remaining:
        connected = [
            r for r in remaining if graph.predicates_between(prefix, r)
        ] or remaining
        best = min(
            connected, key=lambda r: (estimator.match_rate(prefix, r), r)
        )
        order.append(best)
        prefix.append(best)
        remaining.remove(best)
    return tuple(order)


def order_cost(
    owner: str,
    order: Sequence[str],
    graph: JoinGraph,
    estimator: MatchRateEstimator,
    probe_cost: float = 4.0,
    per_match: float = 1.5,
) -> float:
    """Expected per-update cost of one pipeline ordering.

    Intermediate cardinalities are products of match rates; each operator
    costs one probe plus its emitted matches per input tuple.
    """
    prefix: List[str] = [owner]
    entering = 1.0
    total = 0.0
    for target in order:
        rate = estimator.match_rate(prefix, target)
        total += entering * (probe_cost + per_match * rate)
        entering *= rate
        prefix.append(target)
    return total


class AGreedyOrderer:
    """Keeps every pipeline greedily ordered as statistics drift."""

    def __init__(
        self,
        executor: MJoinExecutor,
        config: Optional[OrderingConfig] = None,
    ):
        self.executor = executor
        self.config = config if config is not None else OrderingConfig()
        self.estimator = MatchRateEstimator(
            executor.graph,
            executor.relations,
            self.config,
            charge=executor.ctx.clock.charge,
        )
        self._last_check_updates = 0
        self._last_reorder_at: Dict[str, int] = {}
        self._pending: Dict[str, Tuple[str, ...]] = {}
        self.reorders = 0

    def maybe_reorder(self) -> List[str]:
        """Recompute greedy orders if the cadence elapsed; returns the
        owners whose pipelines changed (the re-optimizer must react)."""
        updates = self.executor.ctx.metrics.updates_processed
        if updates - self._last_check_updates < self.config.interval_updates:
            return []
        self._last_check_updates = updates
        self.estimator.begin_batch()
        cooldown = (
            self.config.cooldown_intervals * self.config.interval_updates
        )
        changed: List[str] = []
        for owner in self.executor.graph.relations:
            # Cooldown: a reorder drops that pipeline's caches and resets
            # its profiling (Section 4.5 step 5), so back-to-back reorders
            # of one pipeline cost more than a briefly suboptimal order.
            if updates - self._last_reorder_at.get(owner, -cooldown) < cooldown:
                continue
            current = self.executor.order_of(owner)
            proposed = greedy_order(owner, self.executor.graph, self.estimator)
            if proposed == current:
                continue
            current_cost = order_cost(
                owner, current, self.executor.graph, self.estimator
            )
            proposed_cost = order_cost(
                owner, proposed, self.executor.graph, self.estimator
            )
            required = self.config.hysteresis
            pipeline = self.executor.pipelines[owner]
            if pipeline.active_lookups() or pipeline._updates:
                # Plan-switching costs (Section 1): reordering this
                # pipeline drops wired caches and restarts their
                # profiling, so demand a larger estimated win.
                required = min(0.9, required * self.config.plumbing_penalty)
            if proposed_cost < current_cost * (1.0 - required):
                # Confirmation: the same proposal must win two consecutive
                # checks. Independent sampling noise rarely repeats, while
                # a genuine workload shift persists, so this converts a
                # per-check false-reorder probability p into p².
                if self._pending.get(owner) == proposed:
                    self.executor.reorder_pipeline(owner, proposed)
                    self.reorders += 1
                    self._last_reorder_at[owner] = updates
                    self._pending.pop(owner, None)
                    changed.append(owner)
                else:
                    self._pending[owner] = proposed
            else:
                self._pending.pop(owner, None)
        return changed
