"""XJoin executor: a tree of two-way joins with materialized subresults.

The comparison baseline ``X`` of Section 7.3. Each non-root inner node
maintains its join subresult incrementally, hash-indexed on the attributes
its parent joins through; an update climbs from its leaf to the root,
joining the running delta against the sibling subtree's *current*
materialization at every level. Unlike caches, subresults are complete:
a probe that finds nothing proves nothing joins (the paper's note on why
``X`` can edge out ``P``/``G`` even with identical state).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.operators.base import ExecContext
from repro.relations.predicates import EquiPredicate, JoinGraph
from repro.relations.relation import Relation
from repro.streams.events import OutputDelta, Sign, Update
from repro.streams.tuples import CompositeTuple
from repro.xjoin.tree import Inner, JoinTree, Leaf, inner_nodes, leaves

REFERENCE_BYTES = 8


class SubresultStore:
    """The materialized contents of one inner node."""

    def __init__(self, relations: Iterable[str], indexed_slots):
        self.order = tuple(sorted(relations))
        self._composites: Dict[tuple, CompositeTuple] = {}
        # indexed_slots: iterable of (relation, attr position)
        self._indexes: Dict[Tuple[str, int], Dict[Any, Dict[tuple, CompositeTuple]]] = {
            slot: defaultdict(dict) for slot in indexed_slots
        }

    def add(self, composite: CompositeTuple) -> None:
        """Materialize one composite (and index it)."""
        identity = composite.identity(self.order)
        self._composites[identity] = composite
        for (relation, position), index in self._indexes.items():
            index[composite.value(relation, position)][identity] = composite

    def remove(self, composite: CompositeTuple) -> None:
        """Unmaterialize one composite by identity."""
        identity = composite.identity(self.order)
        if self._composites.pop(identity, None) is None:
            return
        for (relation, position), index in self._indexes.items():
            value = composite.value(relation, position)
            bucket = index.get(value)
            if bucket is not None:
                bucket.pop(identity, None)
                if not bucket:
                    del index[value]

    def lookup(
        self, relation: str, position: int, value: Any
    ) -> Optional[List[CompositeTuple]]:
        """Index lookup; None when (relation, position) is not indexed."""
        index = self._indexes.get((relation, position))
        if index is None:
            return None
        bucket = index.get(value)
        return list(bucket.values()) if bucket else []

    def scan(self) -> List[CompositeTuple]:
        """All materialized composites (the unindexed fallback)."""
        return list(self._composites.values())

    def __len__(self) -> int:
        return len(self._composites)

    @property
    def memory_bytes(self) -> int:
        """Reference-based accounting, matching the cache convention."""
        return len(self._composites) * REFERENCE_BYTES * len(self.order)


class XJoinExecutor:
    """Executes the stream join as one binary tree with subresults."""

    def __init__(
        self,
        graph: JoinGraph,
        tree: JoinTree,
        indexed_attributes: Optional[Dict[str, Iterable[str]]] = None,
        ctx: Optional[ExecContext] = None,
    ):
        if {leaf.relation for leaf in leaves(tree)} != set(graph.relations):
            raise PlanError("join tree must cover exactly the query relations")
        self.graph = graph
        self.tree = tree
        self.ctx = ctx if ctx is not None else ExecContext()
        self.relations: Dict[str, Relation] = {}
        for name, schema in graph.schemas.items():
            attrs = self._default_indexed(name)
            if indexed_attributes and name in indexed_attributes:
                attrs = tuple(indexed_attributes[name])
            self.relations[name] = Relation(schema, attrs)
        self.root = tree
        # parent/sibling maps keyed by subtree (frozen dataclasses).
        self._parent: Dict[JoinTree, Inner] = {}
        self._sibling: Dict[JoinTree, JoinTree] = {}
        for node in inner_nodes(tree):
            for child, other in ((node.left, node.right), (node.right, node.left)):
                self._parent[child] = node
                self._sibling[child] = other
        # Materialize every non-root inner node, indexed on the attributes
        # its parent joins through.
        self.stores: Dict[Inner, SubresultStore] = {}
        for node in inner_nodes(tree):
            if node is tree or node == tree:
                continue
            sibling = self._sibling[node]
            slots = set()
            for pred in graph.crossing_predicates(
                node.relations, sibling.relations
            ):
                ref = (
                    pred.left
                    if pred.left.relation in node.relations
                    else pred.right
                )
                slots.add((ref.relation, graph.attr_position(ref)))
            self.stores[node] = SubresultStore(node.relations, slots)
        self.peak_memory_bytes = 0
        # Optional ResilienceController (repro.faults): same ingress gate
        # as the MJoin executor (no auditor — subresults are not caches).
        self.resilience = None

    def _default_indexed(self, relation: str) -> Tuple[str, ...]:
        attrs = set()
        for pred in self.graph.predicates:
            for ref in (pred.left, pred.right):
                if ref.relation == relation:
                    attrs.add(ref.attribute)
        return tuple(sorted(attrs))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def process(self, update: Update) -> List[OutputDelta]:
        """Propagate one update from its leaf to the root; returns deltas."""
        if self.resilience is not None and not self.resilience.admit(update):
            return []
        clock, cm = self.ctx.clock, self.ctx.cost_model
        obs = self.ctx.obs
        prof = obs.profiler
        started_us = clock.now_us if obs.enabled else 0.0
        if prof.enabled:
            prof.begin("update:" + update.relation, clock.now_us)
        try:
            leaf: JoinTree = Leaf(update.relation)
            delta: List[CompositeTuple] = [
                CompositeTuple.of(update.relation, update.row)
            ]
            child = leaf
            node = self._parent.get(leaf)
            while node is not None and delta:
                sibling = self._sibling[child]
                joined: List[CompositeTuple] = []
                predicates = self.graph.crossing_predicates(
                    child.relations, sibling.relations
                )
                for composite in delta:
                    for match in self._matches(composite, sibling, predicates):
                        joined.append(composite.merge(match))
                delta = joined
                store = self.stores.get(node)
                if store is not None and delta:
                    clock.charge(
                        (cm.relation_update + cm.index_update) * len(delta)
                    )
                    if update.sign is Sign.INSERT:
                        for composite in delta:
                            store.add(composite)
                    else:
                        for composite in delta:
                            store.remove(composite)
                child = node
                node = self._parent.get(node)
            self._apply_window_update(update)
            clock.charge(cm.output_emit * len(delta))
            self.ctx.metrics.updates_processed += 1
            self.ctx.metrics.outputs_emitted += len(delta)
            current = self.memory_in_use()
            if current > self.peak_memory_bytes:
                self.peak_memory_bytes = current
        finally:
            # The span must close even when propagation raises, or the
            # profiler stack stays unbalanced for the rest of the run.
            if prof.enabled:
                prof.end(clock.now_us)
        if obs.enabled:
            now_us = clock.now_us
            obs.registry.histogram(
                "repro_xjoin_update_us", {"leaf": update.relation}
            ).observe(now_us - started_us)
            obs.registry.gauge("repro_xjoin_memory_bytes").set(current)
            obs.tracer.emit(
                "update_processed",
                now_us,
                leaf=update.relation,
                sign=update.sign.name,
                outputs=len(delta),
            )
        if self.resilience is not None:
            self.resilience.after_update()
        return [OutputDelta(c, update.sign) for c in delta]

    def process_batch(self, batch) -> List[List[OutputDelta]]:
        """Process one micro-batch; returns per-update delta lists.

        XJoin keeps no probe memo (its subresult stores already amortize
        recomputation), so this is a plain in-order loop — provided for
        interface parity with the MJoin/A-Caching engines so batched
        drivers can run any engine kind.
        """
        return [self.process(update) for update in batch]

    def run(
        self, updates: Iterable[Update], batch_size: int = 1
    ) -> List[OutputDelta]:
        """Process a whole update sequence; returns all result deltas."""
        outputs: List[OutputDelta] = []
        for update in updates:
            outputs.extend(self.process(update))
        return outputs

    def _matches(
        self,
        composite: CompositeTuple,
        sibling: JoinTree,
        predicates: List[EquiPredicate],
    ) -> List[CompositeTuple]:
        clock, cm = self.ctx.clock, self.ctx.cost_model
        if not predicates:
            raise PlanError("cross-product tree node; trees must be connected")
        bound = []
        for pred in predicates:
            if pred.left.relation in sibling.relations:
                sib_ref, probe_ref = pred.left, pred.right
            else:
                sib_ref, probe_ref = pred.right, pred.left
            bound.append(
                (
                    sib_ref.relation,
                    self.graph.attr_position(sib_ref),
                    sib_ref.attribute,
                    probe_ref.relation,
                    self.graph.attr_position(probe_ref),
                )
            )
        if isinstance(sibling, Leaf):
            relation = self.relations[sibling.relation]
            index_pred = next(
                (b for b in bound if relation.has_index(b[2])), None
            )
            if index_pred is not None:
                clock.charge(cm.index_probe)
                rows = relation.matching(
                    index_pred[2], composite.value(index_pred[3], index_pred[4])
                )
            else:
                clock.charge(cm.scan_tuple * len(relation))
                rows = list(relation.rows())
                index_pred = None
            residuals = [b for b in bound if b is not index_pred]
            matches = []
            if residuals:
                clock.charge(cm.predicate_eval * len(rows) * len(residuals))
            for row in rows:
                if all(
                    row.values[b[1]] == composite.value(b[3], b[4])
                    for b in residuals
                ):
                    matches.append(CompositeTuple.of(sibling.relation, row))
            clock.charge(cm.per_match * len(matches))
            return matches
        store = self.stores[sibling]
        found: Optional[List[CompositeTuple]] = None
        index_pred = None
        for b in bound:
            probe_value = composite.value(b[3], b[4])
            clock.charge(cm.index_probe)
            found = store.lookup(b[0], b[1], probe_value)
            if found is not None:
                index_pred = b
                break
        if found is None:
            clock.charge(cm.scan_tuple * len(store))
            found = store.scan()
        residuals = [b for b in bound if b is not index_pred]
        if residuals:
            clock.charge(cm.predicate_eval * len(found) * len(residuals))
        matches = [
            c
            for c in found
            if all(
                c.value(b[0], b[1]) == composite.value(b[3], b[4])
                for b in residuals
            )
        ]
        clock.charge(cm.per_match * len(matches))
        return matches

    def _apply_window_update(self, update: Update) -> None:
        relation = self.relations[update.relation]
        cm = self.ctx.cost_model
        index_count = sum(
            1
            for attr in relation.schema.attributes
            if relation.has_index(attr)
        )
        self.ctx.clock.charge(
            cm.relation_update + cm.index_update * index_count
        )
        if update.sign is Sign.INSERT:
            relation.insert(update.row)
        else:
            relation.delete(update.row)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_in_use(self) -> int:
        """Bytes held by all materialized subresults."""
        return sum(store.memory_bytes for store in self.stores.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XJoinExecutor({self.tree!r})"
