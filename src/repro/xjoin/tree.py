"""Binary join trees for XJoin plans (Urhan & Franklin [28]).

An XJoin executes the n-way stream join as a tree of two-way joins and
materializes the subresult of every inner node. This module models tree
shapes and enumerates all connected ones, which is how the paper picks its
best XJoin ``X`` ("chosen by exhaustive search", Section 7.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Sequence, Tuple, Union

from repro.errors import PlanError
from repro.relations.predicates import JoinGraph


@dataclass(frozen=True)
class Leaf:
    """A base relation at the bottom of the tree."""

    relation: str

    @property
    def relations(self) -> FrozenSet[str]:
        """The relation set this subtree covers."""
        return frozenset((self.relation,))

    def __repr__(self) -> str:
        return self.relation


@dataclass(frozen=True)
class Inner:
    """A two-way join node with a materialized subresult."""

    left: "JoinTree"
    right: "JoinTree"

    @property
    def relations(self) -> FrozenSet[str]:
        """The relation set this subtree covers."""
        return self.left.relations | self.right.relations

    def __repr__(self) -> str:
        return f"({self.left!r} ⋈ {self.right!r})"


JoinTree = Union[Leaf, Inner]


def inner_nodes(tree: JoinTree) -> List[Inner]:
    """All inner nodes, children before parents (evaluation order)."""
    if isinstance(tree, Leaf):
        return []
    return inner_nodes(tree.left) + inner_nodes(tree.right) + [tree]


def leaves(tree: JoinTree) -> List[Leaf]:
    """All leaves, left to right."""
    if isinstance(tree, Leaf):
        return [tree]
    return leaves(tree.left) + leaves(tree.right)


def left_deep(relations: Sequence[str]) -> JoinTree:
    """The left-deep tree joining ``relations`` in the given order."""
    if not relations:
        raise PlanError("a join tree needs at least one relation")
    tree: JoinTree = Leaf(relations[0])
    for name in relations[1:]:
        tree = Inner(tree, Leaf(name))
    return tree


def canonical(tree: JoinTree) -> tuple:
    """Shape identity ignoring left/right child order."""
    if isinstance(tree, Leaf):
        return (tree.relation,)
    a, b = canonical(tree.left), canonical(tree.right)
    return ("⋈",) + tuple(sorted((a, b)))


def enumerate_trees(
    graph: JoinGraph, relations: Sequence[str] = ()
) -> List[JoinTree]:
    """All connected binary tree shapes over ``relations``.

    Children are unordered (the executor treats a node symmetrically), so
    mirror-image trees are deduplicated via :func:`canonical`. A tree is
    connected when every inner node's two sides share a join predicate —
    cross-product nodes are excluded, as in conventional plan enumeration.
    """
    names: Tuple[str, ...] = tuple(relations) or tuple(graph.relations)
    seen = set()
    results: List[JoinTree] = []

    def build(subset: Tuple[str, ...]) -> Iterator[JoinTree]:
        if len(subset) == 1:
            yield Leaf(subset[0])
            return
        # Split into non-empty halves; fix the first element on the left
        # to halve the symmetric work.
        rest = subset[1:]
        for mask in range(1 << len(rest)):
            left_names = [subset[0]] + [
                rest[i] for i in range(len(rest)) if mask & (1 << i)
            ]
            right_names = [
                rest[i] for i in range(len(rest)) if not mask & (1 << i)
            ]
            if not right_names:
                continue
            if not graph.are_connected(left_names, right_names):
                continue
            for left_tree in build(tuple(left_names)):
                for right_tree in build(tuple(right_names)):
                    yield Inner(left_tree, right_tree)

    for tree in build(names):
        token = canonical(tree)
        if token not in seen:
            seen.add(token)
            results.append(tree)
    return results
