"""The streaming service layer: the Session facade served over the wire.

ROADMAP item 4: turn the single-process library into a long-running
ingestion service. Clients register continuous queries, push update
batches over HTTP, and subscribe to result deltas over WebSocket; every
request path is defended in depth:

* per-tenant **token-bucket admission control** (first gate, feeding the
  engine's existing load shedder as the second),
* a **bounded ingress queue** with explicit backpressure — HTTP 429 +
  ``Retry-After`` *before* the queue can overflow, WebSocket
  flow-control frames on the subscription path,
* per-request **deadlines** with cooperative timeout/cancellation,
* **graceful degradation tiers** (shed deltas → pause subscriptions →
  reject ingest) driven by queue depth and wall-clock lag,
* **WAL-journaled ingest**: an update is acknowledged only once durable,
  so a killed server resumes via the recovery machinery without losing a
  single acknowledged update.

Everything is stdlib-only: the HTTP/1.1 + RFC 6455 framing lives in
:mod:`repro.service.http`, the server in :mod:`repro.service.server`,
and the retrying client helper in :mod:`repro.service.client`.
"""

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.backpressure import (
    DegradationController,
    IngressQueue,
    TIER_NAMES,
    TIER_NORMAL,
    TIER_PAUSE_SUBSCRIPTIONS,
    TIER_REJECT_INGEST,
    TIER_SHED_DELTAS,
)
from repro.service.client import RetryPolicy, ServiceClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.server import QueryHost, ServiceThread, StreamingService

__all__ = [
    "AdmissionController",
    "DegradationController",
    "IngressQueue",
    "QueryHost",
    "RetryPolicy",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceThread",
    "StreamingService",
    "TIER_NAMES",
    "TIER_NORMAL",
    "TIER_PAUSE_SUBSCRIPTIONS",
    "TIER_REJECT_INGEST",
    "TIER_SHED_DELTAS",
    "TokenBucket",
]
