"""Per-tenant token-bucket admission control — the first gate on ingest.

The bucket is the classic leaky variant: ``rate`` tokens/second refill up
to ``burst`` capacity, one token per update. ``take(n)`` either succeeds
(returns 0.0) or returns the number of seconds until ``n`` tokens will
have accumulated — the value the server sends back verbatim as
``Retry-After``, so a well-behaved client sleeps exactly as long as the
bucket needs and no longer.

Admission runs strictly before the bounded ingress queue and before the
engine's own :class:`~repro.faults.shedding.LoadShedder`: the wire gate
turns away work the engine would otherwise have to admit and then shed.
When the engine reports shedding is active, :class:`AdmissionController`
tightens every tenant's effective rate by ``degraded_rate_factor`` so
overload relief starts at the cheapest point — the socket.

Clocks are injectable (a callable returning monotonic seconds) so tests
and the chaos harness are deterministic.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

__all__ = ["AdmissionController", "TokenBucket"]

Clock = Callable[[], float]


class TokenBucket:
    """A single tenant's refillable budget, in updates."""

    __slots__ = ("rate", "burst", "tokens", "_clock", "_last", "denied", "granted")

    def __init__(self, rate: float, burst: float,
                 clock: Optional[Clock] = None) -> None:
        if rate <= 0:
            raise ValueError(f"token bucket rate must be positive, got {rate}")
        if burst <= 0:
            raise ValueError(f"token bucket burst must be positive, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._clock: Clock = clock if clock is not None else time.monotonic
        self._last = self._clock()
        self.granted = 0
        self.denied = 0

    def _refill(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self._last = now

    def take(self, n: int, rate_factor: float = 1.0) -> float:
        """Try to spend ``n`` tokens.

        Returns 0.0 on success, else the retry-after interval in seconds.
        ``rate_factor`` scales the *refill* rate used for the retry-after
        estimate and the effective spend (a factor of 0.5 makes each
        update cost two tokens), which is how degraded mode tightens the
        gate without reconfiguring the bucket.
        """
        if n <= 0:
            return 0.0
        self._refill(self._clock())
        cost = n / rate_factor
        if self.tokens >= cost:
            self.tokens -= cost
            self.granted += n
            return 0.0
        self.denied += n
        deficit = cost - self.tokens
        return deficit / (self.rate * rate_factor)


class AdmissionController:
    """One bucket per tenant, plus the engine-degradation feedback loop."""

    def __init__(self, rate: float, burst: float,
                 degraded_rate_factor: float = 0.5,
                 clock: Optional[Clock] = None) -> None:
        self._rate = rate
        self._burst = burst
        self._factor = degraded_rate_factor
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self.degraded = False
        self.rejections = 0

    def bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self._rate, self._burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, n_updates: int) -> float:
        """0.0 = admitted; positive = rejected, retry after that many seconds."""
        factor = self._factor if self.degraded else 1.0
        retry_after = self.bucket(tenant).take(n_updates, rate_factor=factor)
        if retry_after > 0.0:
            self.rejections += 1
        return retry_after

    def note_engine_degraded(self, degraded: bool) -> None:
        self.degraded = bool(degraded)

    def summary(self) -> Dict[str, object]:
        return {
            "tenants": len(self._buckets),
            "rejections": self.rejections,
            "degraded": self.degraded,
            "granted": sum(b.granted for b in self._buckets.values()),
            "denied": sum(b.denied for b in self._buckets.values()),
        }
