"""Minimal stdlib HTTP/1.1 + RFC 6455 WebSocket framing.

The container deliberately carries no aiohttp/websockets/fastapi — the
service speaks the wire itself over ``asyncio`` streams. This module is
the only place that knows about bytes-on-the-socket: request parsing
with a header deadline (the slow-client guard), response serialization,
and WebSocket frame encode/decode for both server and client roles.

Scope is intentionally small: HTTP/1.1 with ``Content-Length`` bodies
(no chunked transfer), one request per connection for ingest paths
(``Connection: close``), and text/close/ping/pong WebSocket frames with
payloads below 64 KiB fragments handled via the 16-bit extended length.
That is everything the service, client helper, and chaos harness need.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

__all__ = [
    "BadRequest",
    "HttpRequest",
    "SlowClient",
    "WS_GUID",
    "encode_ws_frame",
    "json_response",
    "read_request",
    "read_ws_frame",
    "response_bytes",
    "websocket_accept",
]

WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    101: "Switching Protocols",
}

# WebSocket opcodes.
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA


class BadRequest(Exception):
    """The client sent something unparseable; answer 400 and close."""


class SlowClient(Exception):
    """The client blew the header/body deadline; answer 408 and close."""


@dataclass
class HttpRequest:
    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def json(self) -> object:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from exc


async def read_request(reader: asyncio.StreamReader,
                       header_deadline_s: float,
                       body_deadline_s: float,
                       max_body: int = MAX_BODY_BYTES) -> Optional[HttpRequest]:
    """Parse one request; None on clean EOF before any bytes arrived."""
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=header_deadline_s
        )
    except asyncio.TimeoutError as exc:
        raise SlowClient("request head not received in time") from exc
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise BadRequest("connection closed mid-request-head") from exc
    except asyncio.LimitOverrunError as exc:
        raise BadRequest("request head exceeds limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise BadRequest("request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = {k: v[-1] for k, v in parse_qs(split.query).items()}

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise BadRequest(f"malformed header line: {line!r}")
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise BadRequest(f"bad Content-Length: {length_text!r}") from exc
    if length < 0 or length > max_body:
        raise BadRequest(f"Content-Length {length} outside 0..{max_body}")
    if length:
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=body_deadline_s
            )
        except asyncio.TimeoutError as exc:
            raise SlowClient("request body not received in time") from exc
        except asyncio.IncompleteReadError as exc:
            raise BadRequest("connection closed mid-body") from exc

    return HttpRequest(
        method=method, path=split.path, query=query, headers=headers, body=body
    )


def response_bytes(status: int, body: bytes = b"",
                   headers: Optional[Dict[str, str]] = None,
                   content_type: str = "application/json") -> bytes:
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    out_headers = {
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    if body:
        out_headers["Content-Type"] = content_type
    if headers:
        out_headers.update(headers)
    for name, value in out_headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(status: int, payload: object,
                  headers: Optional[Dict[str, str]] = None) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return response_bytes(status, body, headers)


# -- WebSocket ------------------------------------------------------------


def websocket_accept(key: str) -> str:
    """Sec-WebSocket-Accept for a client's Sec-WebSocket-Key."""
    digest = hashlib.sha1((key + WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def encode_ws_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """One unfragmented frame; servers send unmasked, clients masked."""
    head = bytearray([0x80 | opcode])
    mask_bit = 0x80 if mask else 0x00
    n = len(payload)
    if n < 126:
        head.append(mask_bit | n)
    elif n < (1 << 16):
        head.append(mask_bit | 126)
        head += struct.pack(">H", n)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", n)
    if mask:
        key = os.urandom(4)
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


async def read_ws_frame(reader: asyncio.StreamReader,
                        timeout: Optional[float] = None
                        ) -> Tuple[int, bytes]:
    """Read one frame; returns (opcode, unmasked payload).

    Raises ``asyncio.IncompleteReadError`` on EOF and
    ``asyncio.TimeoutError`` when ``timeout`` elapses first.
    """

    async def _read() -> Tuple[int, bytes]:
        first = await reader.readexactly(2)
        opcode = first[0] & 0x0F
        masked = bool(first[1] & 0x80)
        length = first[1] & 0x7F
        if length == 126:
            (length,) = struct.unpack(">H", await reader.readexactly(2))
        elif length == 127:
            (length,) = struct.unpack(">Q", await reader.readexactly(8))
        key = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
        if masked:
            payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
        return opcode, payload

    if timeout is None:
        return await _read()
    return await asyncio.wait_for(_read(), timeout=timeout)
