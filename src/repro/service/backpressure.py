"""Bounded ingress queue + the graceful-degradation ladder.

Two cooperating pieces:

* :class:`IngressQueue` — a bounded asyncio queue measured in *updates*
  (not batches) with an explicit two-phase protocol: ``reserve(n)``
  claims capacity synchronously on the event loop **before** the caller
  does any awaitable work, so a 429 is issued while the queue still has
  headroom and an accepted batch can never find the queue full. The
  reservation is released by the worker once the batch is processed.
  The queue also tracks the enqueue wall-clock time of the oldest
  resident batch, which is the service's lag signal.

* :class:`DegradationController` — maps (depth fraction, oldest-batch
  lag) to a tier on the ladder::

      TIER_NORMAL → TIER_SHED_DELTAS → TIER_PAUSE_SUBSCRIPTIONS
                  → TIER_REJECT_INGEST

  Whichever signal trips first wins (max of the two tiers). Recovery is
  hysteretic: a tier releases only once *both* signals fall below
  ``recover_fraction`` of that tier's engage threshold, so the service
  does not flap at a boundary. Every transition is recorded in the
  engine's :class:`~repro.obs.decisions.DecisionLog` under
  ``TIER_CHANGE``.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.service.config import ServiceConfig

__all__ = [
    "DegradationController",
    "IngressQueue",
    "TIER_NAMES",
    "TIER_NORMAL",
    "TIER_PAUSE_SUBSCRIPTIONS",
    "TIER_REJECT_INGEST",
    "TIER_SHED_DELTAS",
]

TIER_NORMAL = 0
TIER_SHED_DELTAS = 1
TIER_PAUSE_SUBSCRIPTIONS = 2
TIER_REJECT_INGEST = 3

TIER_NAMES = {
    TIER_NORMAL: "normal",
    TIER_SHED_DELTAS: "shed_deltas",
    TIER_PAUSE_SUBSCRIPTIONS: "pause_subscriptions",
    TIER_REJECT_INGEST: "reject_ingest",
}


class IngressQueue:
    """Bounded queue of ingest batches with reserve-before-enqueue.

    All methods must run on the owning event loop's thread; there are no
    internal locks because the loop is the lock.
    """

    def __init__(self, capacity_updates: int,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.capacity = capacity_updates
        self.reserved = 0          # updates claimed but not yet released
        self._clock = clock if clock is not None else time.monotonic
        self._batches: Deque[Tuple[float, object]] = deque()
        self._waiter: Optional[asyncio.Future] = None
        self.enqueued_batches = 0
        self.rejected_batches = 0

    # -- producer side (ingest handler, synchronous section) ------------

    def reserve(self, n_updates: int) -> bool:
        """Claim capacity for ``n_updates``; False means "send 429 now".

        The claim covers the batch until the worker finishes processing
        it, so depth here = queued + in-flight updates.
        """
        if self.reserved + n_updates > self.capacity:
            self.rejected_batches += 1
            return False
        self.reserved += n_updates
        return True

    def put(self, batch: object) -> None:
        """Enqueue a batch whose capacity was already reserved."""
        self._batches.append((self._clock(), batch))
        self.enqueued_batches += 1
        if self._waiter is not None and not self._waiter.done():
            self._waiter.set_result(None)

    def cancel_reservation(self, n_updates: int) -> None:
        """Return capacity claimed by a batch that was never enqueued."""
        self.reserved = max(0, self.reserved - n_updates)

    # -- consumer side (single worker task) ------------------------------

    async def get(self) -> object:
        while not self._batches:
            self._waiter = asyncio.get_running_loop().create_future()
            try:
                await self._waiter
            finally:
                self._waiter = None
        _, batch = self._batches.popleft()
        return batch

    def release(self, n_updates: int) -> None:
        """The worker finished a batch: free its reserved capacity."""
        self.reserved = max(0, self.reserved - n_updates)

    # -- signals ----------------------------------------------------------

    @property
    def depth_updates(self) -> int:
        return self.reserved

    @property
    def depth_fraction(self) -> float:
        return self.reserved / self.capacity

    def oldest_lag_s(self) -> float:
        """Wall-clock age of the oldest still-queued batch (0 if empty)."""
        if not self._batches:
            return 0.0
        return max(0.0, self._clock() - self._batches[0][0])

    def wake_consumer(self) -> None:
        """Unblock a pending ``get`` (used during drain shutdown)."""
        if self._waiter is not None and not self._waiter.done():
            self._waiter.set_result(None)


class DegradationController:
    """Depth + lag → ladder tier, with hysteresis and decision logging."""

    def __init__(self, config: ServiceConfig,
                 decision_log=None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self._engage_depth = (
            config.shed_depth_fraction,
            config.pause_depth_fraction,
            config.reject_depth_fraction,
        )
        self._engage_lag = (
            config.shed_lag_s,
            config.pause_lag_s,
            config.reject_lag_s,
        )
        self._recover = config.recover_fraction
        self._decisions = decision_log
        self._clock = clock if clock is not None else time.monotonic
        self.tier = TIER_NORMAL
        self.transitions = 0

    def _tier_for(self, value: float, thresholds: Tuple[float, float, float],
                  scale: float = 1.0) -> int:
        tier = TIER_NORMAL
        for idx, threshold in enumerate(thresholds):
            if value >= threshold * scale:
                tier = idx + 1
        return tier

    def update(self, depth_fraction: float, lag_s: float) -> int:
        """Feed the latest signals; returns the (possibly new) tier."""
        engage = max(
            self._tier_for(depth_fraction, self._engage_depth),
            self._tier_for(lag_s, self._engage_lag),
        )
        if engage > self.tier:
            self._transition(engage, depth_fraction, lag_s)
        elif engage < self.tier:
            # Hysteresis: only step down when both signals are below
            # recover_fraction of the *current* tier's engage threshold.
            idx = self.tier - 1
            if (depth_fraction < self._engage_depth[idx] * self._recover
                    and lag_s < self._engage_lag[idx] * self._recover):
                self._transition(self.tier - 1, depth_fraction, lag_s)
        return self.tier

    def _transition(self, tier: int, depth_fraction: float, lag_s: float) -> None:
        previous = self.tier
        self.tier = tier
        self.transitions += 1
        if self._decisions is not None:
            from repro.obs.decisions import TIER_CHANGE

            self._decisions.record(
                t_us=self._clock() * 1e6,
                action=TIER_CHANGE,
                candidate_id="service",
                reason=(
                    f"{TIER_NAMES[previous]}->{TIER_NAMES[tier]} "
                    f"depth={depth_fraction:.3f} lag_s={lag_s:.3f}"
                ),
            )

    @property
    def shedding_deltas(self) -> bool:
        return self.tier >= TIER_SHED_DELTAS

    @property
    def subscriptions_paused(self) -> bool:
        return self.tier >= TIER_PAUSE_SUBSCRIPTIONS

    @property
    def rejecting_ingest(self) -> bool:
        return self.tier >= TIER_REJECT_INGEST
