"""Shared-engine hosting: every registered query on one MultiQueryEngine.

With ``ServiceConfig.shared_engine`` the service re-hosts ``register``/
``unregister`` on a single :class:`~repro.multi.engine.MultiQueryEngine`:
relation name *is* stream identity, so an arrival ingested through any
member query advances the one shared window for that relation and is
processed by every member that joins it. Per-tenant admission stays per
member query (one token bucket per tenant per query, exactly as in
isolated hosting); backpressure moves to the group, because one ingress
queue and one worker feed the shared engine in global seq order.

Members duck-type the :class:`~repro.service.server.QueryHost` surface
the HTTP layer touches (``try_ingest``, ``results_since``, ``status``,
``subscribers``, ``drain``, ``kill``, ``plan``, ``queue``, ``tiers``),
so every existing route — ingest, results, status, subscribe, drain,
metrics — works unchanged against a shared group, and one new route
(``DELETE /v1/queries/{name}``) removes a member at an update boundary,
releasing only the cache bytes no surviving member references.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.multi.engine import MultiQueryEngine
from repro.obs.decisions import DecisionLog, DRAIN
from repro.service.admission import AdmissionController
from repro.service.backpressure import (
    DegradationController,
    IngressQueue,
    TIER_NAMES,
    TIER_PAUSE_SUBSCRIPTIONS,
)
from repro.service.config import ServiceConfig
from repro.streams.events import Update


class _MemberWindows:
    """The slice of the shared windows one member query joins.

    Exposes only ``sizes`` — what the ingest validator consults — scoped
    to the member's own relations; the actual window state lives once in
    the group.
    """

    def __init__(self, group: "SharedQueryGroup", relations: Tuple[str, ...]):
        self._group = group
        self._relations = relations

    @property
    def sizes(self) -> Dict[str, int]:
        return {
            name: self._group.windows.sizes[name]
            for name in self._relations
        }

    def relations(self) -> Tuple[str, ...]:
        return tuple(sorted(self._relations))


class SharedQueryMember:
    """One query hosted on the shared engine (QueryHost duck type)."""

    def __init__(
        self,
        group: "SharedQueryGroup",
        name: str,
        spec: dict,
        schemas: Dict[str, List[str]],
        relations: Tuple[str, ...],
    ):
        self.group = group
        self.name = name
        self.spec = dict(spec)
        self.schemas = schemas
        self.windows = _MemberWindows(group, relations)
        self.relations = relations
        self.admission = AdmissionController(
            group.config.tenant_rate,
            group.config.tenant_burst,
            degraded_rate_factor=group.config.degraded_rate_factor,
        )
        self.delta_log: "list" = []
        self.delta_trimmed = 0
        self.deltas_shed = 0
        self.acked_seq = -1
        self.subscribers: List = []

    # -- QueryHost surface -------------------------------------------------
    @property
    def plan(self):
        return self.group.engine.engine_for(self.name)

    @property
    def queue(self) -> IngressQueue:
        return self.group.queue

    @property
    def tiers(self) -> DegradationController:
        return self.group.tiers

    @property
    def processed_seq(self) -> int:
        return self.group.processed_seq

    @property
    def draining(self) -> bool:
        return self.group.draining

    def try_ingest(self, tenant: str, arrivals: List[Tuple[str, tuple]]):
        return self.group.try_ingest(self, tenant, arrivals)

    def results_since(self, since_seq: int, limit: int) -> List[dict]:
        out = []
        for entry in self.delta_log:
            if entry["seq"] > since_seq:
                out.append(entry)
                if len(out) >= limit:
                    break
        return out

    def _trim_delta_log(self) -> None:
        capacity = self.group.config.delta_log_capacity
        excess = len(self.delta_log) - capacity
        if excess > 0:
            del self.delta_log[:excess]
            self.delta_trimmed += excess

    async def drain(self, deadline_s: float) -> bool:
        return await self.group.drain(deadline_s)

    def kill(self) -> None:
        self.group.kill()

    def status(self) -> dict:
        metrics = self.plan.ctx.metrics
        return {
            "query": self.name,
            "workload": self.spec.get("workload", {}),
            "relations": list(self.windows.relations()),
            "schema": self.schemas,
            "shared_engine": True,
            "tier": TIER_NAMES[self.group.tiers.tier],
            "queue_depth_updates": self.group.queue.depth_updates,
            "queue_capacity_updates": self.group.queue.capacity,
            "oldest_lag_s": round(self.group.queue.oldest_lag_s(), 6),
            "next_seq": self.group.next_seq,
            "processed_seq": self.group.processed_seq,
            "acked_seq": self.acked_seq,
            "delta_log_entries": len(self.delta_log),
            "delta_trimmed": self.delta_trimmed,
            "deltas_shed": self.deltas_shed,
            "engine_errors": self.group.engine_errors,
            "checkpoints": 0,
            "resumed": False,
            "replayed_updates": 0,
            "subscribers": len(self.subscribers),
            "admission": self.admission.summary(),
            "shedding": None,
            "updates_processed": metrics.updates_processed,
            "outputs_emitted": metrics.outputs_emitted,
            "engine": self.group.engine.snapshot(),
        }


class SharedQueryGroup:
    """One MultiQueryEngine, one ingress lane, N member queries."""

    def __init__(
        self,
        config: ServiceConfig,
        loop: asyncio.AbstractEventLoop,
        engine_exec: ThreadPoolExecutor,
        registry,
        windows_cls,
        batch_cls,
        jsonable_delta,
        drain_sentinel,
        close_frame,
        seconds_buckets,
    ):
        self.config = config
        self._loop = loop
        self._engine_exec = engine_exec
        self.registry = registry
        # Injected from repro.service.server to avoid an import cycle.
        self._windows_cls = windows_cls
        self._batch_cls = batch_cls
        self._jsonable_delta = jsonable_delta
        self._drain_sentinel = drain_sentinel
        self._close_frame = close_frame
        self._seconds_buckets = seconds_buckets

        engine_cfg = config.engine
        tuning = engine_cfg.acaching_config()
        self.engine = MultiQueryEngine(
            budget_bytes=tuning.reoptimizer.memory_budget_bytes,
            share_caches=engine_cfg.share_caches,
        )
        self.windows = windows_cls({})
        self.members: Dict[str, SharedQueryMember] = {}
        self.next_seq = 0
        self.processed_seq = -1
        self.engine_errors = 0
        self.draining = False
        self.queue = IngressQueue(config.queue_capacity_updates)
        self.decisions = DecisionLog()
        self.tiers = DegradationController(config, decision_log=self.decisions)
        self._last_tier = self.tiers.tier
        self.worker: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, name: str, spec: dict, factory) -> SharedQueryMember:
        """Add a member query; splices into the shared engine warm."""
        workload = factory()
        for relation, size in workload.windows.items():
            hosted = self.windows.sizes.get(relation)
            if hosted is not None and hosted != size:
                raise ConfigError(
                    f"relation {relation!r} is hosted with window {hosted}; "
                    f"query {name!r} expects {size} — shared streams must "
                    "agree on window sizes"
                )
        self.engine.register(name, workload, self.config.engine)
        # Extend the shared windows only after the engine accepted the
        # query (window sizes already validated above).
        for relation, size in workload.windows.items():
            if relation not in self.windows.sizes:
                self.windows.sizes[relation] = size
                self.windows._windows[relation] = deque()
        schemas = {
            rel: list(schema.attributes)
            for rel, schema in workload.graph.schemas.items()
        }
        member = SharedQueryMember(
            self, name, spec, schemas, tuple(workload.graph.relations)
        )
        self.members[name] = member
        return member

    def unregister(self, name: str) -> None:
        """Remove a member at an update boundary; shared windows stay
        warm and only unreferenced cache bytes are released."""
        member = self.members.pop(name)
        self.engine.unregister(name)
        close_frame = {
            "type": "close", "query": name, "reason": "unregistered",
        }
        for subscriber in member.subscribers:
            subscriber.control(close_frame)
            subscriber.offer(self._close_frame)

    # ------------------------------------------------------------------
    # ingest (loop thread, atomic)
    # ------------------------------------------------------------------
    def try_ingest(
        self,
        member: SharedQueryMember,
        tenant: str,
        arrivals: List[Tuple[str, tuple]],
    ):
        if self.draining:
            return (
                "rejected", 503, self.config.drain_deadline_s, "draining",
            )
        if self.tiers.rejecting_ingest:
            self._reject_metric(member, "overloaded")
            return ("rejected", 503, self._retry_after(), "overloaded")
        retry_after = member.admission.admit(tenant, len(arrivals))
        if retry_after > 0.0:
            self._reject_metric(member, "admission")
            return ("rejected", 429, retry_after, "admission")
        worst_case = 2 * len(arrivals)
        if not self.queue.reserve(worst_case):
            self._reject_metric(member, "queue_full")
            return ("rejected", 429, self._retry_after(), "queue_full")
        updates: List[Update] = []
        for relation, values in arrivals:
            updates.extend(
                self.windows.feed(
                    relation, values, self.next_seq + len(updates)
                )
            )
        self.next_seq += len(updates)
        self.queue.cancel_reservation(worst_case - len(updates))
        self.queue.put(self._batch_cls(updates, time.monotonic()))
        self._evaluate_tiers()
        self.registry.counter(
            "repro_service_ingest_updates_total", {"query": member.name}
        ).inc(len(updates))
        return ("accepted", updates, None)

    def _reject_metric(self, member: SharedQueryMember, reason: str) -> None:
        self.registry.counter(
            "repro_service_rejected_total",
            {"query": member.name, "reason": reason},
        ).inc()

    def _retry_after(self) -> float:
        lag = self.queue.oldest_lag_s()
        return min(5.0, max(0.1, lag if lag > 0 else 0.25))

    # ------------------------------------------------------------------
    # the worker (one asyncio task for the whole group)
    # ------------------------------------------------------------------
    async def run_worker(self) -> None:
        while True:
            batch = await self.queue.get()
            if batch is self._drain_sentinel:
                break
            per_update: Optional[List[Dict[str, list]]]
            try:
                per_update = await self._loop.run_in_executor(
                    self._engine_exec, self._process_job, batch.updates
                )
            except Exception:
                self.engine_errors += 1
                self.registry.counter(
                    "repro_service_engine_errors_total",
                    {"query": "_shared"},
                ).inc()
                per_update = None
            if per_update is not None:
                self._publish(batch, per_update)
            self.processed_seq = batch.updates[-1].seq
            self.queue.release(len(batch.updates))
            self._evaluate_tiers()
            latency = time.monotonic() - batch.enqueued_at
            self.registry.histogram(
                "repro_service_delta_latency_seconds",
                {"query": "_shared"},
                buckets=self._seconds_buckets,
            ).observe(latency)

    def _process_job(
        self, updates: List[Update]
    ) -> List[Dict[str, list]]:
        """Engine-executor job: each update through every interested
        member, shared window mutated once (MultiQueryEngine.process)."""
        return [self.engine.process(update) for update in updates]

    def _publish(
        self, batch, per_update: List[Dict[str, list]]
    ) -> None:
        frames: Dict[str, List[dict]] = {}
        for update, outputs in zip(batch.updates, per_update):
            for query_id, deltas in outputs.items():
                member = self.members.get(query_id)
                if member is None:
                    continue
                entry = {
                    "seq": update.seq,
                    "deltas": [self._jsonable_delta(d) for d in deltas],
                }
                member.delta_log.append(entry)
                if entry["deltas"]:
                    frames.setdefault(query_id, []).append(entry)
        shedding = (
            self.tiers.shedding_deltas or self.tiers.subscriptions_paused
        )
        for query_id, entries in frames.items():
            member = self.members[query_id]
            member._trim_delta_log()
            if shedding:
                member.deltas_shed += sum(len(e["deltas"]) for e in entries)
                for subscriber in member.subscribers:
                    subscriber.gap = True
                continue
            frame = {
                "type": "deltas",
                "query": query_id,
                "seq_last": batch.updates[-1].seq,
                "entries": entries,
            }
            for subscriber in member.subscribers:
                subscriber.offer(frame)
        for member in self.members.values():
            member._trim_delta_log()

    def _evaluate_tiers(self) -> None:
        tier = self.tiers.update(
            self.queue.depth_fraction, self.queue.oldest_lag_s()
        )
        if tier == self._last_tier:
            return
        crossed_up = tier >= TIER_PAUSE_SUBSCRIPTIONS > self._last_tier
        crossed_down = self._last_tier >= TIER_PAUSE_SUBSCRIPTIONS > tier
        self._last_tier = tier
        if crossed_up or crossed_down:
            for member in self.members.values():
                frame = {
                    "type": "flow",
                    "query": member.name,
                    "state": "pause" if crossed_up else "resume",
                    "tier": TIER_NAMES[tier],
                }
                for subscriber in member.subscribers:
                    subscriber.control(frame)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def drain(self, deadline_s: float) -> bool:
        """Stop ingest, let the shared queue empty. Idempotent."""
        if self.draining:
            return self.queue.depth_updates == 0
        self.draining = True
        self.decisions.record(
            0.0, DRAIN, "service",
            reason=f"shared group begin depth={self.queue.depth_updates}",
        )
        deadline = time.monotonic() + deadline_s
        while self.queue.depth_updates > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        drained = self.queue.depth_updates == 0
        self.queue.put(self._drain_sentinel)
        if self.worker is not None:
            try:
                await asyncio.wait_for(
                    self.worker,
                    timeout=max(1.0, deadline - time.monotonic()),
                )
            except asyncio.TimeoutError:
                self.worker.cancel()
        for member in self.members.values():
            close_frame = {
                "type": "close", "query": member.name, "reason": "drain",
            }
            for subscriber in member.subscribers:
                subscriber.control(close_frame)
                subscriber.offer(self._close_frame)
        return drained

    def kill(self) -> None:
        self.draining = True
        if self.worker is not None:
            self.worker.cancel()

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def engine_metrics_text(self) -> str:
        """The multi engine's merged, query_id-labeled exposition."""
        return self.engine.metrics_prometheus()
