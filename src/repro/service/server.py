"""The streaming ingestion server: Session-facade engines on the wire.

One :class:`StreamingService` hosts any number of continuous queries.
Each :class:`QueryHost` owns:

* an adaptive engine built through the :mod:`repro.api` facade (with a
  resilience controller — the load shedder is the gate *behind*
  admission control),
* the service-side window operators that turn client arrivals into the
  engine's globally ordered update stream,
* a per-query WAL + checkpoint store (the PR-5 recovery format), so a
  killed server resumes via :class:`~repro.recovery.manager.
  RecoveryManager` without losing one acknowledged update,
* the bounded ingress queue, admission controller, and degradation
  ladder defending the ingest path, and
* the result-delta log + WebSocket subscribers.

Threading model — three lanes, each single-threaded:

* the **event loop** owns all service state (windows, seq counters,
  queues, delta logs, subscribers); handlers never await inside an
  order-critical section, so loop-thread sections are atomic;
* a one-thread **WAL executor** serializes every journal/checkpoint file
  operation (FIFO, so a checkpoint's fsync queues behind every pending
  append);
* a one-thread **engine executor** serializes all engine mutation,
  preserving the paper's global update ordering.

An ingest request is acknowledged (HTTP 202) only after its updates are
fsynced — durability *is* the acknowledgment, which is what makes the
kill-then-recover byte-identity benchmark meaningful.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.api import EngineConfig, build_adaptive_engine
from repro.errors import ConfigError, ServiceError
from repro.faults.resilience import ResilienceConfig
from repro.obs.decisions import CHECKPOINT, DRAIN
from repro.obs.export import registry_to_prometheus
from repro.obs.registry import MetricsRegistry
from repro.recovery.manager import RecoveryConfig, RecoveryManager, build_payload
from repro.recovery.snapshot import CheckpointStore
from repro.recovery.wal import WriteAheadLog, read_wal
from repro.service.admission import AdmissionController
from repro.service.backpressure import (
    DegradationController,
    IngressQueue,
    TIER_NAMES,
    TIER_PAUSE_SUBSCRIPTIONS,
)
from repro.service.config import ServiceConfig
from repro.service.http import (
    BadRequest,
    HttpRequest,
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    SlowClient,
    encode_ws_frame,
    json_response,
    read_request,
    read_ws_frame,
    response_bytes,
    websocket_accept,
)
from repro.streams.events import Sign, Update, canonical_delta
from repro.streams.tuples import Row
from repro.streams.workloads import (
    fig9_workload,
    table2_workload,
    three_way_chain,
)

__all__ = ["QueryHost", "ServiceThread", "StreamingService", "workload_factory"]

QUERY_NAME = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")
QUERY_SPEC_FILE = "query.json"

_DRAIN_SENTINEL = object()
_CLOSE_FRAME = object()

# Wall-clock seconds buckets for service request/delta latency histograms
# (the registry default buckets are virtual-time microseconds).
SECONDS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# The numeric knobs a "chain" registration may set (three_way_chain kwargs).
_CHAIN_PARAMS = {
    "t_multiplicity", "s_multiplicity", "r_multiplicity",
    "rate_r", "rate_s", "rate_t",
    "window_r", "window_s", "window_t", "s_b_offset",
}


def workload_factory(spec: dict) -> Callable[[], object]:
    """Resolve a registration's workload spec to a zero-arg factory.

    Specs name one of the paper's workload templates::

        {"kind": "chain",  "params": {"window_r": 64, ...}}
        {"kind": "star",   "params": {"n": 3, "window": 24}}
        {"kind": "table2", "params": {"point": "D4"}}

    Raises :class:`~repro.errors.ConfigError` on anything else — the
    HTTP layer maps that to a 400, the CLI to ``error:``.
    """
    if not isinstance(spec, dict):
        raise ConfigError("workload spec must be an object")
    kind = spec.get("kind")
    params = spec.get("params", {})
    if not isinstance(params, dict):
        raise ConfigError("workload params must be an object")
    if kind == "chain":
        unknown = set(params) - _CHAIN_PARAMS
        if unknown:
            raise ConfigError(
                f"unknown chain workload params: {sorted(unknown)}"
            )
        for key, value in params.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ConfigError(f"chain param {key!r} must be a number")
        kwargs = {
            key: (int(value) if key.startswith(("window", "s_b")) else value)
            for key, value in params.items()
        }
        return lambda: three_way_chain(**kwargs)
    if kind == "star":
        n = params.get("n", 3)
        window = params.get("window", 96)
        if not isinstance(n, int) or isinstance(n, bool) or not 2 <= n <= 12:
            raise ConfigError(f"star workload n must be an int in 2..12, got {n!r}")
        if not isinstance(window, int) or window < 1:
            raise ConfigError(f"star workload window must be >= 1, got {window!r}")
        return lambda: fig9_workload(n, window=window)
    if kind == "table2":
        point = params.get("point", "D4")
        if not isinstance(point, str):
            raise ConfigError("table2 workload point must be a string")
        return lambda: table2_workload(point)
    raise ConfigError(
        f"workload kind must be 'chain', 'star', or 'table2', got {kind!r}"
    )


def _jsonable_delta(delta) -> list:
    """A JSON-stable form of :func:`canonical_delta` (lists, not tuples)."""
    sign, pairs = canonical_delta(delta)
    return [sign, [[relation, list(values)] for relation, values in pairs]]


class _ServiceWindows:
    """The service's copy of each relation's sliding window.

    Mirrors :class:`~repro.streams.windows.CountWindow` semantics (delete
    of the expired row precedes the insert) with a shared rid space, and
    additionally supports WAL replay (:meth:`apply`) and checkpoint
    state capture/restore — which the stream-producing windows in
    :mod:`repro.streams` never needed.
    """

    def __init__(self, sizes: Dict[str, int]):
        self.sizes = dict(sizes)
        self._windows: Dict[str, Deque[Row]] = {
            name: deque() for name in sizes
        }
        self.next_rid = 0
        self.last_fed_seq = -1

    def relations(self) -> Tuple[str, ...]:
        return tuple(sorted(self.sizes))

    def feed(self, relation: str, values: tuple, seq_start: int) -> List[Update]:
        window = self._windows[relation]
        updates: List[Update] = []
        seq = seq_start
        if len(window) >= self.sizes[relation]:
            expired = window.popleft()
            updates.append(Update(relation, expired, Sign.DELETE, seq))
            seq += 1
        row = Row(self.next_rid, values)
        self.next_rid += 1
        window.append(row)
        updates.append(Update(relation, row, Sign.INSERT, seq))
        self.last_fed_seq = seq
        return updates

    def apply(self, update: Update) -> None:
        """Replay one journaled update's window mutation (recovery path)."""
        window = self._windows[update.relation]
        if update.sign is Sign.INSERT:
            window.append(update.row)
            self.next_rid = max(self.next_rid, update.row.rid + 1)
        else:
            if window and window[0].rid == update.row.rid:
                window.popleft()
            else:  # defensive: delete by rid wherever it sits
                for i, row in enumerate(window):
                    if row.rid == update.row.rid:
                        del window[i]
                        break
        self.last_fed_seq = max(self.last_fed_seq, update.seq)

    def state(self) -> dict:
        return {
            "rows": {
                name: [(row.rid, list(row.values)) for row in window]
                for name, window in self._windows.items()
            },
            "next_rid": self.next_rid,
            "last_fed_seq": self.last_fed_seq,
        }

    def load(self, state: dict) -> None:
        for name, rows in state["rows"].items():
            self._windows[name] = deque(
                Row(rid, tuple(values)) for rid, values in rows
            )
        self.next_rid = state["next_rid"]
        self.last_fed_seq = state["last_fed_seq"]


class _Subscriber:
    """One WebSocket delta subscription with credit-based flow control."""

    def __init__(self, buffer: int, credits: int):
        self.frames: asyncio.Queue = asyncio.Queue(maxsize=buffer)
        self.credits = credits
        self.credit_event = asyncio.Event()
        self.gap = False          # dropped/shed frames since the last send
        self.dropped = 0
        self.sent = 0

    def offer(self, frame: dict) -> None:
        """Enqueue a data frame; a full buffer marks a gap, never blocks."""
        try:
            self.frames.put_nowait(frame)
        except asyncio.QueueFull:
            self.gap = True
            self.dropped += 1

    def control(self, frame: dict) -> None:
        """Enqueue a flow-control frame (same bound, same drop rule)."""
        self.offer(frame)

    def add_credits(self, n: int) -> None:
        self.credits += n
        self.credit_event.set()


class _IngestBatch:
    __slots__ = ("updates", "enqueued_at")

    def __init__(self, updates: List[Update], enqueued_at: float):
        self.updates = updates
        self.enqueued_at = enqueued_at


class QueryHost:
    """One hosted continuous query: engine + windows + journal + queue."""

    def __init__(
        self,
        name: str,
        spec: dict,
        config: ServiceConfig,
        loop: asyncio.AbstractEventLoop,
        wal_exec: ThreadPoolExecutor,
        engine_exec: ThreadPoolExecutor,
        registry: MetricsRegistry,
    ):
        self.name = name
        self.spec = dict(spec)
        self.config = config
        self._loop = loop
        self._wal_exec = wal_exec
        self._engine_exec = engine_exec
        self.registry = registry
        self._factory = workload_factory(spec.get("workload", {}))
        self._workload = self._factory()
        engine_cfg = config.engine
        if engine_cfg.resilience is None:
            # The service always runs the engine-side shedder: admission
            # is the first gate, the shedder the second.
            engine_cfg = replace(engine_cfg, resilience=ResilienceConfig())
        if engine_cfg.wal_dir is not None:
            raise ConfigError(
                "service engines must not set wal_dir; the service owns "
                "the per-query journal under wal_root"
            )
        self.engine_config: EngineConfig = engine_cfg

        self.schemas = {
            name: list(schema.attributes)
            for name, schema in self._workload.graph.schemas.items()
        }
        self.windows = _ServiceWindows(self._workload.windows)
        self.next_seq = 0
        self.processed_seq = -1    # engine has applied updates <= this
        self.acked_seq = -1        # clients hold 202s for updates <= this
        self.delta_log: Deque[dict] = deque()
        self.delta_trimmed = 0
        self.deltas_shed = 0
        self.engine_errors = 0
        self.checkpoints = 0
        self.resumed = False
        self.replayed_updates = 0
        self.draining = False

        self.queue = IngressQueue(config.queue_capacity_updates)
        self.admission = AdmissionController(
            config.tenant_rate,
            config.tenant_burst,
            degraded_rate_factor=config.degraded_rate_factor,
        )
        self.subscribers: List[_Subscriber] = []
        self._since_checkpoint = 0

        self.wal: Optional[WriteAheadLog] = None
        self.store: Optional[CheckpointStore] = None
        self.recovery_config: Optional[RecoveryConfig] = None
        if config.wal_root is not None:
            self._open_durable(os.path.join(config.wal_root, name))
        else:
            self.plan = self._construct_engine()

        self.tiers = DegradationController(
            config, decision_log=self.plan.ctx.obs.decisions
        )
        self._last_tier = self.tiers.tier
        self.worker: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # construction / recovery
    # ------------------------------------------------------------------
    def _construct_engine(self):
        from repro import obs as obs_mod

        handle = obs_mod.Observability.tracing(profile=True)
        with obs_mod.session(handle):
            return build_adaptive_engine(self._workload, self.engine_config)

    def _open_durable(self, wal_dir: str) -> None:
        os.makedirs(wal_dir, exist_ok=True)
        spec_path = os.path.join(wal_dir, QUERY_SPEC_FILE)
        if not os.path.exists(spec_path):
            with open(spec_path, "w", encoding="utf-8") as handle:
                json.dump(self.spec, handle, sort_keys=True)
        self.recovery_config = RecoveryConfig(
            wal_dir=wal_dir,
            checkpoint_interval=self.config.checkpoint_interval,
            fsync_every=self.engine_config.wal_fsync_every,
            cache_mode=self.engine_config.cache_recovery,
        )
        rcfg = self.recovery_config
        had_state = os.path.exists(rcfg.wal_path) or (
            os.path.isdir(rcfg.checkpoint_dir)
            and os.listdir(rcfg.checkpoint_dir)
        )
        if had_state:
            self._restore(rcfg)
        else:
            self.plan = self._construct_engine()
        # Append from here on; pre-existing bytes survived a crash or a
        # clean close, which both prove they are durable.
        self.wal = WriteAheadLog(
            rcfg.wal_path, fsync_every=self.engine_config.wal_fsync_every
        )
        self.store = CheckpointStore(rcfg.checkpoint_dir)

    def _restore(self, rcfg: RecoveryConfig) -> None:
        restored = RecoveryManager(rcfg, builder=self._construct_engine).restore()
        self.plan = restored.plan
        state = (restored.runner_state or {}).get("service")
        if state is not None:
            self.windows.load(state["windows"])
            self.delta_log = deque(state["delta_log"])
            self.delta_trimmed = state.get("delta_trimmed", 0)
            self.next_seq = state["next_seq"]
        # Re-apply the WAL suffix's window mutations. Engine replay was
        # RecoveryManager's job (everything past the checkpoint seq);
        # service windows were snapshotted at ``last_fed_seq`` which can
        # be *ahead* of the checkpoint (accepted-but-unprocessed
        # updates), so replay strictly past that.
        fed = self.windows.last_fed_seq
        updates, _torn, _ = read_wal(rcfg.wal_path)
        for update in updates:
            if update.seq > fed:
                self.windows.apply(update)
        for seq, deltas in restored.replayed:
            self.delta_log.append({
                "seq": seq,
                "deltas": [_jsonable_delta(d) for d in deltas],
            })
        self._trim_delta_log()
        self.next_seq = max(self.next_seq, restored.last_seq + 1)
        self.processed_seq = restored.last_seq
        self.acked_seq = restored.last_seq
        self.resumed = True
        self.replayed_updates = len(restored.replayed)

    # ------------------------------------------------------------------
    # ingest (loop thread; the whole method is one atomic section)
    # ------------------------------------------------------------------
    def try_ingest(self, tenant: str, arrivals: List[Tuple[str, tuple]]):
        """Admission → tier → reservation → windows → WAL → queue.

        Returns ``("accepted", updates, wal_future)`` or
        ``("rejected", status, retry_after_s, reason)``. Runs entirely on
        the loop thread with no awaits: the queue reservation happens
        while the 429 can still be issued, so an accepted batch can
        never find the queue full — the deterministic
        429-before-overflow property the integration test pins down.
        """
        if self.draining:
            return ("rejected", 503, self.config.drain_deadline_s, "draining")
        if self.tiers.rejecting_ingest:
            self._reject_metric("overloaded")
            return ("rejected", 503, self._retry_after(), "overloaded")
        retry_after = self.admission.admit(tenant, len(arrivals))
        if retry_after > 0.0:
            self._reject_metric("admission")
            return ("rejected", 429, retry_after, "admission")
        worst_case = 2 * len(arrivals)
        if not self.queue.reserve(worst_case):
            self._reject_metric("queue_full")
            return ("rejected", 429, self._retry_after(), "queue_full")
        updates: List[Update] = []
        for relation, values in arrivals:
            updates.extend(
                self.windows.feed(relation, values, self.next_seq + len(updates))
            )
        self.next_seq += len(updates)
        self.queue.cancel_reservation(worst_case - len(updates))
        wal_future = None
        if self.wal is not None:
            wal_future = self._loop.run_in_executor(
                self._wal_exec, self._journal_job, updates
            )
        self.queue.put(_IngestBatch(updates, time.monotonic()))
        self._evaluate_tiers()
        self.registry.counter(
            "repro_service_ingest_updates_total", {"query": self.name}
        ).inc(len(updates))
        return ("accepted", updates, wal_future)

    def _reject_metric(self, reason: str) -> None:
        self.registry.counter(
            "repro_service_rejected_total",
            {"query": self.name, "reason": reason},
        ).inc()

    def _retry_after(self) -> float:
        """Backpressure hint: scale with how far behind the worker is."""
        lag = self.queue.oldest_lag_s()
        return min(5.0, max(0.1, lag if lag > 0 else 0.25))

    def _journal_job(self, updates: List[Update]) -> int:
        """WAL-executor job: append + fsync; returns the durable offset."""
        for update in updates:
            self.wal.append(update)
        self.wal.sync()
        return self.wal.durable_offset

    # ------------------------------------------------------------------
    # the worker (one asyncio task per host)
    # ------------------------------------------------------------------
    async def run_worker(self) -> None:
        while True:
            batch = await self.queue.get()
            if batch is _DRAIN_SENTINEL:
                break
            per_update: Optional[List[list]]
            try:
                per_update = await self._loop.run_in_executor(
                    self._engine_exec, self._process_job, batch.updates
                )
            except Exception:
                # A poison batch must not kill the worker: count it,
                # release its capacity, and keep serving.
                self.engine_errors += 1
                self.registry.counter(
                    "repro_service_engine_errors_total", {"query": self.name}
                ).inc()
                per_update = None
            if per_update is not None:
                self._publish(batch, per_update)
            self.processed_seq = batch.updates[-1].seq
            self.queue.release(len(batch.updates))
            resilience = getattr(self.plan, "resilience", None)
            self.admission.note_engine_degraded(
                bool(resilience is not None and resilience.degraded)
            )
            self._evaluate_tiers()
            latency = time.monotonic() - batch.enqueued_at
            self.registry.histogram(
                "repro_service_delta_latency_seconds",
                {"query": self.name},
                buckets=SECONDS_BUCKETS,
            ).observe(latency)
            self._since_checkpoint += len(batch.updates)
            if (
                self.wal is not None
                and self._since_checkpoint >= self.config.checkpoint_interval
            ):
                await self.checkpoint()

    def _process_job(self, updates: List[Update]) -> List[list]:
        """Engine-executor job: per-update processing under a span."""
        plan = self.plan
        profiler = plan.ctx.obs.profiler
        if profiler.enabled:
            with profiler.span("service:batch", clock=plan.ctx.clock):
                return [plan.process(update) for update in updates]
        return [plan.process(update) for update in updates]

    def _publish(self, batch: _IngestBatch, per_update: List[list]) -> None:
        entries = []
        for update, deltas in zip(batch.updates, per_update):
            entry = {
                "seq": update.seq,
                "deltas": [_jsonable_delta(d) for d in deltas],
            }
            self.delta_log.append(entry)
            if entry["deltas"]:
                entries.append(entry)
        self._trim_delta_log()
        if self.tiers.shedding_deltas or self.tiers.subscriptions_paused:
            # Degraded: drop the fan-out, leave a gap notice for each
            # subscriber. The delta log keeps everything — clients can
            # re-fetch via GET /results once the tier recovers.
            self.deltas_shed += sum(len(e["deltas"]) for e in entries)
            for subscriber in self.subscribers:
                subscriber.gap = True
            return
        if not entries:
            return
        frame = {
            "type": "deltas",
            "query": self.name,
            "seq_last": batch.updates[-1].seq,
            "entries": entries,
        }
        for subscriber in self.subscribers:
            subscriber.offer(frame)

    def _trim_delta_log(self) -> None:
        while len(self.delta_log) > self.config.delta_log_capacity:
            self.delta_log.popleft()
            self.delta_trimmed += 1

    def _evaluate_tiers(self) -> None:
        tier = self.tiers.update(
            self.queue.depth_fraction, self.queue.oldest_lag_s()
        )
        if tier == self._last_tier:
            return
        crossed_up = (
            tier >= TIER_PAUSE_SUBSCRIPTIONS > self._last_tier
        )
        crossed_down = (
            self._last_tier >= TIER_PAUSE_SUBSCRIPTIONS > tier
        )
        self._last_tier = tier
        if crossed_up or crossed_down:
            frame = {
                "type": "flow",
                "query": self.name,
                "state": "pause" if crossed_up else "resume",
                "tier": TIER_NAMES[tier],
            }
            for subscriber in self.subscribers:
                subscriber.control(frame)

    # ------------------------------------------------------------------
    # checkpoint / drain
    # ------------------------------------------------------------------
    def _service_state(self) -> dict:
        return {
            "service": {
                "windows": self.windows.state(),
                "next_seq": self.next_seq,
                "delta_log": list(self.delta_log),
                "delta_trimmed": self.delta_trimmed,
            }
        }

    async def checkpoint(self) -> None:
        """Snapshot at the current processed seq (engine is quiescent:
        the single worker awaits this before taking the next batch)."""
        if self.wal is None or self.processed_seq < 0:
            return
        state = self._service_state()
        await self._loop.run_in_executor(
            self._wal_exec, self._checkpoint_job, self.processed_seq, state
        )
        self._since_checkpoint = 0

    def _checkpoint_job(self, last_seq: int, runner_state: dict) -> str:
        # WAL first: a checkpoint must never be newer than the durable
        # log. FIFO executor ordering already queued us behind every
        # pending append.
        self.wal.sync()
        payload = build_payload(
            self.plan, self.recovery_config.cache_mode, last_seq, runner_state
        )
        path = self.store.write(last_seq, payload)
        self.store.prune(self.recovery_config.keep_checkpoints)
        self.checkpoints += 1
        ctx = self.plan.ctx
        ctx.obs.decisions.record(
            ctx.clock.now_us,
            CHECKPOINT,
            "service",
            reason=f"query={self.name} seq={last_seq}",
        )
        return path

    async def drain(self, deadline_s: float) -> bool:
        """Stop ingest, let the queue empty, checkpoint, close the WAL.

        Returns True when the queue fully drained within the deadline.
        """
        self.draining = True
        ctx = self.plan.ctx
        ctx.obs.decisions.record(
            ctx.clock.now_us,
            DRAIN,
            "service",
            reason=f"query={self.name} begin depth={self.queue.depth_updates}",
        )
        deadline = time.monotonic() + deadline_s
        while self.queue.depth_updates > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        drained = self.queue.depth_updates == 0
        self.queue.put(_DRAIN_SENTINEL)
        if self.worker is not None:
            try:
                await asyncio.wait_for(
                    self.worker, timeout=max(1.0, deadline - time.monotonic())
                )
            except asyncio.TimeoutError:
                self.worker.cancel()
        if self.wal is not None:
            if self.processed_seq >= 0:
                state = self._service_state()
                await self._loop.run_in_executor(
                    self._wal_exec, self._checkpoint_job,
                    self.processed_seq, state,
                )
            await self._loop.run_in_executor(self._wal_exec, self.wal.close)
        ctx.obs.decisions.record(
            ctx.clock.now_us,
            DRAIN,
            "service",
            reason=f"query={self.name} done drained={'yes' if drained else 'no'}",
        )
        close_frame = {"type": "close", "query": self.name, "reason": "drain"}
        for subscriber in self.subscribers:
            subscriber.control(close_frame)
            subscriber.offer(_CLOSE_FRAME)  # type: ignore[arg-type]
        return drained

    def kill(self) -> None:
        """Crash simulation: lose everything past the last fsync."""
        self.draining = True
        if self.worker is not None:
            self.worker.cancel()
        if self.wal is not None:
            self.wal.abandon()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def results_since(self, since_seq: int, limit: int) -> List[dict]:
        out = []
        for entry in self.delta_log:
            if entry["seq"] > since_seq:
                out.append(entry)
                if len(out) >= limit:
                    break
        return out

    def status(self) -> dict:
        resilience = getattr(self.plan, "resilience", None)
        return {
            "query": self.name,
            "workload": self.spec.get("workload", {}),
            "relations": list(self.windows.relations()),
            "schema": self.schemas,
            "tier": TIER_NAMES[self.tiers.tier],
            "queue_depth_updates": self.queue.depth_updates,
            "queue_capacity_updates": self.queue.capacity,
            "oldest_lag_s": round(self.queue.oldest_lag_s(), 6),
            "next_seq": self.next_seq,
            "processed_seq": self.processed_seq,
            "acked_seq": self.acked_seq,
            "delta_log_entries": len(self.delta_log),
            "delta_trimmed": self.delta_trimmed,
            "deltas_shed": self.deltas_shed,
            "engine_errors": self.engine_errors,
            "checkpoints": self.checkpoints,
            "resumed": self.resumed,
            "replayed_updates": self.replayed_updates,
            "subscribers": len(self.subscribers),
            "admission": self.admission.summary(),
            "shedding": (
                resilience.summary() if resilience is not None else None
            ),
            "updates_processed": self.plan.ctx.metrics.updates_processed,
            "outputs_emitted": self.plan.ctx.metrics.outputs_emitted,
        }


class StreamingService:
    """The asyncio server tying hosts, routing, and lifecycle together."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.hosts: Dict[str, QueryHost] = {}
        # Shared hosting (config.shared_engine): one SharedQueryGroup
        # owns the MultiQueryEngine and every entry in ``hosts`` is a
        # SharedQueryMember duck-typing the QueryHost surface.
        self.group = None
        self.registry = MetricsRegistry()
        self.started = False
        self.draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wal_exec: Optional[ThreadPoolExecutor] = None
        self._engine_exec: Optional[ThreadPoolExecutor] = None
        self.port: Optional[int] = None
        # Idempotency: (query, key) -> completed (status, payload) LRU,
        # plus in-flight futures so a retried request awaits the original
        # instead of re-ingesting its batch.
        self._idem_done: "OrderedDict[Tuple[str, str], Tuple[int, dict]]" = (
            OrderedDict()
        )
        self._idem_pending: Dict[Tuple[str, str], asyncio.Future] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "StreamingService":
        self._loop = asyncio.get_running_loop()
        self._wal_exec = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="svc-wal"
        )
        self._engine_exec = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="svc-engine"
        )
        if self.config.shared_engine:
            # Imported here: shared.py borrows this module's wire types
            # (_ServiceWindows, _IngestBatch, frames), so a top-level
            # import would be circular.
            from repro.service.shared import SharedQueryGroup

            self.group = SharedQueryGroup(
                self.config, self._loop, self._engine_exec, self.registry,
                windows_cls=_ServiceWindows,
                batch_cls=_IngestBatch,
                jsonable_delta=_jsonable_delta,
                drain_sentinel=_DRAIN_SENTINEL,
                close_frame=_CLOSE_FRAME,
                seconds_buckets=SECONDS_BUCKETS,
            )
            self.group.worker = asyncio.get_running_loop().create_task(
                self.group.run_worker()
            )
        if self.config.wal_root is not None:
            os.makedirs(self.config.wal_root, exist_ok=True)
            for entry in sorted(os.listdir(self.config.wal_root)):
                spec_path = os.path.join(
                    self.config.wal_root, entry, QUERY_SPEC_FILE
                )
                if os.path.isfile(spec_path):
                    with open(spec_path, "r", encoding="utf-8") as handle:
                        spec = json.load(handle)
                    self._add_host(entry, spec)
        try:
            self._server = await asyncio.start_server(
                self._on_connection, self.config.host, self.config.port
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot bind {self.config.host}:{self.config.port}: "
                f"{exc.strerror or exc}"
            ) from exc
        self.port = self._server.sockets[0].getsockname()[1]
        self.started = True
        return self

    def _add_host(self, name: str, spec: dict) -> QueryHost:
        if self.group is not None:
            member = self.group.register(
                name, spec, workload_factory(spec["workload"])
            )
            self.hosts[name] = member
            return member
        host = QueryHost(
            name, spec, self.config, self._loop,
            self._wal_exec, self._engine_exec, self.registry,
        )
        host.worker = self._loop.create_task(host.run_worker())
        self.hosts[name] = host
        return host

    async def drain(self) -> Dict[str, bool]:
        """Graceful shutdown tier by tier: reject ingest, empty queues,
        checkpoint, close journals. Idempotent."""
        self.draining = True
        if self.group is not None:
            # One shared queue, one drain; every member reports it.
            drained = await self.group.drain(self.config.drain_deadline_s)
            return {name: drained for name in self.hosts}
        results = {}
        for name, host in self.hosts.items():
            results[name] = await host.drain(self.config.drain_deadline_s)
        return results

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for executor in (self._wal_exec, self._engine_exec):
            if executor is not None:
                executor.shutdown(wait=True)
        self.started = False

    async def kill(self) -> None:
        """Abrupt stop: no drain, no final checkpoint, journals truncated
        to their last fsync — the in-process stand-in for ``kill -9``."""
        self.started = False
        if self._server is not None:
            self._server.close()
        if self.group is not None:
            self.group.kill()
        for host in self.hosts.values():
            host.kill()
        for executor in (self._wal_exec, self._engine_exec):
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)

    @property
    def ready(self) -> bool:
        if not self.started or self.draining:
            return False
        return not any(h.tiers.rejecting_ingest for h in self.hosts.values())

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.monotonic()
        status = 500
        try:
            try:
                request = await read_request(
                    reader,
                    self.config.header_deadline_s,
                    self.config.request_deadline_s,
                )
            except SlowClient:
                status = 408
                writer.write(json_response(408, {"error": "deadline"}))
                await writer.drain()
                return
            except BadRequest as exc:
                status = 400
                writer.write(json_response(400, {"error": str(exc)}))
                await writer.drain()
                return
            if request is None:
                status = 0
                return
            if request.header("upgrade").lower() == "websocket":
                status = 101
                await self._handle_subscribe(request, reader, writer)
                return
            try:
                response, status = await asyncio.wait_for(
                    self._dispatch(request),
                    timeout=self.config.request_deadline_s,
                )
            except asyncio.TimeoutError:
                # Cooperative cancellation: wait_for cancelled the
                # handler at its next await point.
                response, status = json_response(
                    408, {"error": "request deadline exceeded"}
                ), 408
            except BadRequest as exc:
                response, status = json_response(
                    400, {"error": str(exc)}
                ), 400
            except ConfigError as exc:
                response, status = json_response(
                    400, {"error": str(exc)}
                ), 400
            except Exception as exc:  # defensive: a bug must not kill the loop
                response, status = json_response(
                    500, {"error": f"internal: {type(exc).__name__}: {exc}"}
                ), 500
            writer.write(response)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-response; nothing left to say
        except asyncio.CancelledError:
            # Shutdown (or kill) cancelled this connection; close quietly
            # rather than let the streams callback log a traceback.
            pass
        finally:
            self.registry.counter(
                "repro_service_requests_total", {"status": str(status)}
            ).inc()
            self.registry.histogram(
                "repro_service_request_seconds", buckets=SECONDS_BUCKETS
            ).observe(time.monotonic() - started)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(self, request: HttpRequest) -> Tuple[bytes, int]:
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return json_response(
                200, {"status": "ok", "queries": len(self.hosts)}
            ), 200
        if path == "/readyz" and method == "GET":
            if self.ready:
                return json_response(200, {"ready": True}), 200
            reason = "draining" if self.draining else (
                "not_started" if not self.started else "overloaded"
            )
            return json_response(
                503, {"ready": False, "reason": reason}
            ), 503
        if path == "/metrics" and method == "GET":
            return response_bytes(
                200,
                self._metrics_text().encode("utf-8"),
                content_type="text/plain; version=0.0.4",
            ), 200
        if path == "/v1/drain" and method == "POST":
            results = await self.drain()
            return json_response(200, {"draining": True, "drained": results}), 200
        if path == "/v1/queries" and method == "POST":
            return await self._register(request)
        if path == "/v1/queries" and method == "GET":
            return json_response(200, {"queries": sorted(self.hosts)}), 200
        match = re.match(r"^/v1/queries/([^/]+)(/(ingest|results))?$", path)
        if match:
            name, _, action = match.groups()
            host = self.hosts.get(name)
            if host is None:
                return json_response(
                    404, {"error": f"unknown query {name!r}"}
                ), 404
            if action == "ingest" and method == "POST":
                return await self._ingest(host, request)
            if action == "results" and method == "GET":
                return self._results(host, request)
            if action is None and method == "GET":
                return json_response(200, host.status()), 200
            if action is None and method == "DELETE":
                return self._unregister(name)
        return json_response(
            404, {"error": f"no route for {method} {path}"}
        ), 404

    async def _register(self, request: HttpRequest) -> Tuple[bytes, int]:
        body = request.json()
        if not isinstance(body, dict):
            raise BadRequest("registration body must be an object")
        name = body.get("query")
        if not isinstance(name, str) or not QUERY_NAME.match(name):
            raise BadRequest(
                "query name must match [A-Za-z0-9_.-]{1,64}"
            )
        if self.draining:
            return json_response(503, {"error": "draining"}), 503
        existing = self.hosts.get(name)
        spec = {"workload": body.get("workload", {})}
        if existing is not None:
            if existing.spec == spec:
                return json_response(200, existing.status()), 200
            return json_response(
                409,
                {"error": f"query {name!r} exists with a different spec"},
            ), 409
        workload_factory(spec["workload"])  # validate before building
        host = self._add_host(name, spec)
        return json_response(200, host.status()), 200

    def _unregister(self, name: str) -> Tuple[bytes, int]:
        """Remove a query from the shared engine at an update boundary."""
        if self.group is None:
            return json_response(
                400,
                {"error": "unregister requires a shared_engine service"},
            ), 400
        self.group.unregister(name)
        del self.hosts[name]
        for key in [k for k in self._idem_done if k[0] == name]:
            del self._idem_done[key]
        return json_response(
            200, {"query": name, "unregistered": True}
        ), 200

    async def _ingest(
        self, host: QueryHost, request: HttpRequest
    ) -> Tuple[bytes, int]:
        if self.draining:
            return json_response(
                503,
                {"error": "draining"},
                headers={"Retry-After": "30"},
            ), 503
        body = request.json()
        if not isinstance(body, dict):
            raise BadRequest("ingest body must be an object")
        tenant = body.get("tenant") or request.header("x-tenant", "default")
        if not isinstance(tenant, str):
            raise BadRequest("tenant must be a string")
        raw = body.get("arrivals")
        if not isinstance(raw, list) or not raw:
            raise BadRequest("arrivals must be a non-empty list")
        if len(raw) > self.config.max_batch_updates:
            return json_response(
                413,
                {
                    "error": "batch too large",
                    "max_batch_updates": self.config.max_batch_updates,
                },
            ), 413
        arrivals: List[Tuple[str, tuple]] = []
        relations = set(host.windows.sizes)
        for item in raw:
            if (
                not isinstance(item, list) or len(item) != 2
                or not isinstance(item[0], str)
                or not isinstance(item[1], list)
            ):
                raise BadRequest(
                    "each arrival must be [relation, [values...]]"
                )
            relation, values = item
            if relation not in relations:
                raise BadRequest(
                    f"unknown relation {relation!r}; expected one of "
                    f"{sorted(relations)}"
                )
            expected = len(host.schemas[relation])
            if len(values) != expected:
                raise BadRequest(
                    f"relation {relation!r} takes {expected} values "
                    f"({host.schemas[relation]}), got {len(values)}"
                )
            for value in values:
                if not isinstance(value, (int, float, str)) or isinstance(
                    value, bool
                ):
                    raise BadRequest(
                        "arrival values must be numbers or strings"
                    )
            arrivals.append((relation, tuple(values)))

        idem_key = request.header("idempotency-key") or None
        cache_key = (host.name, idem_key) if idem_key else None
        if cache_key is not None:
            done = self._idem_done.get(cache_key)
            if done is not None:
                status, payload = done
                return json_response(
                    status, dict(payload, replayed=True)
                ), status
            pending = self._idem_pending.get(cache_key)
            if pending is not None:
                status, payload = await asyncio.shield(pending)
                return json_response(
                    status, dict(payload, replayed=True)
                ), status

        outcome = host.try_ingest(tenant, arrivals)
        if outcome[0] == "rejected":
            _, status, retry_after, reason = outcome
            return json_response(
                status,
                {"error": reason, "retry_after_s": round(retry_after, 3)},
                headers={"Retry-After": f"{max(retry_after, 0.001):.3f}"},
            ), status

        _, updates, wal_future = outcome
        if cache_key is not None:
            self._idem_pending[cache_key] = self._loop.create_future()
        payload = {
            "query": host.name,
            "updates": len(updates),
            "seq_first": updates[0].seq,
            "seq_last": updates[-1].seq,
            "durable": wal_future is not None,
        }
        status = 202
        try:
            if wal_future is not None:
                await asyncio.shield(wal_future)
        except Exception as exc:
            # The batch is already enqueued; without the fsync we must
            # not acknowledge. The client retries under the same
            # idempotency key and replays this (non-)result.
            payload = {"error": f"journal failure: {exc}", "durable": False}
            status = 500
        else:
            host.acked_seq = max(host.acked_seq, updates[-1].seq)
        if cache_key is not None:
            future = self._idem_pending.pop(cache_key)
            future.set_result((status, payload))
            self._idem_done[cache_key] = (status, payload)
            while len(self._idem_done) > self.config.idempotency_cache_size:
                self._idem_done.popitem(last=False)
        return json_response(status, payload), status

    def _results(
        self, host: QueryHost, request: HttpRequest
    ) -> Tuple[bytes, int]:
        try:
            since = int(request.query.get("since_seq", "-1"))
            limit = int(request.query.get("limit", "1000"))
        except ValueError as exc:
            raise BadRequest(f"bad query parameter: {exc}") from None
        limit = max(1, min(limit, 10_000))
        entries = host.results_since(since, limit)
        return json_response(
            200,
            {
                "query": host.name,
                "entries": entries,
                "processed_seq": host.processed_seq,
                "trimmed_through": (
                    host.delta_log[0]["seq"] - 1 if host.delta_log else -1
                ),
            },
        ), 200

    # ------------------------------------------------------------------
    # subscriptions (WebSocket)
    # ------------------------------------------------------------------
    async def _handle_subscribe(
        self,
        request: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        match = re.match(r"^/v1/queries/([^/]+)/subscribe$", request.path)
        host = self.hosts.get(match.group(1)) if match else None
        key = request.header("sec-websocket-key")
        if host is None or not key:
            writer.write(
                json_response(
                    404 if host is None else 400,
                    {"error": "unknown query" if host is None else
                     "missing Sec-WebSocket-Key"},
                )
            )
            await writer.drain()
            return
        writer.write(
            response_bytes(
                101,
                headers={
                    "Upgrade": "websocket",
                    "Connection": "Upgrade",
                    "Sec-WebSocket-Accept": websocket_accept(key),
                },
            )
        )
        await writer.drain()
        subscriber = _Subscriber(
            self.config.subscriber_buffer,
            self.config.subscriber_initial_credits,
        )
        host.subscribers.append(subscriber)
        self.registry.counter(
            "repro_service_subscriptions_total", {"query": host.name}
        ).inc()
        try:
            since = int(request.query.get("since_seq", "-1"))
        except ValueError:
            since = -1
        backfill = [
            e for e in host.results_since(since, self.config.delta_log_capacity)
            if e["deltas"]
        ]
        if backfill:
            subscriber.offer({
                "type": "deltas",
                "query": host.name,
                "seq_last": backfill[-1]["seq"],
                "entries": backfill,
                "backfill": True,
            })
        send_task = self._loop.create_task(
            self._subscriber_sender(subscriber, writer)
        )
        recv_task = self._loop.create_task(
            self._subscriber_receiver(subscriber, reader)
        )
        try:
            done, pending = await asyncio.wait(
                {send_task, recv_task}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
        finally:
            if subscriber in host.subscribers:
                host.subscribers.remove(subscriber)

    async def _subscriber_sender(
        self, subscriber: _Subscriber, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                frame = await subscriber.frames.get()
                if frame is _CLOSE_FRAME:
                    writer.write(encode_ws_frame(OP_CLOSE, b""))
                    await writer.drain()
                    return
                if frame.get("type") == "deltas":
                    if subscriber.credits <= 0:
                        # Flow control: tell the client we are waiting,
                        # then block until it grants more credits.
                        writer.write(encode_ws_frame(
                            OP_TEXT,
                            json.dumps(
                                {"type": "flow", "state": "credit_wait"}
                            ).encode("utf-8"),
                        ))
                        await writer.drain()
                        subscriber.credit_event.clear()
                        await subscriber.credit_event.wait()
                    subscriber.credits -= 1
                    if subscriber.gap:
                        frame = dict(frame, gap=True)
                        subscriber.gap = False
                writer.write(encode_ws_frame(
                    OP_TEXT,
                    json.dumps(frame, separators=(",", ":")).encode("utf-8"),
                ))
                await writer.drain()
                subscriber.sent += 1
        except (ConnectionResetError, BrokenPipeError, OSError):
            return

    async def _subscriber_receiver(
        self, subscriber: _Subscriber, reader: asyncio.StreamReader
    ) -> None:
        try:
            while True:
                opcode, payload = await read_ws_frame(reader)
                if opcode == OP_CLOSE:
                    return
                if opcode == OP_PING:
                    subscriber.control({"type": "pong"})
                    continue
                if opcode in (OP_TEXT, OP_PONG) and payload:
                    if opcode != OP_TEXT:
                        continue
                    try:
                        message = json.loads(payload.decode("utf-8"))
                    except (ValueError, UnicodeDecodeError):
                        continue
                    if (
                        isinstance(message, dict)
                        and message.get("type") == "credit"
                    ):
                        n = message.get("n", 1)
                        if isinstance(n, int) and 0 < n <= 1_000_000:
                            subscriber.add_credits(n)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            OSError,
        ):
            return

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _metrics_text(self) -> str:
        for name, host in self.hosts.items():
            labels = {"query": name}
            reg = self.registry
            reg.gauge("repro_service_queue_depth_updates", labels).set(
                host.queue.depth_updates
            )
            reg.gauge("repro_service_queue_lag_seconds", labels).set(
                host.queue.oldest_lag_s()
            )
            reg.gauge("repro_service_tier", labels).set(host.tiers.tier)
            reg.gauge("repro_service_acked_seq", labels).set(host.acked_seq)
            reg.gauge("repro_service_processed_seq", labels).set(
                host.processed_seq
            )
            reg.gauge("repro_service_subscribers", labels).set(
                len(host.subscribers)
            )
            reg.gauge("repro_service_deltas_shed", labels).set(
                host.deltas_shed
            )
            metrics = host.plan.ctx.metrics
            reg.gauge("repro_service_updates_processed", labels).set(
                metrics.updates_processed
            )
            reg.gauge("repro_service_outputs_emitted", labels).set(
                metrics.outputs_emitted
            )
            profiler = host.plan.ctx.obs.profiler
            if profiler.enabled:
                reg.gauge("repro_service_profile_depth", labels).set(
                    profiler.depth
                )
        self.registry.gauge("repro_service_ready").set(1 if self.ready else 0)
        self.registry.gauge("repro_service_queries").set(len(self.hosts))
        text = registry_to_prometheus(self.registry)
        if self.group is not None:
            # The shared engine's own families (repro_*, query_id-
            # labeled) are disjoint from the service's repro_service_*.
            text += self.group.engine_metrics_text()
        return text


class ServiceThread:
    """A StreamingService on a background thread with its own loop.

    The harness the tests, the benchmark, the chaos driver, and
    ``repro serve`` all build on: ``start()`` blocks until the socket is
    bound and returns the base URL; ``stop()`` drains gracefully;
    ``kill()`` is the in-process ``kill -9`` (journals truncated to
    their last fsync, no checkpoints, no goodbyes).
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.service: Optional[StreamingService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self, timeout_s: float = 30.0) -> str:
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise ServiceError("service did not start in time")
        if self._error is not None:
            error = self._error
            self._error = None
            raise error
        return self.base_url

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self.service = StreamingService(self.config)
        try:
            loop.run_until_complete(self.service.start())
        except BaseException as exc:  # surface bind errors to start()
            self._error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    @property
    def base_url(self) -> str:
        host = self.config.host
        return f"http://{host}:{self.service.port}"

    @property
    def port(self) -> int:
        return self.service.port

    def stop(self, timeout_s: Optional[float] = None) -> None:
        """Graceful: drain every host, close journals, stop the loop."""
        if self._loop is None or not self._thread.is_alive():
            return
        budget = timeout_s or (self.config.drain_deadline_s + 30.0)

        async def _shutdown() -> None:
            await self.service.drain()
            await self.service.aclose()

        future = asyncio.run_coroutine_threadsafe(_shutdown(), self._loop)
        future.result(timeout=budget)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)

    def kill(self) -> None:
        """Abrupt: simulate a process kill (acked updates stay durable)."""
        if self._loop is None or not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.kill(), self._loop
        )
        future.result(timeout=10.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
