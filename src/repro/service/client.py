"""A synchronous client for the streaming service, with retry discipline.

The helper the benchmark, the chaos harness, and the tests use to talk
to a :class:`~repro.service.server.StreamingService`. Three pieces:

* :class:`RetryPolicy` — jittered exponential backoff for *idempotent*
  operations. Every ingest carries an ``Idempotency-Key``, so a retried
  202 is replayed by the server, never re-applied; 429/503 responses
  honor the server's ``Retry-After`` verbatim (capped by the policy's
  ceiling) instead of guessing.
* :class:`ServiceClient` — registration, ingest, results, status,
  drain, metrics over plain :mod:`http.client`.
* :meth:`ServiceClient.subscribe` — a blocking WebSocket delta reader
  over a raw socket (RFC 6455 client handshake + masked frames), with
  the credit-grant loop the server's flow control expects.

Deterministic by construction: the backoff jitter comes from a seeded
``random.Random``, so a chaos run with a fixed seed replays the same
retry schedule.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import random
import socket
import time
import uuid
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.service.http import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    WS_GUID,
    encode_ws_frame,
)

__all__ = ["RetryPolicy", "ServiceClient", "ServiceError"]


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for idempotent requests.

    ``delay(attempt)`` is ``base * 2**attempt`` with full jitter, capped
    at ``max_delay_s``; a server-provided ``Retry-After`` overrides the
    computed delay (still capped). ``max_retries=0`` disables retrying.
    """

    max_retries: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    seed: int = 0

    def delays(self) -> "Iterator[float]":  # pragma: no cover - trivial
        rng = random.Random(self.seed)
        for attempt in range(self.max_retries):
            yield self.jittered(attempt, rng)

    def jittered(self, attempt: int, rng: random.Random) -> float:
        ceiling = min(self.max_delay_s, self.base_delay_s * (2 ** attempt))
        return rng.uniform(0.0, ceiling)


class ServiceClient:
    """Synchronous HTTP/WebSocket client for one service endpoint."""

    def __init__(
        self,
        base_url: str,
        retry: Optional[RetryPolicy] = None,
        timeout_s: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if not base_url.startswith("http://"):
            raise ServiceError(
                f"base_url must be http://host:port, got {base_url!r}"
            )
        hostport = base_url[len("http://"):].rstrip("/")
        host, _, port_text = hostport.partition(":")
        try:
            self.port = int(port_text)
        except ValueError as exc:
            raise ServiceError(f"bad port in base_url {base_url!r}") from exc
        self.host = host
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep
        self._rng = random.Random(self.retry.seed)
        self.retries = 0          # retried requests (all causes)
        self.throttled = 0        # 429/503 responses seen

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            payload = (
                json.dumps(body, separators=(",", ":")).encode("utf-8")
                if body is not None else None
            )
            connection.request(method, path, body=payload, headers=headers or {})
            response = connection.getresponse()
            data = response.read()
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                data,
            )
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceError(
                f"{method} {path} failed: {type(exc).__name__}: {exc}"
            ) from exc
        finally:
            connection.close()

    def _json(self, data: bytes) -> dict:
        if not data:
            return {}
        try:
            return json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(f"non-JSON response body: {exc}") from exc

    def _with_retries(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
        retry_statuses: Sequence[int] = (429, 503),
    ) -> Tuple[int, dict]:
        """Issue an idempotent request, retrying on throttle/transport."""
        attempt = 0
        while True:
            try:
                status, resp_headers, data = self._request(
                    method, path, body, headers
                )
            except ServiceError:
                if attempt >= self.retry.max_retries:
                    raise
                self.retries += 1
                self._sleep(self.retry.jittered(attempt, self._rng))
                attempt += 1
                continue
            if status in retry_statuses and attempt < self.retry.max_retries:
                self.throttled += 1
                self.retries += 1
                retry_after = resp_headers.get("retry-after")
                delay = self.retry.jittered(attempt, self._rng)
                if retry_after is not None:
                    try:
                        delay = min(float(retry_after), self.retry.max_delay_s)
                    except ValueError:
                        pass
                self._sleep(delay)
                attempt += 1
                continue
            if status in retry_statuses:
                self.throttled += 1
            return status, self._json(data)

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def register(self, query: str, workload: dict) -> dict:
        status, payload = self._with_retries(
            "POST", "/v1/queries",
            body={"query": query, "workload": workload},
        )
        if status != 200:
            raise ServiceError(
                f"register {query!r} failed ({status}): "
                f"{payload.get('error', payload)}"
            )
        return payload

    def ingest(
        self,
        query: str,
        arrivals: List[Tuple[str, Sequence[object]]],
        tenant: str = "default",
        idempotency_key: Optional[str] = None,
        retry: bool = True,
    ) -> Tuple[int, dict]:
        """POST a batch of arrivals; returns (status, response payload).

        Retried only under an idempotency key (generated when absent and
        ``retry`` is on): the key is what makes the retry safe.
        """
        if retry and idempotency_key is None:
            idempotency_key = uuid.uuid4().hex
        body = {
            "tenant": tenant,
            "arrivals": [[relation, list(values)] for relation, values in arrivals],
        }
        headers = {}
        if idempotency_key is not None:
            headers["Idempotency-Key"] = idempotency_key
        path = f"/v1/queries/{query}/ingest"
        if not retry:
            status, _, data = self._request("POST", path, body, headers)
            if status in (429, 503):
                self.throttled += 1
            return status, self._json(data)
        return self._with_retries("POST", path, body, headers)

    def results(self, query: str, since_seq: int = -1,
                limit: int = 1000) -> dict:
        status, payload = self._with_retries(
            "GET", f"/v1/queries/{query}/results?since_seq={since_seq}"
                   f"&limit={limit}",
        )
        if status != 200:
            raise ServiceError(f"results {query!r} failed ({status}): {payload}")
        return payload

    def status(self, query: str) -> dict:
        status, payload = self._with_retries("GET", f"/v1/queries/{query}")
        if status != 200:
            raise ServiceError(f"status {query!r} failed ({status}): {payload}")
        return payload

    def unregister(self, query: str) -> dict:
        """Remove a query from a shared-engine service (DELETE)."""
        status, payload = self._with_retries(
            "DELETE", f"/v1/queries/{query}"
        )
        if status != 200:
            raise ServiceError(
                f"unregister {query!r} failed ({status}): "
                f"{payload.get('error', payload)}"
            )
        return payload

    def healthz(self) -> dict:
        _, payload = self._with_retries("GET", "/healthz")
        return payload

    def readyz(self) -> Tuple[bool, dict]:
        status, payload = self._with_retries(
            "GET", "/readyz", retry_statuses=()
        )
        return status == 200, payload

    def drain(self) -> dict:
        status, payload = self._with_retries(
            "POST", "/v1/drain", retry_statuses=()
        )
        if status != 200:
            raise ServiceError(f"drain failed ({status}): {payload}")
        return payload

    def metrics_text(self) -> str:
        status, headers, data = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"metrics failed ({status})")
        return data.decode("utf-8")

    # ------------------------------------------------------------------
    # WebSocket subscription
    # ------------------------------------------------------------------
    def subscribe(
        self,
        query: str,
        since_seq: int = -1,
        frame_timeout_s: float = 10.0,
        credit_batch: int = 64,
        credit_low_water: int = 16,
    ) -> "Subscription":
        """Open a delta subscription; returns an iterator of frames."""
        sock = socket.create_connection(
            (self.host, self.port), timeout=frame_timeout_s
        )
        key = base64.b64encode(os.urandom(16)).decode("latin-1")
        request = (
            f"GET /v1/queries/{query}/subscribe?since_seq={since_seq} "
            f"HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            "\r\n"
        )
        sock.sendall(request.encode("latin-1"))
        head = b""
        while b"\r\n\r\n" not in head:
            chunk = sock.recv(4096)
            if not chunk:
                sock.close()
                raise ServiceError("connection closed during WS handshake")
            head += chunk
            if len(head) > 64 * 1024:
                sock.close()
                raise ServiceError("oversized WS handshake response")
        header_bytes, _, leftover = head.partition(b"\r\n\r\n")
        status_line = header_bytes.split(b"\r\n", 1)[0].decode("latin-1")
        if " 101 " not in f"{status_line} ":
            sock.close()
            raise ServiceError(f"WS upgrade refused: {status_line!r}")
        return Subscription(
            sock, leftover, frame_timeout_s, credit_batch, credit_low_water
        )


class Subscription:
    """Iterates server frames; grants flow-control credits as it reads."""

    def __init__(self, sock: socket.socket, leftover: bytes,
                 frame_timeout_s: float, credit_batch: int,
                 credit_low_water: int):
        self._sock = sock
        self._buffer = bytearray(leftover)
        self._timeout = frame_timeout_s
        self._credit_batch = credit_batch
        self._low_water = credit_low_water
        self._credits_left = 0  # server started with its own initial grant
        self.frames_received = 0
        self.gaps = 0
        self.closed = False

    def _fill(self, n: int) -> None:
        self._sock.settimeout(self._timeout)
        while len(self._buffer) < n:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ServiceError("subscription closed by server")
            self._buffer += chunk

    def _take(self, n: int) -> bytes:
        self._fill(n)
        data = bytes(self._buffer[:n])
        del self._buffer[:n]
        return data

    def _read_frame(self) -> Tuple[int, bytes]:
        first = self._take(2)
        opcode = first[0] & 0x0F
        length = first[1] & 0x7F
        if length == 126:
            length = int.from_bytes(self._take(2), "big")
        elif length == 127:
            length = int.from_bytes(self._take(8), "big")
        payload = self._take(length) if length else b""
        return opcode, payload

    def grant(self, n: int) -> None:
        """Send a credit frame allowing ``n`` more data frames."""
        frame = json.dumps({"type": "credit", "n": n}).encode("utf-8")
        self._sock.sendall(encode_ws_frame(OP_TEXT, frame, mask=True))

    def recv(self) -> Optional[dict]:
        """Next JSON frame from the server; None once the stream closes."""
        if self.closed:
            return None
        while True:
            try:
                opcode, payload = self._read_frame()
            except (socket.timeout, ServiceError, OSError):
                self.closed = True
                return None
            if opcode == OP_CLOSE:
                self.closed = True
                return None
            if opcode == OP_PING:
                self._sock.sendall(encode_ws_frame(OP_PONG, payload, mask=True))
                continue
            if opcode != OP_TEXT:
                continue
            try:
                frame = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue
            self.frames_received += 1
            if frame.get("type") == "deltas":
                if frame.get("gap"):
                    self.gaps += 1
                self._credits_left -= 1
                if self._credits_left <= self._low_water:
                    self.grant(self._credit_batch)
                    self._credits_left += self._credit_batch
            return frame

    def __iter__(self) -> Iterator[dict]:
        while True:
            frame = self.recv()
            if frame is None:
                return
            yield frame

    def close(self) -> None:
        if not self.closed:
            try:
                self._sock.sendall(encode_ws_frame(OP_CLOSE, b"", mask=True))
            except OSError:
                pass
            self.closed = True
        self._sock.close()

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
