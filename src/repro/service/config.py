"""Service construction knobs: one frozen, validated dataclass.

Mirrors :class:`repro.api.EngineConfig` in style — every tunable of the
streaming service lives here, validation raises
:class:`~repro.errors.ConfigError` naming the offending field, and the
value is immutable so a running service cannot be reconfigured under its
own feet. The engine each hosted query runs on is itself an
``EngineConfig`` (``engine``); the service only adds the knobs the wire
brings in: admission rates, queue bounds, deadlines, degradation
thresholds, and the journal root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.api import EngineConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class ServiceConfig:
    """Every tunable of the streaming service, in one picklable value.

    Degradation tiers engage when the ingress queue depth (as a fraction
    of ``queue_capacity_updates``) *or* the wall-clock lag of the oldest
    queued batch crosses a threshold — whichever trips first — and
    release with hysteresis once both fall below ``recover_fraction`` of
    the same threshold.
    """

    host: str = "127.0.0.1"
    port: int = 0                          # 0 = ephemeral (bound port reported)
    engine: EngineConfig = field(default_factory=EngineConfig)
    # Multi-query hosting (repro.multi): all registered queries share one
    # MultiQueryEngine — each stream ingested once (relation name =
    # stream identity), inter-query shared caches, one global memory
    # budget arbitrated across tenants. Queries become removable via
    # DELETE /v1/queries/{name}. Incompatible with wal_root (the shared
    # engine has no per-query journal) and with per-engine resilience,
    # micro-batching, or sharding.
    shared_engine: bool = False
    # Durability: per-query journals live under ``<wal_root>/<query>``.
    # None serves from memory only (a kill loses unacknowledged state,
    # but also voids the acked-updates-survive guarantee — tests only).
    wal_root: Optional[str] = None
    checkpoint_interval: int = 1000        # processed updates between snapshots
    # Admission control: one token bucket per tenant, in updates/second.
    tenant_rate: float = 50_000.0
    tenant_burst: float = 10_000.0
    # While the engine's own load shedder reports degraded, admission
    # rates are multiplied by this (the wire gate tightens before the
    # engine has to shed what it already admitted).
    degraded_rate_factor: float = 0.5
    # Backpressure: the bounded ingress queue, measured in updates.
    queue_capacity_updates: int = 8192
    max_batch_updates: int = 1024          # per ingest request
    # Deadlines (wall-clock seconds).
    request_deadline_s: float = 10.0       # whole-request budget
    header_deadline_s: float = 5.0         # slow-client guard: time to read head
    drain_deadline_s: float = 30.0         # graceful drain budget
    # Degradation ladder thresholds: queue-depth fractions and oldest-
    # batch wall-clock lag, per tier (shed deltas / pause subs / reject).
    shed_depth_fraction: float = 0.50
    pause_depth_fraction: float = 0.75
    reject_depth_fraction: float = 0.95
    shed_lag_s: float = 1.0
    pause_lag_s: float = 4.0
    reject_lag_s: float = 10.0
    recover_fraction: float = 0.5          # hysteresis on the way back down
    # Result-delta retention and subscription flow control.
    delta_log_capacity: int = 65_536       # retained (seq, deltas) entries
    subscriber_buffer: int = 1024          # frames buffered per subscriber
    subscriber_initial_credits: int = 256  # deltas before a credit frame is due
    idempotency_cache_size: int = 1024     # remembered Idempotency-Key replies

    def __post_init__(self) -> None:
        if self.port < 0 or self.port > 65535:
            raise ConfigError(f"service port must be 0..65535, got {self.port}")
        if self.shared_engine:
            if self.wal_root is not None:
                raise ConfigError(
                    "shared_engine is incompatible with wal_root: the "
                    "shared engine keeps no per-query journal"
                )
            if self.engine.resilience is not None:
                raise ConfigError(
                    "shared_engine is incompatible with engine resilience: "
                    "one tenant shedding an update would desynchronize the "
                    "shared windows"
                )
            if self.engine.batch_size != 1:
                raise ConfigError(
                    "shared_engine requires engine batch_size 1, got "
                    f"{self.engine.batch_size}"
                )
            if self.engine.shards != 1:
                raise ConfigError(
                    "shared_engine requires engine shards 1, got "
                    f"{self.engine.shards}"
                )
        if self.checkpoint_interval < 1:
            raise ConfigError(
                "service checkpoint_interval must be >= 1, got "
                f"{self.checkpoint_interval}"
            )
        if self.tenant_rate <= 0:
            raise ConfigError(
                f"service tenant_rate must be positive, got {self.tenant_rate}"
            )
        if self.tenant_burst <= 0:
            raise ConfigError(
                f"service tenant_burst must be positive, got {self.tenant_burst}"
            )
        if not 0.0 < self.degraded_rate_factor <= 1.0:
            raise ConfigError(
                "service degraded_rate_factor must be in (0, 1], got "
                f"{self.degraded_rate_factor}"
            )
        if self.queue_capacity_updates < 1:
            raise ConfigError(
                "service queue_capacity_updates must be >= 1, got "
                f"{self.queue_capacity_updates}"
            )
        if self.max_batch_updates < 1:
            raise ConfigError(
                "service max_batch_updates must be >= 1, got "
                f"{self.max_batch_updates}"
            )
        for name in ("request_deadline_s", "header_deadline_s",
                     "drain_deadline_s"):
            if getattr(self, name) <= 0:
                raise ConfigError(
                    f"service {name} must be positive, got "
                    f"{getattr(self, name)}"
                )
        fractions = (
            self.shed_depth_fraction,
            self.pause_depth_fraction,
            self.reject_depth_fraction,
        )
        if not all(0.0 < f <= 1.0 for f in fractions):
            raise ConfigError(
                "service depth fractions must be in (0, 1], got "
                f"{fractions}"
            )
        if not (fractions[0] <= fractions[1] <= fractions[2]):
            raise ConfigError(
                "service depth fractions must be non-decreasing "
                f"(shed <= pause <= reject), got {fractions}"
            )
        lags = (self.shed_lag_s, self.pause_lag_s, self.reject_lag_s)
        if not all(lag > 0 for lag in lags):
            raise ConfigError(f"service lag thresholds must be positive: {lags}")
        if not (lags[0] <= lags[1] <= lags[2]):
            raise ConfigError(
                "service lag thresholds must be non-decreasing "
                f"(shed <= pause <= reject), got {lags}"
            )
        if not 0.0 < self.recover_fraction < 1.0:
            raise ConfigError(
                "service recover_fraction must be in (0, 1), got "
                f"{self.recover_fraction}"
            )
        if self.delta_log_capacity < 1:
            raise ConfigError(
                "service delta_log_capacity must be >= 1, got "
                f"{self.delta_log_capacity}"
            )
        if self.subscriber_buffer < 1:
            raise ConfigError(
                "service subscriber_buffer must be >= 1, got "
                f"{self.subscriber_buffer}"
            )
        if self.subscriber_initial_credits < 1:
            raise ConfigError(
                "service subscriber_initial_credits must be >= 1, got "
                f"{self.subscriber_initial_credits}"
            )
        if self.idempotency_cache_size < 1:
            raise ConfigError(
                "service idempotency_cache_size must be >= 1, got "
                f"{self.idempotency_cache_size}"
            )
