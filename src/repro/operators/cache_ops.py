"""CacheLookup and CacheUpdate operators (Section 3.2).

``CacheLookup`` is placed just before the first operator of a cached
segment; on a hit it bypasses the segment's join operators. ``CacheUpdate``
appears in two roles:

* just after the segment in the *owner* pipeline, creating entries for
  missed keys (handled inline by the pipeline's miss path);
* just before the ``(k-j+1)``-st operator of every *segment member's*
  pipeline, applying maintenance inserts/deletes — modeled here as a
  :class:`CacheUpdate` tap pinned to that position.

``BloomLookup`` is the profile-mode CacheLookup of Appendix A: it observes
the full probe stream of a candidate cache that is not in use and feeds a
windowed Bloom filter to estimate ``miss_prob``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.caching.bloom import MissProbEstimator
from repro.caching.cache import Cache
from repro.caching.global_cache import GlobalCache
from repro.operators.base import ExecContext
from repro.streams.events import Sign
from repro.streams.tuples import CompositeTuple


class CacheLookup:
    """Binds a cache to the segment ``[start..end]`` of one pipeline.

    ``key`` is this pipeline's probe-key extractor; for a shared cache it
    differs from ``cache.key`` (whose prefix slots belong to the pipeline
    the cache object was first built for) while agreeing on entry keys.

    ``owner_witness_count`` is set for globally-consistent caches whose
    anchor contains this pipeline's relation: given a probe key, it
    returns how many live owner rows match the key's owner components. A
    deletion consumes the probed entry only when the dying row is the last
    such witness — otherwise the entry's maintenance guarantee still holds
    (see the GlobalCache module docstring).
    """

    __slots__ = ("cache", "start", "end", "key", "owner_witness_count")

    def __init__(
        self, cache: Cache, start: int, end: int, key=None,
        owner_witness_count=None,
    ):
        if end < start:
            raise ValueError("cache segment must cover at least one operator")
        self.cache = cache
        self.start = start
        self.end = end
        self.key = key if key is not None else cache.key
        self.owner_witness_count = owner_witness_count

    @property
    def width(self) -> int:
        """Number of join operators the cache bypasses on a hit."""
        return self.end - self.start + 1

    def __repr__(self) -> str:
        return f"CacheLookup({self.cache.name}@[{self.start}..{self.end}])"


class CacheUpdate:
    """A maintenance tap: updates a cache with segment-join deltas.

    ``position`` is the pipeline slot whose *input* composites are exactly
    the updates to the cache's maintained join (guaranteed by the prefix
    invariant of the maintained relation set).
    """

    __slots__ = ("cache", "position", "owner")

    def __init__(self, cache: Cache, position: int, owner: str):
        self.cache = cache
        self.position = position
        self.owner = owner  # the updated relation whose pipeline we sit in

    def apply(
        self,
        composites: Sequence[CompositeTuple],
        sign: Sign,
        ctx: ExecContext,
    ) -> None:
        """Run the maintenance calls for a batch of delta composites."""
        clock, cm = ctx.clock, ctx.cost_model
        is_global = isinstance(self.cache, GlobalCache)
        obs = ctx.obs
        applied_count = 0
        # Micro-batch mode: group same-key deltas behind one hash +
        # bucket check; each applied delta still pays its own cost.
        checked_keys = None
        if ctx.probe_memo is not None and len(composites) > 1:
            checked_keys = set()
        for composite in composites:
            # A call on an absent key is only a hash + bucket check
            # (ignored per Section 3.2); applying a delta costs more.
            if checked_keys is None:
                clock.charge(cm.cache_maintain_check)
            else:
                entry_key = self.cache.maintenance_key(composite)
                if entry_key not in checked_keys:
                    checked_keys.add(entry_key)
                    clock.charge(cm.cache_maintain_check)
            ctx.metrics.cache_maintenance_calls += 1
            if is_global:
                if sign is Sign.INSERT:
                    applied = self.cache.maintain_insert(composite, self.owner)
                else:
                    applied = self.cache.maintain_delete(composite, self.owner)
            else:
                if sign is Sign.INSERT:
                    applied = self.cache.maintain_insert(composite)
                else:
                    applied = self.cache.maintain_delete(composite)
            if applied:
                applied_count += 1
                clock.charge(cm.cache_maintain)
        if obs.enabled and composites:
            labels = {"cache": self.cache.name, "pipeline": self.owner}
            obs.registry.counter(
                "repro_cache_maintenance_calls_by_cache_total", labels
            ).inc(len(composites))
            obs.registry.counter(
                "repro_cache_maintenance_applied_total", labels
            ).inc(applied_count)

    def __repr__(self) -> str:
        return f"CacheUpdate({self.cache.name}@{self.position} in ∆{self.owner})"


class BloomLookup:
    """Profile-mode lookup estimating ``miss_prob`` of an unused candidate."""

    __slots__ = ("candidate_id", "key", "position", "estimator")

    def __init__(
        self,
        candidate_id: str,
        key,
        position: int,
        estimator: MissProbEstimator,
    ):
        self.candidate_id = candidate_id
        self.key = key
        self.position = position
        self.estimator = estimator

    def apply(
        self,
        composites: Sequence[CompositeTuple],
        ctx: ExecContext,
        sign: Sign = Sign.INSERT,
    ) -> List[float]:
        """Feed probe keys; return any completed window observations."""
        if self.estimator.paused:
            return []
        clock, cm = ctx.clock, ctx.cost_model
        observations = []
        is_insert = sign is Sign.INSERT
        for composite in composites:
            clock.charge(cm.bloom_hash)
            observation = self.estimator.observe(
                self.key.probe_value(composite), is_insert
            )
            if observation is not None:
                observations.append(observation)
        return observations

    def __repr__(self) -> str:
        return f"BloomLookup({self.candidate_id}@{self.position})"
