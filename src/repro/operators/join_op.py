"""The pipeline join operator ``./ij`` (Section 3.1).

Each operator joins incoming (possibly composite) tuples with one target
relation, enforcing every predicate between the target and the relations
already present in the composite. It uses a hash index on the target side
of one such predicate when available and verifies the rest as residuals;
with no usable index it degrades to a nested-loop scan, which is the
configuration Figure 10 studies.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

from repro.errors import PlanError
from repro.operators.base import ExecContext
from repro.relations.predicates import EquiPredicate, JoinGraph
from repro.relations.relation import Relation
from repro.streams.tuples import CompositeTuple


class _BoundPredicate(NamedTuple):
    """A predicate with attribute positions resolved at plan-build time."""

    prior_relation: str
    prior_position: int
    target_attribute: str
    target_position: int


class JoinOperator:
    """Joins composites with ``target`` using predicates to prior relations."""

    def __init__(
        self,
        graph: JoinGraph,
        prior: Sequence[str],
        target: str,
        relation: Optional[Relation] = None,
    ):
        self.target = target
        self.prior = tuple(prior)
        predicates = graph.predicates_between(prior, target)
        self._bound: List[_BoundPredicate] = []
        for pred in predicates:
            target_ref = pred.side_for(target)
            prior_ref = pred.other_side(target)
            self._bound.append(
                _BoundPredicate(
                    prior_relation=prior_ref.relation,
                    prior_position=graph.attr_position(prior_ref),
                    target_attribute=target_ref.attribute,
                    target_position=graph.attr_position(target_ref),
                )
            )
        self.relation = relation

    def bind(self, relation: Relation) -> "JoinOperator":
        """Attach the live relation state this operator joins against."""
        if relation.schema.relation != self.target:
            raise PlanError(
                f"operator targets {self.target!r} but was bound to "
                f"{relation.schema.relation!r}"
            )
        self.relation = relation
        return self

    @property
    def predicate_count(self) -> int:
        """Number of predicates this operator enforces."""
        return len(self._bound)

    def is_cross_product(self) -> bool:
        """True when no predicate links the target to the prefix."""
        return not self._bound

    def apply(
        self, composites: Sequence[CompositeTuple], ctx: ExecContext
    ) -> List[CompositeTuple]:
        """Join every input composite with the target relation.

        Inside a micro-batch (``ctx.probe_memo`` set) the match set for a
        given constraint signature is computed once and reused — across
        composites, updates, and pipelines — until the target's window
        changes. The match set depends only on the target window and the
        ``(target_position, value)`` constraint pairs, so a memo hit is
        exact; reuse charges ``batch_memo_hit`` instead of the probe and
        residual-verification costs.
        """
        if self.relation is None:
            raise PlanError(f"operator for {self.target!r} is unbound")
        relation = self.relation
        clock, cm = ctx.clock, ctx.cost_model
        memo = ctx.probe_memo
        index_pred = self._pick_index_predicate(relation)
        outputs: List[CompositeTuple] = []
        for composite in composites:
            matches = None
            signature = None
            if memo is not None:
                signature = tuple(sorted(
                    (
                        b.target_position,
                        composite.value(b.prior_relation, b.prior_position),
                    )
                    for b in self._bound
                ))
                matches = memo.get(self.target, signature)
                if matches is not None:
                    clock.charge(cm.batch_memo_hit)
            if matches is None:
                if index_pred is not None:
                    matches = self._indexed_matches(composite, index_pred, ctx)
                else:
                    matches = self._scan_matches(composite, ctx)
                if memo is not None:
                    memo.put(self.target, signature, matches)
            clock.charge(cm.per_match * len(matches))
            for row in matches:
                outputs.append(composite.extended(self.target, row))
        return outputs

    def match_rows(
        self, composite: CompositeTuple, ctx: ExecContext
    ) -> List:
        """Rows of the target joining ``composite`` (no extension).

        Used by witness counting for globally-consistent caches.
        """
        index_pred = self._pick_index_predicate(self.relation)
        if index_pred is not None:
            return self._indexed_matches(composite, index_pred, ctx)
        return self._scan_matches(composite, ctx)

    # ------------------------------------------------------------------
    # matching strategies
    # ------------------------------------------------------------------
    def _pick_index_predicate(
        self, relation: Relation
    ) -> Optional[_BoundPredicate]:
        for bound in self._bound:
            if relation.has_index(bound.target_attribute):
                return bound
        return None

    def _indexed_matches(
        self,
        composite: CompositeTuple,
        index_pred: _BoundPredicate,
        ctx: ExecContext,
    ) -> List:
        clock, cm = ctx.clock, ctx.cost_model
        probe_value = composite.value(
            index_pred.prior_relation, index_pred.prior_position
        )
        clock.charge(cm.index_probe)
        candidates = self.relation.matching(
            index_pred.target_attribute, probe_value
        )
        residuals = [b for b in self._bound if b is not index_pred]
        if not residuals:
            return candidates
        clock.charge(cm.predicate_eval * len(candidates) * len(residuals))
        matches = []
        for row in candidates:
            if all(
                row.values[b.target_position]
                == composite.value(b.prior_relation, b.prior_position)
                for b in residuals
            ):
                matches.append(row)
        return matches

    def _scan_matches(
        self, composite: CompositeTuple, ctx: ExecContext
    ) -> List:
        clock, cm = ctx.clock, ctx.cost_model
        size = len(self.relation)
        clock.charge(cm.scan_tuple * size)
        if not self._bound:
            return list(self.relation.rows())
        clock.charge(cm.predicate_eval * size * len(self._bound))
        matches = []
        for row in self.relation.rows():
            if all(
                row.values[b.target_position]
                == composite.value(b.prior_relation, b.prior_position)
                for b in self._bound
            ):
                matches.append(row)
        return matches

    def __repr__(self) -> str:
        preds = ", ".join(
            f"{b.prior_relation}[{b.prior_position}]="
            f"{self.target}.{b.target_attribute}"
            for b in self._bound
        )
        return f"Join({self.target}; {preds or 'cross'})"
