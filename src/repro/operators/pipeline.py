"""An MJoin pipeline: the plan for one update stream ``∆Ri``.

The pipeline is a sequence of join operators (Section 3.1) plus three kinds
of cache plumbing wired in by the re-optimizer:

* active :class:`CacheLookup` bindings that bypass operator segments,
* :class:`CacheUpdate` maintenance taps keeping caches consistent,
* :class:`BloomLookup` profile taps estimating ``miss_prob`` of candidates.

Tap positions are indexed by pipeline *slot*: slot ``p`` sees the
composites that are the input of operator ``p``; slot ``nops`` sees the
pipeline's final outputs. By the prefix invariant a maintenance tap's slot
can never fall strictly inside an active lookup's bypassed range (see
``tests/test_pipeline.py::test_tap_inside_bypass_impossible``), so hits
never starve maintenance.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.operators.base import ExecContext
from repro.operators.cache_ops import BloomLookup, CacheLookup, CacheUpdate
from repro.operators.join_op import JoinOperator
from repro.streams.events import Sign
from repro.streams.tuples import CompositeTuple, Row

ObservationSink = Callable[[str, float], None]


@dataclass
class ProfileSample:
    """Measurements from one fully profiled tuple (Appendix A).

    ``deltas[p]`` is the number of composites entering slot ``p`` (so
    ``deltas[nops]`` counts final outputs) and ``taus[p]`` the virtual time
    spent in operator ``p`` while processing this tuple.
    """

    deltas: List[int] = field(default_factory=list)
    taus: List[float] = field(default_factory=list)


class Pipeline:
    """Join plan and cache plumbing for one update stream."""

    def __init__(self, owner: str, operators: Sequence[JoinOperator]):
        self.owner = owner
        self.operators: List[JoinOperator] = list(operators)
        # Span names precomputed per slot (reorders build a new Pipeline,
        # so this stays correct for the pipeline's lifetime).
        self._op_span_names: Tuple[str, ...] = tuple(
            f"op:{owner}.{position}:{op.target}"
            for position, op in enumerate(self.operators)
        )
        self._lookups: Dict[int, CacheLookup] = {}
        self._updates: Dict[int, List[CacheUpdate]] = defaultdict(list)
        self._blooms: Dict[int, List[BloomLookup]] = defaultdict(list)
        self.observation_sink: Optional[ObservationSink] = None

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def order(self) -> Tuple[str, ...]:
        """Relation names in join order (excluding the owner)."""
        return tuple(op.target for op in self.operators)

    @property
    def slots(self) -> int:
        """Number of join operators (tap slots run 0..slots)."""
        return len(self.operators)

    def position_of(self, relation: str) -> int:
        """Operator slot of ``relation`` in this pipeline."""
        for position, op in enumerate(self.operators):
            if op.target == relation:
                return position
        raise PlanError(f"{relation!r} not in ∆{self.owner}'s pipeline")

    # ------------------------------------------------------------------
    # cache plumbing management (driven by the re-optimizer)
    # ------------------------------------------------------------------
    def attach_lookup(self, lookup: CacheLookup) -> None:
        """Install a CacheLookup over its operator segment."""
        if lookup.end >= len(self.operators):
            raise PlanError("cache segment extends past the pipeline")
        for existing in self._lookups.values():
            if not (
                lookup.end < existing.start or lookup.start > existing.end
            ):
                raise PlanError(
                    f"cache segments overlap: {lookup} vs {existing}"
                )
        for position in self._updates:
            if lookup.start < position <= lookup.end:
                raise PlanError(
                    f"lookup {lookup} would bypass maintenance tap at slot "
                    f"{position}; this violates the prefix invariant"
                )
        self._lookups[lookup.start] = lookup

    def detach_lookup(self, cache_name: str) -> bool:
        """Remove the lookup for ``cache_name``; True if found."""
        for start, lookup in list(self._lookups.items()):
            if lookup.cache.name == cache_name:
                del self._lookups[start]
                return True
        return False

    def active_lookups(self) -> List[CacheLookup]:
        """The attached lookups, ordered by start slot."""
        return [self._lookups[s] for s in sorted(self._lookups)]

    def attach_update(self, tap: CacheUpdate) -> None:
        """Install a maintenance tap at its slot."""
        if tap.position > len(self.operators):
            raise PlanError("maintenance tap position past the pipeline end")
        for lookup in self._lookups.values():
            if lookup.start < tap.position <= lookup.end:
                raise PlanError(
                    f"maintenance tap {tap} falls inside the bypassed range "
                    f"of {lookup}; this violates the prefix invariant"
                )
        self._updates[tap.position].append(tap)

    def detach_updates(self, cache_name: str) -> int:
        """Remove every tap of ``cache_name``; returns the count."""
        removed = 0
        for position in list(self._updates):
            taps = self._updates[position]
            keep = [t for t in taps if t.cache.name != cache_name]
            removed += len(taps) - len(keep)
            if keep:
                self._updates[position] = keep
            else:
                del self._updates[position]
        return removed

    def attach_bloom(self, bloom: BloomLookup) -> None:
        """Install a profile-mode (miss-probability) lookup."""
        if bloom.position >= len(self.operators):
            raise PlanError("bloom tap must precede a join operator")
        self._blooms[bloom.position].append(bloom)

    def detach_bloom(self, candidate_id: str) -> int:
        """Remove a candidate's profile-mode lookups; returns the count."""
        removed = 0
        for position in list(self._blooms):
            taps = self._blooms[position]
            keep = [t for t in taps if t.candidate_id != candidate_id]
            removed += len(taps) - len(keep)
            if keep:
                self._blooms[position] = keep
            else:
                del self._blooms[position]
        return removed

    def clear_plumbing(self) -> None:
        """Remove all lookups, taps, and profilers (plan switch)."""
        self._lookups.clear()
        self._updates.clear()
        self._blooms.clear()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def process(
        self,
        row: Row,
        sign: Sign,
        ctx: ExecContext,
        profile: bool = False,
    ) -> Tuple[List[CompositeTuple], Optional[ProfileSample]]:
        """Run one update through the pipeline.

        With ``profile=True`` the tuple's processing bypasses every active
        CacheLookup (Appendix A: profiled tuples measure the cache-free
        path) and per-operator ``δ``/``τ`` measurements are returned.
        Maintenance taps always run — they keep *other* pipelines' caches
        consistent and are not "using" a cache.
        """
        nops = len(self.operators)
        sample = ProfileSample() if profile else None
        detail = ctx.obs.enabled
        prof = ctx.obs.profiler
        composites: List[CompositeTuple] = [CompositeTuple.of(self.owner, row)]
        position = 0
        while position <= nops:
            self._run_taps(position, composites, sign, ctx)
            if profile:
                sample.deltas.append(len(composites))
            if position == nops or not composites:
                if profile:
                    # Pad measurements for slots never reached.
                    while len(sample.deltas) <= nops:
                        sample.deltas.append(0)
                    while len(sample.taus) < nops:
                        sample.taus.append(0.0)
                break
            lookup = None if profile else self._lookups.get(position)
            if lookup is not None:
                composites = self._through_cache(
                    lookup, composites, sign, ctx
                )
                position = lookup.end + 1
            else:
                started = ctx.clock.now_us
                if profile:
                    ctx.clock.charge(ctx.cost_model.profile_tuple)
                if prof.enabled:
                    prof.begin(self._op_span_names[position], started)
                try:
                    composites = self.operators[position].apply(
                        composites, ctx
                    )
                finally:
                    # Close the span on the exception path too, or a
                    # failing operator leaves the profiler stack open.
                    if prof.enabled:
                        prof.end(ctx.clock.now_us)
                elapsed = ctx.clock.now_us - started
                if profile:
                    sample.taus.append(elapsed)
                if detail:
                    ctx.obs.registry.histogram(
                        "repro_operator_us",
                        {"pipeline": self.owner, "slot": str(position)},
                    ).observe(elapsed)
                position += 1
        return composites, sample

    def _run_taps(
        self,
        position: int,
        composites: List[CompositeTuple],
        sign: Sign,
        ctx: ExecContext,
    ) -> None:
        if not composites:
            return
        for tap in self._updates.get(position, ()):
            tap.apply(composites, sign, ctx)
        for bloom in self._blooms.get(position, ()):
            for observation in bloom.apply(composites, ctx, sign):
                if self.observation_sink is not None:
                    self.observation_sink(bloom.candidate_id, observation)

    def _through_cache(
        self,
        lookup: CacheLookup,
        composites: List[CompositeTuple],
        sign: Sign,
        ctx: ExecContext,
    ) -> List[CompositeTuple]:
        """Probe the cache for each composite; compute misses per key."""
        clock, cm = ctx.clock, ctx.cost_model
        cache = lookup.cache
        prof = ctx.obs.profiler
        if prof.enabled:
            prof.begin("cache_probe:" + cache.name, clock.now_us)
        # Globally-consistent caches anchored on this pipeline's relation:
        # a deletion that is the last owner-side witness of its key must
        # consume the probed entry (and not create one on a miss), or
        # later segment inserts for that key go unmaintained. Deletions
        # with surviving witnesses are handled like ordinary probes. See
        # the GlobalCache module docstring.
        check_witnesses = (
            lookup.owner_witness_count if sign is Sign.DELETE else None
        )
        consumed_keys: set = set()
        checked_keys: set = set()
        # Micro-batch mode: one hash + bucket charge per distinct probe
        # key in this group — the probed values cannot change between two
        # same-key probes of the same call, so the group shares one probe.
        charged_keys: Optional[set] = (
            set() if ctx.probe_memo is not None else None
        )
        results: List[CompositeTuple] = []
        miss_groups: Dict[tuple, List[CompositeTuple]] = {}
        hit_count = 0
        try:
            for composite in composites:
                probe_key, values = cache.probe(composite, lookup.key)
                if charged_keys is None:
                    clock.charge(cm.cache_probe)
                elif probe_key not in charged_keys:
                    charged_keys.add(probe_key)
                    clock.charge(cm.cache_probe)
                if values is not None:
                    hit_count += 1
                ctx.metrics.record_probe(cache.name, hit=values is not None)
                if (
                    check_witnesses is not None
                    and probe_key not in checked_keys
                ):
                    checked_keys.add(probe_key)
                    clock.charge(cm.index_probe)
                    if check_witnesses(probe_key) <= 1:
                        consumed_keys.add(probe_key)
                        cache.invalidate(probe_key)
                if values is None:
                    miss_groups.setdefault(probe_key, []).append(composite)
                    continue
                clock.charge(cm.cache_hit_tuple * len(values))
                for segment_composite in values:
                    results.append(composite.merge(segment_composite))
        finally:
            if prof.enabled:
                prof.end(clock.now_us)
        obs = ctx.obs
        if obs.enabled and composites:
            labels = {"cache": cache.name}
            obs.registry.counter(
                "repro_cache_probe_batch_total", labels
            ).inc()
            obs.registry.counter(
                "repro_cache_probed_total", labels
            ).inc(len(composites))
            obs.registry.counter(
                "repro_cache_hit_total", labels
            ).inc(hit_count)
            obs.tracer.emit(
                "cache_probe",
                clock.now_us,
                cache=cache.name,
                pipeline=self.owner,
                probes=len(composites),
                hits=hit_count,
                misses=len(composites) - hit_count,
                sign=sign.name,
            )
        if prof.enabled and miss_groups:
            prof.begin("cache_store:" + cache.name, clock.now_us)
        try:
            self._fill_misses(
                lookup, miss_groups, consumed_keys, results, ctx
            )
        finally:
            if prof.enabled and miss_groups:
                prof.end(clock.now_us)
        return results

    def _fill_misses(
        self,
        lookup: CacheLookup,
        miss_groups: Dict[tuple, List[CompositeTuple]],
        consumed_keys: set,
        results: List[CompositeTuple],
        ctx: ExecContext,
    ) -> None:
        """Compute the segment join for each missed key; fill the cache."""
        clock, cm = ctx.clock, ctx.cost_model
        cache = lookup.cache
        obs = ctx.obs
        for probe_key, group in miss_groups.items():
            if probe_key in consumed_keys:
                # Compute through the operators without creating an entry:
                # the key is losing its last owner-side witness.
                segment_results = group
                for op_position in range(lookup.start, lookup.end + 1):
                    segment_results = self.operators[op_position].apply(
                        segment_results, ctx
                    )
                results.extend(segment_results)
                continue
            # One representative recomputes the segment join for this key;
            # all cross (prefix↔segment) predicates are key components, so
            # the segment result depends only on the key.
            segment_results = [group[0]]
            for op_position in range(lookup.start, lookup.end + 1):
                # No taps here: slot ``start`` already ran in the caller and
                # slots strictly inside the bypass cannot host taps (see
                # attach-time validation).
                segment_results = self.operators[op_position].apply(
                    segment_results, ctx
                )
            segment_parts = [
                c.project(cache.segment) for c in segment_results
            ]
            clock.charge(
                cm.cache_create + cm.cache_store_tuple * len(segment_parts)
            )
            ctx.metrics.cache_creates += 1
            if obs.enabled:
                obs.registry.counter(
                    "repro_cache_create_total", {"cache": cache.name}
                ).inc()
            cache.create(probe_key, segment_parts)
            for i, member in enumerate(group):
                if i > 0:
                    clock.charge(cm.cache_hit_tuple * len(segment_parts))
                for part in segment_parts:
                    results.append(member.merge(part))

    def __repr__(self) -> str:
        chain = " -> ".join(self.order)
        return f"Pipeline(∆{self.owner}: {chain})"
