"""Shared execution context threaded through operators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.engine.clock import CostModel, VirtualClock, WallClock
from repro.engine.metrics import Metrics
from repro.obs import Observability, default_observability


class BatchProbeMemo:
    """Join-probe memoization for one micro-batch (``DeltaBatch``).

    A join operator's match set is fully determined by its target
    relation's current window and the constraint set
    ``{(target_position, value), ...}`` its bound predicates impose — the
    index choice and the operator's pipeline are irrelevant. The memo
    therefore maps ``(target, constraint tuple) -> match list`` and is
    shared by every operator in every pipeline, including cache-miss
    segment recomputation and witness-count mini-joins.

    Soundness rests on one rule: the executor calls :meth:`invalidate`
    for a relation the moment its window changes, so a memo hit always
    returns exactly what recomputation against the live windows would.
    Profiled tuples bypass the memo entirely (the profiler measures the
    true cache-free cost of an operator).

    The memo exists only while a batch of size > 1 is in flight; at batch
    size 1 execution is charge-for-charge identical to per-update mode.
    """

    __slots__ = ("_by_target", "hits", "misses")

    def __init__(self) -> None:
        self._by_target: Dict[str, Dict[tuple, List]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, target: str, signature: tuple) -> Optional[List]:
        """The memoized match list, or None if absent (miss)."""
        entries = self._by_target.get(target)
        if entries is None:
            self.misses += 1
            return None
        matches = entries.get(signature)
        if matches is None:
            self.misses += 1
            return None
        self.hits += 1
        return matches

    def put(self, target: str, signature: tuple, matches: List) -> None:
        """Memoize a freshly computed match list."""
        self._by_target.setdefault(target, {})[signature] = matches

    def invalidate(self, target: str) -> None:
        """Drop every entry probing ``target`` (its window changed)."""
        self._by_target.pop(target, None)

    def clear(self) -> None:
        """Drop everything (end of batch)."""
        self._by_target.clear()


@dataclass
class ExecContext:
    """Everything an operator needs besides its inputs.

    Operators charge all work to ``clock`` using the unit costs in
    ``cost_model`` and bump counters on ``metrics``; they otherwise touch
    no global state, which keeps them unit-testable in isolation.

    ``obs`` is the observability surface (registry, tracer, decision
    log). The default is disabled — hot paths pay one ``obs.enabled``
    attribute check — unless an observability session is active
    (:func:`repro.obs.session`), in which case new contexts adopt it.
    """

    clock: Union[VirtualClock, WallClock] = field(default_factory=VirtualClock)
    cost_model: CostModel = field(default_factory=CostModel)
    metrics: Metrics = field(default_factory=Metrics)
    obs: Observability = field(default_factory=default_observability)
    # Set by the executor for the duration of a micro-batch (size > 1);
    # None keeps the per-update hot path completely unchanged.
    probe_memo: Optional[BatchProbeMemo] = None
