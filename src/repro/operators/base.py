"""Shared execution context threaded through operators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.engine.clock import CostModel, VirtualClock, WallClock
from repro.engine.metrics import Metrics
from repro.obs import Observability, default_observability


@dataclass
class ExecContext:
    """Everything an operator needs besides its inputs.

    Operators charge all work to ``clock`` using the unit costs in
    ``cost_model`` and bump counters on ``metrics``; they otherwise touch
    no global state, which keeps them unit-testable in isolation.

    ``obs`` is the observability surface (registry, tracer, decision
    log). The default is disabled — hot paths pay one ``obs.enabled``
    attribute check — unless an observability session is active
    (:func:`repro.obs.session`), in which case new contexts adopt it.
    """

    clock: Union[VirtualClock, WallClock] = field(default_factory=VirtualClock)
    cost_model: CostModel = field(default_factory=CostModel)
    metrics: Metrics = field(default_factory=Metrics)
    obs: Observability = field(default_factory=default_observability)
