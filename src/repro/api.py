"""The public construction facade: :class:`EngineConfig` + :class:`Session`.

Three PRs of growth (observability, faults, parallel) left engine
construction fragmented: ``static_plan``, ``planner.enumeration``,
``parallel.EngineSpec``, ``faults.chaos``, and the CLI each re-plumbed the
same ``orders/global_quota/buckets/resilience/shards`` keyword sets. This
module is the one place those knobs live:

* :class:`EngineConfig` — a frozen dataclass holding every construction
  parameter (join orders, cache quota and buckets, micro-batch size,
  resilience, sharding, observability sinks, adaptive tunables);
* :class:`Session` — a facade over one engine built from a config:
  ``Session.static(...)`` for a fixed cache set, ``Session.adaptive(...)``
  for the full A-Caching engine, with ``.run(...)`` / ``.series(...)``
  drivers that honor the config's batch size and shard count.

Everything in-repo (figures, chaos, parallel specs, the CLI) builds
engines through this module; the old keyword entry points remain as thin
shims that emit :class:`DeprecationWarning`.

>>> from repro.api import EngineConfig, Session
>>> session = Session.adaptive(workload, EngineConfig(batch_size=64))
>>> deltas = session.run(arrivals=10_000)
>>> session.throughput()
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.acaching import ACaching, ACachingConfig
from repro.core.reoptimizer import ReoptimizerConfig
from repro.errors import ConfigError, PlanError
from repro.faults.resilience import ResilienceConfig
from repro.streams.events import DeltaBatch, OutputDelta, Update
from repro.streams.workloads import Workload

#: Engines a Session can host. ``static`` is an MJoin with a fixed cache
#: set; ``adaptive`` is the full A-Caching engine of Figure 4.
SESSION_KINDS = ("static", "adaptive")

PARALLEL_BACKENDS = ("serial", "process")

WorkloadLike = Union[Workload, Callable[[], Workload]]


@dataclass(frozen=True)
class ShardingConfig:
    """How a session's runs are partitioned — the nested home of the
    former flat ``shards``/``parallel_backend``/``supervision`` knobs.

    ``coordinate`` joins adaptive sharded runs to the global adaptivity
    plane (:mod:`repro.parallel.adaptivity`): shards exchange profiler
    snapshots for one coordinator-decided cache plan every
    ``sync_every_updates`` positions of the global stream, so the
    sharded run selects the same caches a serial run would. It is on by
    default and ignored by non-adaptive engines and unsharded runs.
    """

    shards: int = 1
    backend: str = "serial"
    supervision: Optional[object] = None     # SupervisionConfig
    coordinate: bool = True
    sync_every_updates: int = 2000

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigError(
                f"sharding.shards must be >= 1, got {self.shards}"
            )
        if self.backend not in PARALLEL_BACKENDS:
            raise ConfigError(
                f"sharding.backend must be one of {PARALLEL_BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.sync_every_updates < 1:
            raise ConfigError(
                "sharding.sync_every_updates must be >= 1, got "
                f"{self.sync_every_updates}"
            )


@dataclass(frozen=True)
class DurabilityConfig:
    """Journaling knobs — the nested home of ``wal_dir``/
    ``checkpoint_interval``/``wal_fsync_every``/``cache_recovery``."""

    wal_dir: Optional[str] = None
    checkpoint_interval: int = 1000
    fsync_every: int = 64
    cache_recovery: str = "snapshot"         # or "rebuild" (drop caches)

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ConfigError(
                "durability.checkpoint_interval must be >= 1, got "
                f"{self.checkpoint_interval}"
            )
        if self.fsync_every < 1:
            raise ConfigError(
                "durability.fsync_every must be >= 1, got "
                f"{self.fsync_every}"
            )
        if self.cache_recovery not in ("snapshot", "rebuild"):
            raise ConfigError(
                "durability.cache_recovery must be 'snapshot' or "
                f"'rebuild', got {self.cache_recovery!r}"
            )


@dataclass(frozen=True)
class TenancyConfig:
    """Multi-query reservation bounds — the nested home of
    ``tenant_min_bytes``/``tenant_max_bytes``/``share_caches``."""

    min_bytes: int = 0
    max_bytes: Optional[int] = None
    share_caches: bool = True

    def __post_init__(self) -> None:
        if self.min_bytes < 0:
            raise ConfigError(
                f"tenancy.min_bytes must be >= 0, got {self.min_bytes}"
            )
        if self.max_bytes is not None and self.max_bytes < self.min_bytes:
            raise ConfigError(
                "tenancy.max_bytes must be >= tenancy.min_bytes "
                f"({self.max_bytes} < {self.min_bytes})"
            )


# flat attribute -> (nested group, nested field, flat default); the
# back-compat bridge: flat keywords still work alone, the nested configs
# are authoritative, and mixing both forms for one group is an error
# naming the new path.
_NESTED_GROUPS = {
    "sharding": (
        ShardingConfig,
        (
            ("shards", "shards", 1),
            ("parallel_backend", "backend", "serial"),
            ("supervision", "supervision", None),
        ),
    ),
    "durability": (
        DurabilityConfig,
        (
            ("wal_dir", "wal_dir", None),
            ("checkpoint_interval", "checkpoint_interval", 1000),
            ("wal_fsync_every", "fsync_every", 64),
            ("cache_recovery", "cache_recovery", "snapshot"),
        ),
    ),
    "tenancy": (
        TenancyConfig,
        (
            ("tenant_min_bytes", "min_bytes", 0),
            ("tenant_max_bytes", "max_bytes", None),
            ("share_caches", "share_caches", True),
        ),
    ),
}


@dataclass(frozen=True)
class EngineConfig:
    """Every engine-construction knob in one picklable value.

    ``orders``/``candidate_ids``/``global_quota``/``buckets`` configure
    the plan; ``batch_size`` selects micro-batched execution (1 = the
    per-update hot path, byte-identical results either way);
    ``resilience`` wires the graceful-degradation controller; ``shards``
    and ``parallel_backend`` select partitioned execution; the ``obs_*``
    sinks capture a structured trace / metrics dump of the session's
    runs; ``tuning`` overrides the adaptive engine's full tunable set
    (profiler, re-optimizer, ordering) — when set, it wins over
    ``global_quota`` and ``resilience`` only where it explicitly
    configures them; ``wal_dir``/``checkpoint_interval``/
    ``wal_fsync_every``/``cache_recovery`` journal runs for crash
    recovery, and ``supervision`` runs shards under the restarting
    supervisor.

    The sharding, durability, and tenancy knobs also have nested
    spellings — :class:`ShardingConfig`, :class:`DurabilityConfig`,
    :class:`TenancyConfig` — which are the preferred form and the only
    home of the newer knobs (e.g. ``sharding.coordinate``). The flat
    keywords remain accepted for compatibility; after construction both
    forms are populated and coherent.
    """

    orders: Optional[Dict[str, Tuple[str, ...]]] = None
    candidate_ids: Tuple[str, ...] = ()      # static plans: caches to wire
    global_quota: int = 8                    # global-cache quota m
    buckets: int = 512                       # cache store buckets
    batch_size: int = 1                      # micro-batch size (1 = per-update)
    resilience: Optional[ResilienceConfig] = None
    shards: int = 1
    parallel_backend: str = "serial"
    obs_trace_jsonl: Optional[str] = None    # structured trace sink
    obs_metrics_prom: Optional[str] = None   # Prometheus metrics sink
    # Wall-clock span profiling: ``profile`` attaches a SpanProfiler to
    # the session's runs (dual-clock spans, folded stacks); ``obs_flame``
    # additionally writes the folded-stack file there after each run.
    # Sharded runs collect per-worker telemetry and merge it under
    # ``shard`` labels in the prom/flame sinks.
    profile: bool = False
    obs_flame: Optional[str] = None          # folded-stack flamegraph sink
    tuning: Optional[ACachingConfig] = None  # full adaptive tunables
    # Durability (repro.recovery): ``wal_dir`` is the master switch —
    # when set, serial runs journal every update to a WAL and checkpoint
    # every ``checkpoint_interval`` processed updates, and sharded runs
    # give each shard its own sub-journal for supervised restarts.
    wal_dir: Optional[str] = None
    checkpoint_interval: int = 1000
    wal_fsync_every: int = 64                # WAL records per fsync batch
    cache_recovery: str = "snapshot"         # or "rebuild" (drop caches)
    # Supervised sharded execution: a SupervisionConfig turns execute()
    # into a Supervisor run (heartbeats, backoff restarts, circuit
    # breaker); None keeps the plain unsupervised backends.
    supervision: Optional[object] = None
    # Multi-query tenancy (repro.multi): per-tenant reservation bounds
    # against the engine's global memory budget, and whether this query's
    # prefix-invariant caches may join inter-query shared-store groups.
    # Ignored by single-query sessions.
    tenant_min_bytes: int = 0
    tenant_max_bytes: Optional[int] = None
    share_caches: bool = True
    # Load-shedder trigger clock: when True, the shedder measures real
    # elapsed time per update instead of the virtual clock. Live services
    # want this (virtual cost can look fine while the machine drowns);
    # reproducibility suites must not (wall-clock shedding is
    # nondeterministic, so batch-equivalence and recovery byte-identity
    # only hold with the default False).
    shed_wall_clock: bool = False
    # Nested config groups — the preferred spelling of the flat knobs
    # above. After construction these are always populated (synthesized
    # from the flat keywords when not given) and the flat attributes
    # always mirror them, so both access forms stay coherent. Passing a
    # nested group AND a non-default flat knob of the same group is a
    # ConfigError naming the nested path.
    sharding: Optional[ShardingConfig] = None
    durability: Optional[DurabilityConfig] = None
    tenancy: Optional[TenancyConfig] = None

    def __post_init__(self) -> None:
        self._reconcile_nested()
        if self.batch_size < 1:
            raise PlanError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.shed_wall_clock:
            resilience = (
                self.resilience if self.resilience is not None
                else ResilienceConfig()
            )
            if resilience.shedding is None:
                raise ConfigError(
                    "shed_wall_clock requires shedding enabled; the "
                    "resilience config has shedding=None"
                )
            if not resilience.shedding.wall_clock:
                resilience = replace(
                    resilience,
                    shedding=replace(resilience.shedding, wall_clock=True),
                )
            object.__setattr__(self, "resilience", resilience)
        object.__setattr__(
            self, "candidate_ids", tuple(self.candidate_ids)
        )
        if self.orders is not None:
            object.__setattr__(
                self,
                "orders",
                {k: tuple(v) for k, v in self.orders.items()},
            )

    def _reconcile_nested(self) -> None:
        """Bridge the flat knobs and the nested config groups.

        Exactly one spelling per group may deviate from the defaults;
        afterwards the nested config is authoritative and the flat
        attributes mirror it (so seed-era readers like
        ``config.shards`` keep working unchanged).
        """
        for group_name, (cls, fields) in _NESTED_GROUPS.items():
            nested = getattr(self, group_name)
            if nested is not None:
                # A flat knob may only deviate from its default when it
                # agrees with the nested value — that tolerance is what
                # keeps dataclasses.replace() (which re-passes the flat
                # mirrors) working on already-reconciled configs.
                conflicting = [
                    flat
                    for flat, nested_field, default in fields
                    if getattr(self, flat) != default
                    and getattr(self, flat) != getattr(nested, nested_field)
                ]
                if conflicting:
                    raise ConfigError(
                        f"{', '.join(conflicting)} moved into "
                        f"{cls.__name__} — pass EngineConfig("
                        f"{group_name}={cls.__name__}(...)) and drop "
                        f"the flat keyword(s)"
                    )
            else:
                self._validate_flat(group_name)
                nested = cls(
                    **{
                        nested_field: getattr(self, flat)
                        for flat, nested_field, _default in fields
                    }
                )
                object.__setattr__(self, group_name, nested)
            for flat, nested_field, _default in fields:
                object.__setattr__(
                    self, flat, getattr(nested, nested_field)
                )

    def _validate_flat(self, group: str) -> None:
        """Seed-era validation messages for the flat spellings (the
        nested configs re-check with their own field names)."""
        if group == "sharding":
            if self.shards < 1:
                raise PlanError(f"shards must be >= 1, got {self.shards}")
            if self.parallel_backend not in PARALLEL_BACKENDS:
                raise PlanError(
                    f"parallel_backend must be one of {PARALLEL_BACKENDS}, "
                    f"got {self.parallel_backend!r}"
                )
        elif group == "durability":
            if self.checkpoint_interval < 1:
                raise ConfigError(
                    "checkpoint_interval must be >= 1, got "
                    f"{self.checkpoint_interval}"
                )
            if self.wal_fsync_every < 1:
                raise ConfigError(
                    "wal_fsync_every must be >= 1, got "
                    f"{self.wal_fsync_every}"
                )
            if self.cache_recovery not in ("snapshot", "rebuild"):
                raise ConfigError(
                    "cache_recovery must be 'snapshot' or 'rebuild', got "
                    f"{self.cache_recovery!r}"
                )
        elif group == "tenancy":
            if self.tenant_min_bytes < 0:
                raise ConfigError(
                    "tenant_min_bytes must be >= 0, got "
                    f"{self.tenant_min_bytes}"
                )
            if (
                self.tenant_max_bytes is not None
                and self.tenant_max_bytes < self.tenant_min_bytes
            ):
                raise ConfigError(
                    "tenant_max_bytes must be >= tenant_min_bytes "
                    f"({self.tenant_max_bytes} < {self.tenant_min_bytes})"
                )

    # ------------------------------------------------------------------
    # derived configurations
    # ------------------------------------------------------------------
    def acaching_config(self) -> ACachingConfig:
        """The adaptive-engine tunables this config resolves to.

        ``tuning`` is used verbatim when given (with ``resilience``
        folded in if the tuning left it unset); otherwise defaults with
        this config's ``global_quota`` and ``resilience`` applied.
        """
        if self.tuning is not None:
            config = self.tuning
            if self.resilience is not None and config.resilience is None:
                config = replace(config, resilience=self.resilience)
            return config
        return ACachingConfig(
            reoptimizer=ReoptimizerConfig(global_quota=self.global_quota),
            resilience=self.resilience,
        )

    def parallel(self):
        """The :class:`~repro.parallel.engine.ParallelConfig` equivalent."""
        from repro.parallel.engine import ParallelConfig

        return ParallelConfig(
            shards=self.shards, backend=self.parallel_backend
        )

    def recovery(self):
        """The :class:`~repro.recovery.manager.RecoveryConfig` this
        config's durability knobs resolve to, or None with no ``wal_dir``."""
        if self.wal_dir is None:
            return None
        from repro.recovery.manager import RecoveryConfig

        return RecoveryConfig(
            wal_dir=self.wal_dir,
            checkpoint_interval=self.checkpoint_interval,
            fsync_every=self.wal_fsync_every,
            cache_mode=self.cache_recovery,
        )

    def engine_spec(self, kind: str = "adaptive", tree=None):
        """A picklable :class:`~repro.parallel.spec.EngineSpec`.

        Accepts the Session kinds (``static``/``adaptive``) plus the
        lower-level ``mjoin``/``xjoin`` spec kinds.
        """
        from repro.parallel.spec import EngineSpec

        if kind == "adaptive":
            kind = "acaching"
        if kind == "acaching":
            return EngineSpec(
                kind="acaching",
                config=self.acaching_config(),
                orders=self.orders,
            )
        if kind == "static":
            return EngineSpec(
                kind="static",
                orders=self.orders,
                candidate_ids=self.candidate_ids,
                buckets=self.buckets,
            )
        return EngineSpec(kind=kind, orders=self.orders, tree=tree)


def build_static_plan(workload: Workload, config: Optional[EngineConfig] = None):
    """Build a :class:`~repro.engine.runtime.StaticPlan` from a config.

    The non-deprecated replacement for the legacy keyword form of
    :func:`repro.engine.runtime.static_plan`.
    """
    from repro.engine.runtime import _build_static_plan

    config = config if config is not None else EngineConfig()
    return _build_static_plan(
        workload,
        orders=config.orders,
        candidate_ids=config.candidate_ids,
        global_quota=config.global_quota,
        buckets=config.buckets,
        resilience=config.resilience,
    )


def build_adaptive_engine(
    workload: Workload, config: Optional[EngineConfig] = None
) -> ACaching:
    """Build the full A-Caching engine from a config.

    The non-deprecated replacement for ``ACaching.for_workload``.
    """
    config = config if config is not None else EngineConfig()
    return ACaching(
        workload.graph,
        orders=config.orders,
        indexed_attributes=workload.indexed_attributes,
        config=config.acaching_config(),
    )


class Session:
    """One engine plus the drivers to run it, behind a single config.

    A Session duck-types as a plan — it exposes ``.ctx``, ``.process``,
    ``.process_batch``, and ``.resilience`` — so it slots into every
    driver that accepts one (``run_with_series``, ``measured_run``, the
    chaos harness). Its own :meth:`run` and :meth:`series` additionally
    honor the config's ``batch_size``, ``shards``, and obs sinks.
    """

    def __init__(
        self,
        kind: str,
        workload: WorkloadLike,
        config: Optional[EngineConfig] = None,
    ):
        if kind not in SESSION_KINDS:
            raise PlanError(
                f"session kind must be one of {SESSION_KINDS}, got {kind!r}"
            )
        self.kind = kind
        self.config = config if config is not None else EngineConfig()
        if callable(workload):
            self.workload_factory: Optional[Callable[[], Workload]] = workload
            self.workload: Workload = workload()
        else:
            self.workload_factory = None
            self.workload = workload
        self._plan = None
        self._obs = None
        # Merged cross-shard telemetry of the last sharded run (set by
        # execute() when the spec collected observability).
        self.last_telemetry = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def static(
        cls, workload: WorkloadLike, config: Optional[EngineConfig] = None
    ) -> "Session":
        """A fixed MJoin-with-caches plan (no adaptivity)."""
        return cls("static", workload, config)

    @classmethod
    def adaptive(
        cls, workload: WorkloadLike, config: Optional[EngineConfig] = None
    ) -> "Session":
        """The full A-Caching engine (profiler + re-optimizer + orderer)."""
        return cls("adaptive", workload, config)

    # ------------------------------------------------------------------
    # the engine
    # ------------------------------------------------------------------
    @property
    def plan(self):
        """The underlying engine, built on first use."""
        if self._plan is None:
            self._plan = self._build_plan()
        return self._plan

    def _wants_profiler(self) -> bool:
        return self.config.profile or bool(self.config.obs_flame)

    def _wants_obs(self) -> bool:
        return bool(
            self.config.obs_trace_jsonl
            or self.config.obs_metrics_prom
            or self._wants_profiler()
        )

    def _build_plan(self):
        if self._wants_obs():
            from repro import obs

            self._obs = obs.Observability.tracing(
                profile=self._wants_profiler()
            )
            with obs.session(self._obs):
                return self._construct()
        return self._construct()

    def _construct(self):
        if self.kind == "static":
            return build_static_plan(self.workload, self.config)
        return build_adaptive_engine(self.workload, self.config)

    @property
    def ctx(self):
        """The execution context (clock, cost model, metrics)."""
        return self.plan.ctx

    @property
    def resilience(self):
        """The plan's ResilienceController, if one is configured."""
        return getattr(self.plan, "resilience", None)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def process(self, update: Update) -> List[OutputDelta]:
        """Process one update through the engine."""
        return self.plan.process(update)

    def process_batch(self, batch: DeltaBatch) -> List[List[OutputDelta]]:
        """Process one micro-batch; returns per-update delta lists."""
        return self.plan.process_batch(batch)

    def run(
        self,
        updates: Optional[Iterable[Update]] = None,
        arrivals: Optional[int] = None,
    ) -> List[OutputDelta]:
        """Process an update sequence; returns all result deltas.

        Pass either an explicit ``updates`` iterable or an ``arrivals``
        count (drawn from the session's workload). With ``shards > 1``
        the run executes partitioned (``arrivals`` required, and the
        session must have been built from a workload *factory*) and the
        deltas come back merged in global arrival order.
        """
        if self.config.shards > 1:
            if updates is not None:
                raise PlanError(
                    "a sharded run() replays the workload's own stream; "
                    "pass arrivals, not an updates iterable"
                )
            run = self.execute(arrivals=arrivals, output_mode="deltas")
            # merged_deltas() yields (seq, emission index, delta) tagged
            # triples in global arrival order; strip the tags.
            return [delta for _, _, delta in run.merged_deltas()]
        if updates is None:
            if arrivals is None:
                raise PlanError("run() needs either updates or arrivals")
            updates = self.workload.updates(arrivals)
        plan = self.plan
        profiler = self._obs.profiler if self._obs is not None else None
        if profiler is not None and profiler.enabled:
            with profiler.span("run", clock=plan.ctx.clock):
                outputs = self._run_serial(updates)
        else:
            outputs = self._run_serial(updates)
        self._export_obs()
        return outputs

    def _run_serial(self, updates: Iterable[Update]) -> List[OutputDelta]:
        if self.config.wal_dir is not None:
            return self._run_recorded(updates)
        return self.plan.run(updates, batch_size=self.config.batch_size)

    def _run_recorded(
        self, updates: Iterable[Update], skip_through: int = -1
    ) -> List[OutputDelta]:
        """Drive ``updates`` journaled: WAL every update, checkpoint at
        update/flush boundaries. ``skip_through`` drops the prefix a
        restore already covered (checkpoint + replayed WAL)."""
        from repro.recovery.manager import Recorder

        recorder = Recorder(self.plan, self.config.recovery())
        outputs: List[OutputDelta] = []
        pending: List[Update] = []

        def flush() -> None:
            if not pending:
                return
            last_seq = pending[-1].seq
            for deltas in self.plan.process_batch(DeltaBatch(pending)):
                outputs.extend(deltas)
            recorder.mark_processed(len(pending))
            pending.clear()
            recorder.maybe_checkpoint(last_seq)

        for update in updates:
            if update.seq <= skip_through:
                continue
            recorder.log(update)
            if self.config.batch_size == 1:
                outputs.extend(self.plan.process(update))
                recorder.mark_processed()
                recorder.maybe_checkpoint(update.seq)
            else:
                pending.append(update)
                if len(pending) >= self.config.batch_size:
                    flush()
        flush()
        recorder.close()
        return outputs

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def restore(self):
        """Rebuild the engine from the config's journal directory.

        Loads the newest valid checkpoint under ``wal_dir`` (skipping
        corrupt/partial snapshots), replays the durable WAL suffix, and
        swaps the session's plan for the restored engine. Returns the
        :class:`~repro.recovery.manager.RecoveredState` so callers know
        the seq to resume the source from.
        """
        from repro.recovery.manager import RecoveryManager

        config = self.config.recovery()
        if config is None:
            raise ConfigError(
                "restore() needs wal_dir set on the EngineConfig"
            )
        restored = RecoveryManager(config, builder=self._construct).restore()
        self._plan = restored.plan
        return restored

    def resume(self, arrivals: int) -> List[OutputDelta]:
        """Crash recovery in one call: restore, then finish the run.

        Restores from ``wal_dir``, then re-feeds the deterministic
        workload stream past the restored seq — journaling as it goes, so
        a crash during resume is itself recoverable. Returns the deltas
        produced from the restore point on (WAL replay + resumed source).
        """
        restored = self.restore()
        outputs = [
            delta for _seq, deltas in restored.replayed for delta in deltas
        ]
        outputs.extend(
            self._run_recorded(
                self.workload.updates(arrivals),
                skip_through=restored.last_seq,
            )
        )
        self._export_obs()
        return outputs

    def series(
        self,
        updates: Optional[Iterable[Update]] = None,
        arrivals: Optional[int] = None,
        sample_every_updates: int = 2000,
        x_of: Optional[Callable[[Update], bool]] = None,
        used_caches: Optional[Callable[[], Sequence[str]]] = None,
        memory: Optional[Callable[[], int]] = None,
    ):
        """Run while sampling throughput; returns ``SeriesPoint`` list.

        Serial sessions drive :func:`repro.engine.runtime.run_with_series`
        (honoring ``batch_size``); sharded sessions drive the lockstep
        :func:`repro.parallel.series.run_series_sharded`.
        """
        if self.config.shards > 1:
            from repro.parallel.series import run_series_sharded

            if arrivals is None:
                raise PlanError("a sharded series() needs arrivals")
            series = run_series_sharded(
                self.experiment(arrivals, adaptivity=None),
                shards=self.config.shards,
                sample_every_updates=sample_every_updates,
                x_of=x_of,
            )
            self._export_obs()
            return series
        from repro.engine.runtime import run_with_series

        if updates is None:
            if arrivals is None:
                raise PlanError("series() needs either updates or arrivals")
            updates = self.workload.updates(arrivals)
        plan = self.plan
        if used_caches is None:
            used = getattr(plan, "used_caches", None)
            if callable(used):
                used_caches = used
        if memory is None:
            mem = getattr(plan, "memory_in_use", None)
            if callable(mem):
                memory = mem
        series = run_with_series(
            plan,
            updates,
            sample_every_updates=sample_every_updates,
            x_of=x_of,
            used_caches=used_caches,
            memory=memory,
            batch_size=self.config.batch_size,
        )
        self._export_obs()
        return series

    # ------------------------------------------------------------------
    # parallel execution
    # ------------------------------------------------------------------
    def _require_factory(self) -> Callable[[], Workload]:
        if self.workload_factory is None:
            raise PlanError(
                "sharded execution needs a workload *factory* — build the "
                "Session from a zero-argument callable, not an instance"
            )
        return self.workload_factory

    def engine_spec(self):
        """The picklable EngineSpec matching this session's engine."""
        return self.config.engine_spec(kind=self.kind)

    def experiment(self, arrivals: int, **measurement):
        """An :class:`~repro.parallel.spec.ExperimentSpec` for this session.

        ``measurement`` kwargs (``warmup_fraction``, ``fault_spec``,
        ``output_mode``, ``collect_windows``, ...) pass straight through;
        the engine, batch size, and workload factory come from the
        session. When the config carries obs sinks or profiling, workers
        default to collecting telemetry (``collect_obs``/``profile``) so
        sharded runs feed the same sinks serial runs do.
        """
        from repro.parallel.spec import ExperimentSpec

        measurement.setdefault("collect_obs", self._wants_obs())
        measurement.setdefault("profile", self._wants_profiler())
        sharding = self.config.sharding
        if (
            self.kind == "adaptive"
            and sharding.shards > 1
            and sharding.coordinate
        ):
            # Global adaptivity plane: one coordinator-decided cache plan
            # per epoch instead of per-shard local re-optimization.
            # Callers that cannot host the barrier protocol (the lockstep
            # series driver) pass adaptivity=None explicitly.
            from repro.parallel.adaptivity import AdaptivityConfig

            measurement.setdefault(
                "adaptivity",
                AdaptivityConfig(
                    sync_every_updates=sharding.sync_every_updates
                ),
            )
        return ExperimentSpec(
            workload_factory=self._require_factory(),
            arrivals=arrivals,
            engine=self.engine_spec(),
            batch_size=self.config.batch_size,
            **measurement,
        )

    def execute(
        self, arrivals: Optional[int] = None, crashes=(), **measurement
    ):
        """Run as the config directs; returns the structured run.

        The structured counterpart of :meth:`run`: same dispatch on the
        config's :class:`ShardingConfig` (shard count, backend,
        supervision, adaptivity coordination), but returning the
        :class:`~repro.parallel.engine.ParallelRun` — or, with a
        ``supervision`` policy, the :class:`~repro.parallel.supervisor.
        SupervisedRun` (same merge API) executed under heartbeat
        monitoring with per-shard checkpoint-resumed restarts — instead
        of the flattened delta list. Works at any shard count (one shard
        runs in-process). ``crashes`` (:class:`WorkerCrash` specs) only
        applies to supervised runs — it injects deterministic worker
        kills. ``measurement`` kwargs flow into the
        :class:`ExperimentSpec` (``output_mode``, ``collect_windows``,
        ``stop_after_updates``, ``adaptivity``, ...).
        """
        from repro.parallel.engine import run_sharded

        if arrivals is None:
            raise PlanError("execute() needs arrivals")
        spec = self.experiment(arrivals, **measurement)
        if self.config.supervision is not None:
            from repro.parallel.supervisor import Supervisor

            run = Supervisor(
                self.config.supervision, recovery=self.config.recovery()
            ).run(spec, self.config.shards, crashes=crashes)
        else:
            if crashes:
                raise ConfigError(
                    "crashes requires supervision set on the EngineConfig"
                )
            run = run_sharded(spec, self.config.parallel())
        if spec.collect_obs or spec.profile:
            self.last_telemetry = run.merged_telemetry()
            self._export_merged_obs(self.last_telemetry)
        return run

    def run_sharded(
        self, arrivals: Optional[int] = None, crashes=(), **measurement
    ):
        """Deprecated: :meth:`execute` is the structured runner now (and
        :meth:`run` dispatches on the config's sharding by itself)."""
        warnings.warn(
            "Session.run_sharded(...) is deprecated; use "
            "Session.execute(...) for the structured run, or "
            "Session.run(), which dispatches on the config's sharding",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.execute(
            arrivals=arrivals, crashes=crashes, **measurement
        )

    # ------------------------------------------------------------------
    # introspection / observability
    # ------------------------------------------------------------------
    def throughput(self) -> float:
        """Updates per second of virtual time, all overheads included."""
        ctx = self.ctx
        return ctx.metrics.throughput(ctx.clock.now_seconds)

    def used_caches(self) -> Tuple[str, ...]:
        """Candidate ids of the caches the engine currently probes."""
        used = getattr(self.plan, "used_caches", None)
        if callable(used):
            return tuple(used())
        fixed = getattr(self.plan, "used", None)
        return tuple(fixed) if fixed else ()

    def profile_snapshot(self):
        """The serial profiler's state, or None when not profiling.

        For sharded runs use ``last_telemetry.profile`` instead (the
        merged, shard-prefixed snapshot).
        """
        if self._obs is None or not self._obs.profiler.enabled:
            return None
        return self._obs.profiler.snapshot()

    def _export_obs(self) -> None:
        """Flush configured obs sinks (idempotent; overwrites)."""
        if self._obs is None:
            return
        from repro.obs.export import (
            observability_to_jsonl,
            registry_to_prometheus,
            write_jsonl,
        )

        metrics = self.ctx.metrics
        if self.config.obs_trace_jsonl:
            write_jsonl(
                self.config.obs_trace_jsonl,
                observability_to_jsonl(self._obs, metrics),
            )
        if self.config.obs_metrics_prom:
            write_jsonl(
                self.config.obs_metrics_prom,
                registry_to_prometheus(self._obs.registry, metrics),
            )
        if self.config.obs_flame and self._obs.profiler.enabled:
            from repro.obs.profile import write_folded

            write_folded(
                self.config.obs_flame, self._obs.profiler.snapshot()
            )

    def _export_merged_obs(self, telemetry) -> None:
        """Flush a sharded run's merged telemetry to the obs sinks."""
        import json

        from repro.obs.export import write_jsonl
        from repro.obs.profile import write_folded

        if self.config.obs_trace_jsonl:
            write_jsonl(
                self.config.obs_trace_jsonl,
                "\n".join(
                    json.dumps(record, sort_keys=True, default=str)
                    for record in telemetry.chronology()
                ),
            )
        if self.config.obs_metrics_prom:
            write_jsonl(
                self.config.obs_metrics_prom, telemetry.to_prometheus()
            )
        if self.config.obs_flame and telemetry.profile is not None:
            write_folded(self.config.obs_flame, telemetry.profile)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session({self.kind}, batch_size={self.config.batch_size}, "
            f"shards={self.config.shards})"
        )


class MultiSession:
    """N continuous queries on one shared engine (see :mod:`repro.multi`).

    Streams are ingested once; prefix-invariant caches whose segment join
    provably matches across queries share one physical store; one global
    memory budget is arbitrated across tenants by net benefit per byte
    under each tenant's ``tenant_min_bytes``/``tenant_max_bytes``
    reservation. Queries are added and removed at update boundaries
    without restarting the engine.

    >>> ms = MultiSession(budget_bytes=1 << 20)
    >>> ms.register("alerts", workload)
    >>> ms.register("audit", workload, EngineConfig(tenant_min_bytes=4096))
    >>> per_query = ms.run(arrivals=50_000)
    >>> ms.unregister("audit")

    Per-query output deltas are byte-identical to the same query running
    alone on its own engine; sharing only changes memory and modeled
    cost.
    """

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        share_caches: bool = True,
        memory_check_every_updates: int = 500,
        tracing: bool = False,
    ):
        from repro.multi.engine import MultiQueryEngine

        self.engine = MultiQueryEngine(
            budget_bytes=budget_bytes,
            share_caches=share_caches,
            memory_check_every_updates=memory_check_every_updates,
            tracing=tracing,
        )
        self._workloads: Dict[str, Workload] = {}

    def register(
        self,
        query_id: str,
        workload: WorkloadLike,
        config: Optional[EngineConfig] = None,
    ) -> None:
        """Splice a query in at an update boundary (warm from shared
        windows). Rejects configs incompatible with shared execution
        (micro-batching, sharding, resilience, per-tenant WAL)."""
        instance = workload() if callable(workload) else workload
        self.engine.register(query_id, instance, config)
        self._workloads[query_id] = instance

    def unregister(self, query_id: str) -> None:
        """Remove a query; keeps every cache byte a survivor references."""
        self.engine.unregister(query_id)
        self._workloads.pop(query_id, None)

    def queries(self) -> List[str]:
        return self.engine.queries()

    def process(self, update: Update) -> Dict[str, List[OutputDelta]]:
        """One shared-stream update through every interested query."""
        return self.engine.process(update)

    def run(
        self,
        updates: Optional[Iterable[Update]] = None,
        arrivals: Optional[int] = None,
        workload: Optional[Workload] = None,
    ) -> Dict[str, List[OutputDelta]]:
        """Drive an update sequence; returns per-query delta lists.

        With ``arrivals`` the stream is drawn from ``workload`` (or, when
        every registered query shares one workload, from that workload).
        """
        if updates is None:
            if arrivals is None:
                raise PlanError("run() needs either updates or arrivals")
            if workload is None:
                distinct = {id(w): w for w in self._workloads.values()}
                if len(distinct) != 1:
                    raise PlanError(
                        "run(arrivals=...) needs an explicit workload when "
                        "registered queries use different workloads"
                    )
                workload = next(iter(distinct.values()))
            updates = workload.updates(arrivals)
        return self.engine.run(updates)

    # ------------------------------------------------------------------
    # introspection / observability
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Engine-level state: streams, bytes, shared stores, arbiter."""
        return self.engine.snapshot()

    def decisions(self) -> List[Dict[str, object]]:
        """All tenants' adaptivity decisions, merged, ``query_id``-tagged."""
        return self.engine.decisions()

    def metrics_prometheus(self) -> str:
        """Merged exposition; every sample labeled with its query_id."""
        return self.engine.metrics_prometheus()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MultiSession(queries={self.engine.queries()})"
