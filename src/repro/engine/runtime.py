"""Run helpers: static cached plans and time-series measurement.

The adaptivity experiments (Figures 12 and 13) need two things beyond the
plan runners in :mod:`repro.planner.enumeration`: fixed plans with a
hand-picked cache set (the static comparison curves), and periodic
throughput sampling along a run (the time axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.candidates import enumerate_candidates
from repro.core.wiring import CacheWiring
from repro.errors import PlanError
from repro.faults.resilience import ResilienceConfig, ResilienceController
from repro.mjoin.executor import MJoinExecutor
from repro.streams.events import DeltaBatch, Sign, Update, batched
from repro.streams.workloads import Workload


@dataclass
class StaticPlan:
    """A fixed MJoin-with-caches plan (no adaptivity at all)."""

    executor: MJoinExecutor
    wiring: CacheWiring
    used: Tuple[str, ...]
    resilience: Optional[ResilienceController] = None

    def process(self, update: Update):
        """Process one update through the fixed plan."""
        return self.executor.process(update)

    def process_batch(self, batch: DeltaBatch):
        """Process one micro-batch; returns per-update delta lists."""
        return self.executor.process_batch(batch)

    def run(self, updates: Iterable[Update], batch_size: int = 1):
        """Process a whole update sequence."""
        return self.executor.run(updates, batch_size=batch_size)

    @property
    def ctx(self):
        """The execution context (clock, cost model, metrics)."""
        return self.executor.ctx


def _build_static_plan(
    workload: Workload,
    orders: Optional[Dict[str, Sequence[str]]] = None,
    candidate_ids: Sequence[str] = (),
    global_quota: int = 8,
    buckets: int = 512,
    resilience: Optional[ResilienceConfig] = None,
) -> StaticPlan:
    """Build an executor with exactly the named candidate caches wired in.

    Candidate ids follow :mod:`repro.core.candidates` (``"T:0-1p"``,
    ``"R:0-1g"``, …); list them via :func:`available_candidates`. This is
    the construction core behind :func:`repro.api.build_static_plan` and
    :meth:`repro.api.Session.static`; prefer those entry points.
    """
    executor = MJoinExecutor(
        workload.graph,
        orders=orders,
        indexed_attributes=workload.indexed_attributes,
    )
    candidates = {
        c.candidate_id: c
        for c in enumerate_candidates(
            workload.graph, executor.orders(), global_quota=global_quota
        )
    }
    wiring = CacheWiring(executor)
    chosen = []
    for candidate_id in candidate_ids:
        if candidate_id not in candidates:
            raise PlanError(
                f"unknown candidate {candidate_id!r}; available: "
                f"{sorted(candidates)}"
            )
        candidate = candidates[candidate_id]
        for other in chosen:
            if candidate.conflicts_with(other):
                raise PlanError(
                    f"candidates conflict: {candidate} / {other}"
                )
        chosen.append(candidate)
        wiring.attach(candidate, buckets=buckets)
    controller = None
    if resilience is not None:
        controller = ResilienceController(executor, resilience)
        executor.resilience = controller
        controller.bind_wiring(wiring)  # no re-optimizer on a static plan
    return StaticPlan(
        executor=executor,
        wiring=wiring,
        used=tuple(candidate_ids),
        resilience=controller,
    )


def static_plan(
    workload: Workload,
    orders: Optional[Dict[str, Sequence[str]]] = None,
    candidate_ids: Sequence[str] = (),
    global_quota: int = 8,
    buckets: int = 512,
    resilience: Optional[ResilienceConfig] = None,
) -> StaticPlan:
    """Deprecated keyword entry point; use :mod:`repro.api` instead.

    .. deprecated::
       Build static plans through ``Session.static(workload,
       EngineConfig(...))`` or ``repro.api.build_static_plan``.
    """
    import warnings

    warnings.warn(
        "static_plan(...) is deprecated; build plans via "
        "repro.api.Session.static(workload, EngineConfig(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_static_plan(
        workload,
        orders=orders,
        candidate_ids=candidate_ids,
        global_quota=global_quota,
        buckets=buckets,
        resilience=resilience,
    )


def available_candidates(
    workload: Workload,
    orders: Optional[Dict[str, Sequence[str]]] = None,
    global_quota: int = 8,
) -> List[str]:
    """The candidate-cache ids available under the given orderings."""
    executor = MJoinExecutor(workload.graph, orders=orders)
    return [
        c.candidate_id
        for c in enumerate_candidates(
            workload.graph, executor.orders(), global_quota=global_quota
        )
    ]


@dataclass
class SeriesPoint:
    """One throughput sample along a run."""

    x: int                       # domain-specific progress (e.g. ∆S tuples)
    updates: int                 # total updates processed so far
    window_throughput: float     # updates/sec over the last sample window
    cumulative_throughput: float
    used_caches: Tuple[str, ...] = ()
    memory_bytes: int = 0
    hit_rate: float = 0.0        # cache hits / probes over the window
    decisions: Tuple = ()        # DecisionRecords that fired in the window
    degraded: bool = False       # overload shedding active / shed in window
    shed_updates: int = 0        # updates shed during the window (all shards)
    shard_count: int = 1         # shards behind this sample (1 = serial)


def run_with_series(
    plan,
    updates: Iterable[Update],
    sample_every_updates: int = 2000,
    x_of: Optional[Callable[[Update], bool]] = None,
    used_caches: Optional[Callable[[], Sequence[str]]] = None,
    memory: Optional[Callable[[], int]] = None,
    batch_size: int = 1,
) -> List[SeriesPoint]:
    """Drive ``plan.process`` over ``updates``, sampling throughput.

    ``x_of`` marks which updates advance the x-axis (Figure 12 counts
    arriving ∆S insertions); by default every update counts.

    Each point also carries the window's cache hit rate and the
    adaptivity :class:`~repro.obs.decisions.DecisionRecord`s that fired
    inside it, so plots can annotate "cache X added here" markers.

    With ``batch_size > 1`` updates are driven through
    ``plan.process_batch`` in consecutive micro-batches (results are
    identical; sampling windows are checked at batch boundaries). A
    trailing partial window is always flushed as a final point so short
    runs and non-divisible ``sample_every_updates`` aren't truncated.
    """
    series: List[SeriesPoint] = []
    ctx = plan.ctx
    resilience = getattr(plan, "resilience", None)
    x = 0
    state = {
        "updates": ctx.metrics.updates_processed,
        "time": ctx.clock.now_seconds,
        "probes": ctx.metrics.cache_probes,
        "hits": ctx.metrics.cache_hits,
        "seq": ctx.obs.decisions.last_seq,
        "shed": resilience.shed_total if resilience else 0,
    }

    def emit_point() -> None:
        processed = ctx.metrics.updates_processed
        now = ctx.clock.now_seconds
        span = max(1e-12, now - state["time"])
        probes = ctx.metrics.cache_probes - state["probes"]
        hits = ctx.metrics.cache_hits - state["hits"]
        decisions = tuple(ctx.obs.decisions.since(state["seq"]))
        shed_now = resilience.shed_total if resilience else 0
        shed_in_window = shed_now - state["shed"]
        series.append(
            SeriesPoint(
                x=x,
                updates=processed,
                window_throughput=(processed - state["updates"]) / span,
                cumulative_throughput=ctx.metrics.throughput(now),
                used_caches=tuple(used_caches()) if used_caches else (),
                memory_bytes=memory() if memory else 0,
                hit_rate=hits / probes if probes else 0.0,
                decisions=decisions,
                degraded=bool(
                    resilience
                    and (resilience.degraded or shed_in_window)
                ),
                shed_updates=shed_in_window,
                shard_count=1,
            )
        )
        state["updates"] = processed
        state["time"] = now
        state["probes"] = ctx.metrics.cache_probes
        state["hits"] = ctx.metrics.cache_hits
        state["seq"] = ctx.obs.decisions.last_seq
        state["shed"] = shed_now

    if batch_size > 1:
        for batch in batched(updates, batch_size):
            plan.process_batch(batch)
            if x_of is None:
                x += len(batch)
            else:
                x += sum(1 for u in batch if x_of(u))
            if (
                ctx.metrics.updates_processed - state["updates"]
                >= sample_every_updates
            ):
                emit_point()
    else:
        for update in updates:
            plan.process(update)
            if x_of is None or x_of(update):
                x += 1
            if (
                ctx.metrics.updates_processed - state["updates"]
                >= sample_every_updates
            ):
                emit_point()
    # Flush the trailing partial window (if any updates landed in it).
    if ctx.metrics.updates_processed > state["updates"]:
        emit_point()
    return series
