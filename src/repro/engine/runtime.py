"""Run helpers: static cached plans and time-series measurement.

The adaptivity experiments (Figures 12 and 13) need two things beyond the
plan runners in :mod:`repro.planner.enumeration`: fixed plans with a
hand-picked cache set (the static comparison curves), and periodic
throughput sampling along a run (the time axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.candidates import enumerate_candidates
from repro.core.wiring import CacheWiring
from repro.errors import PlanError
from repro.faults.resilience import ResilienceConfig, ResilienceController
from repro.mjoin.executor import MJoinExecutor
from repro.streams.events import Sign, Update
from repro.streams.workloads import Workload


@dataclass
class StaticPlan:
    """A fixed MJoin-with-caches plan (no adaptivity at all)."""

    executor: MJoinExecutor
    wiring: CacheWiring
    used: Tuple[str, ...]
    resilience: Optional[ResilienceController] = None

    def process(self, update: Update):
        """Process one update through the fixed plan."""
        return self.executor.process(update)

    def run(self, updates: Iterable[Update]):
        """Process a whole update sequence."""
        return self.executor.run(updates)

    @property
    def ctx(self):
        """The execution context (clock, cost model, metrics)."""
        return self.executor.ctx


def static_plan(
    workload: Workload,
    orders: Optional[Dict[str, Sequence[str]]] = None,
    candidate_ids: Sequence[str] = (),
    global_quota: int = 8,
    buckets: int = 512,
    resilience: Optional[ResilienceConfig] = None,
) -> StaticPlan:
    """Build an executor with exactly the named candidate caches wired in.

    Candidate ids follow :mod:`repro.core.candidates` (``"T:0-1p"``,
    ``"R:0-1g"``, …); list them via :func:`available_candidates`.
    """
    executor = MJoinExecutor(
        workload.graph,
        orders=orders,
        indexed_attributes=workload.indexed_attributes,
    )
    candidates = {
        c.candidate_id: c
        for c in enumerate_candidates(
            workload.graph, executor.orders(), global_quota=global_quota
        )
    }
    wiring = CacheWiring(executor)
    chosen = []
    for candidate_id in candidate_ids:
        if candidate_id not in candidates:
            raise PlanError(
                f"unknown candidate {candidate_id!r}; available: "
                f"{sorted(candidates)}"
            )
        candidate = candidates[candidate_id]
        for other in chosen:
            if candidate.conflicts_with(other):
                raise PlanError(
                    f"candidates conflict: {candidate} / {other}"
                )
        chosen.append(candidate)
        wiring.attach(candidate, buckets=buckets)
    controller = None
    if resilience is not None:
        controller = ResilienceController(executor, resilience)
        executor.resilience = controller
        controller.bind_wiring(wiring)  # no re-optimizer on a static plan
    return StaticPlan(
        executor=executor,
        wiring=wiring,
        used=tuple(candidate_ids),
        resilience=controller,
    )


def available_candidates(
    workload: Workload,
    orders: Optional[Dict[str, Sequence[str]]] = None,
    global_quota: int = 8,
) -> List[str]:
    """The candidate-cache ids available under the given orderings."""
    executor = MJoinExecutor(workload.graph, orders=orders)
    return [
        c.candidate_id
        for c in enumerate_candidates(
            workload.graph, executor.orders(), global_quota=global_quota
        )
    ]


@dataclass
class SeriesPoint:
    """One throughput sample along a run."""

    x: int                       # domain-specific progress (e.g. ∆S tuples)
    updates: int                 # total updates processed so far
    window_throughput: float     # updates/sec over the last sample window
    cumulative_throughput: float
    used_caches: Tuple[str, ...] = ()
    memory_bytes: int = 0
    hit_rate: float = 0.0        # cache hits / probes over the window
    decisions: Tuple = ()        # DecisionRecords that fired in the window
    degraded: bool = False       # overload shedding active / shed in window
    shed_updates: int = 0        # updates shed during the window (all shards)
    shard_count: int = 1         # shards behind this sample (1 = serial)


def run_with_series(
    plan,
    updates: Iterable[Update],
    sample_every_updates: int = 2000,
    x_of: Optional[Callable[[Update], bool]] = None,
    used_caches: Optional[Callable[[], Sequence[str]]] = None,
    memory: Optional[Callable[[], int]] = None,
) -> List[SeriesPoint]:
    """Drive ``plan.process`` over ``updates``, sampling throughput.

    ``x_of`` marks which updates advance the x-axis (Figure 12 counts
    arriving ∆S insertions); by default every update counts.

    Each point also carries the window's cache hit rate and the
    adaptivity :class:`~repro.obs.decisions.DecisionRecord`s that fired
    inside it, so plots can annotate "cache X added here" markers.
    """
    series: List[SeriesPoint] = []
    ctx = plan.ctx
    resilience = getattr(plan, "resilience", None)
    x = 0
    window_start_updates = ctx.metrics.updates_processed
    window_start_time = ctx.clock.now_seconds
    window_start_probes = ctx.metrics.cache_probes
    window_start_hits = ctx.metrics.cache_hits
    window_start_seq = ctx.obs.decisions.last_seq
    window_start_shed = resilience.shed_total if resilience else 0
    for update in updates:
        plan.process(update)
        if x_of is None or x_of(update):
            x += 1
        processed = ctx.metrics.updates_processed
        if processed - window_start_updates >= sample_every_updates:
            now = ctx.clock.now_seconds
            span = max(1e-12, now - window_start_time)
            probes = ctx.metrics.cache_probes - window_start_probes
            hits = ctx.metrics.cache_hits - window_start_hits
            decisions = tuple(ctx.obs.decisions.since(window_start_seq))
            shed_now = resilience.shed_total if resilience else 0
            shed_in_window = shed_now - window_start_shed
            series.append(
                SeriesPoint(
                    x=x,
                    updates=processed,
                    window_throughput=(
                        (processed - window_start_updates) / span
                    ),
                    cumulative_throughput=ctx.metrics.throughput(now),
                    used_caches=tuple(used_caches()) if used_caches else (),
                    memory_bytes=memory() if memory else 0,
                    hit_rate=hits / probes if probes else 0.0,
                    decisions=decisions,
                    degraded=bool(
                        resilience
                        and (resilience.degraded or shed_in_window)
                    ),
                    shed_updates=shed_in_window,
                )
            )
            window_start_updates = processed
            window_start_time = now
            window_start_probes = ctx.metrics.cache_probes
            window_start_hits = ctx.metrics.cache_hits
            window_start_seq = ctx.obs.decisions.last_seq
            window_start_shed = shed_now
    return series
