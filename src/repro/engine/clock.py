"""Virtual cost clock and the engine's operation cost model.

The paper reports "the maximum load the system can handle, in terms of the
number of tuples processed per second" on the C++ STREAM prototype. A pure
Python reproduction measured by wall clock would be dominated by interpreter
overhead, so — as recorded in DESIGN.md — every primitive operation is
charged to a **virtual clock** instead. Unit costs are expressed in
microseconds and calibrated so absolute rates land in the paper's
10^4-tuples/sec range; relative plan costs, crossover points, and adaptivity
behavior are functions of operation *counts* and therefore transfer.

All overheads the paper includes in its numbers (profiling, Bloom-filter
hashing, re-optimization) are charged to the same clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs in microseconds of virtual time.

    The defaults are calibrated (see ``tests/test_clock.py``) so that a
    three-way indexed MJoin processes on the order of 50k updates per
    virtual second, matching the scale of the paper's Figures 6-13.
    """

    index_probe: float = 5.0       # one hash-index lookup
    per_match: float = 1.5         # retrieve + concatenate one matching row
    scan_tuple: float = 0.15       # examine one row during a nested-loop scan
    predicate_eval: float = 0.3    # verify one residual predicate on one row
    relation_update: float = 1.5   # apply one insert/delete to a window
    index_update: float = 0.5      # maintain one hash index for that update
    output_emit: float = 0.5       # emit one result delta

    cache_probe: float = 1.2       # hash the key + bucket lookup
    cache_hit_tuple: float = 0.5   # emit one composite from a cache hit
    cache_create: float = 2.5      # create one cache entry
    cache_store_tuple: float = 0.5 # store one composite reference in an entry
    cache_maintain_check: float = 0.4  # maintenance key hash + bucket check
    cache_maintain: float = 1.2    # applying one maintenance insert/delete
    witness_count_probe: float = 4.0  # one index count for X⋉Y witness counts

    # Micro-batch execution only (batch size > 1): reusing a memoized
    # join-probe result is one hash of the already-assembled constraint
    # tuple plus a bucket lookup — cheaper than re-probing the index and
    # re-verifying residual predicates.
    batch_memo_hit: float = 0.6

    bloom_hash: float = 0.15       # hash one profiled tuple into a Bloom filter
    profile_tuple: float = 0.4     # bookkeeping per profiled tuple per operator

    reoptimize_base: float = 200.0     # fixed cost of one re-optimization
    reoptimize_candidate: float = 5.0  # marginal cost per candidate examined

    # Durability (repro.recovery): WAL appends are charged per update at
    # ingress; the fsync cost is paid once per fsync batch (divide by the
    # configured ``fsync_every``). Checkpoints charge a fixed base plus a
    # per-row cost over every live window row captured in the snapshot.
    wal_append: float = 0.4        # serialize + buffer one update record
    wal_fsync: float = 25.0        # flush + fsync one WAL batch
    checkpoint_base: float = 150.0  # open/serialize/rename one snapshot
    checkpoint_row: float = 0.05    # capture one live window row


class VirtualClock:
    """Accumulates charged microseconds; ``now`` is virtual time."""

    __slots__ = ("_now_us",)

    def __init__(self) -> None:
        self._now_us = 0.0

    def charge(self, microseconds: float) -> None:
        """Advance virtual time by ``microseconds``."""
        self._now_us += microseconds

    @property
    def now_us(self) -> float:
        """Current time in microseconds."""
        return self._now_us

    @property
    def now_seconds(self) -> float:
        """Current time in seconds."""
        return self._now_us / 1e6

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock({self._now_us:.1f}us)"


class WallClock:
    """A clock that reads real elapsed time and ignores charges.

    Lets the same engine report genuine wall-clock throughput when the
    caller prefers it (``StreamJoinEngine(..., wall_clock=True)``).
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def charge(self, microseconds: float) -> None:
        """Deliberately a no-op: real time passes on its own.

        A wall clock's ``now_us`` advances with ``time.perf_counter``, so
        charging modeled costs would double-count work; the shared
        ``charge`` interface is kept only so operators can stay agnostic
        of which clock they run under.
        """
        return None

    @property
    def now_us(self) -> float:
        """Current time in microseconds."""
        return (time.perf_counter() - self._start) * 1e6

    @property
    def now_seconds(self) -> float:
        """Current time in seconds."""
        return time.perf_counter() - self._start


@dataclass
class Stopwatch:
    """Measures virtual-time spans: used by the profiler for ``τj``."""

    clock: VirtualClock
    started_at: float = field(default=0.0)

    def start(self) -> None:
        """Mark the current instant as the span's origin."""
        self.started_at = self.clock.now_us

    def elapsed_us(self) -> float:
        """Microseconds since :meth:`start`."""
        return self.clock.now_us - self.started_at
