"""Export experiment results for plotting and archival.

The benchmark harness prints paper-style tables; this module turns the
same data into machine-readable CSV/JSON so results can be plotted or
diffed across runs (the EXPERIMENTS.md workflow).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List, Sequence

from repro.bench.harness import ExperimentRow
from repro.engine.runtime import SeriesPoint


def rows_to_dicts(rows: Sequence[ExperimentRow]) -> List[Dict]:
    """Flatten experiment rows (x, rates, ratio, extras) to plain dicts."""
    flattened = []
    for row in rows:
        record = {
            "x": row.x,
            "caching_rate": row.caching_rate,
            "mjoin_rate": row.mjoin_rate,
            "ratio": row.ratio,
        }
        for key, value in row.extra.items():
            record[f"extra_{key}"] = value
        flattened.append(record)
    return flattened


def rows_to_csv(rows: Sequence[ExperimentRow]) -> str:
    """Render experiment rows as CSV text (header included)."""
    records = rows_to_dicts(rows)
    if not records:
        return ""
    fieldnames: List[str] = []
    for record in records:
        for key in record:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for record in records:
        writer.writerow(record)
    return buffer.getvalue()


def rows_to_json(rows: Sequence[ExperimentRow], indent: int = 2) -> str:
    """Render experiment rows as a JSON array."""
    return json.dumps(rows_to_dicts(rows), indent=indent, default=str)


def series_to_dicts(series: Sequence[SeriesPoint]) -> List[Dict]:
    """Flatten a throughput time series (Figures 12/13 style)."""
    return [
        {
            "x": point.x,
            "updates": point.updates,
            "window_throughput": point.window_throughput,
            "cumulative_throughput": point.cumulative_throughput,
            "used_caches": list(point.used_caches),
            "memory_bytes": point.memory_bytes,
            "hit_rate": point.hit_rate,
            "decisions": [
                f"{d.action}:{d.candidate_id}" for d in point.decisions
            ],
            "degraded": point.degraded,
            "shed_updates": point.shed_updates,
            "shard_count": point.shard_count,
        }
        for point in series
    ]


def series_to_csv(series: Sequence[SeriesPoint]) -> str:
    """Render a throughput time series as CSV text."""
    records = series_to_dicts(series)
    if not records:
        return ""
    fieldnames: List[str] = []
    for record in records:
        for key in record:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for record in records:
        record = dict(record)
        record["used_caches"] = ";".join(record["used_caches"])
        record["decisions"] = ";".join(record["decisions"])
        writer.writerow(record)
    return buffer.getvalue()


def write_text(path: str, text: str) -> None:
    """Write an export to disk (tiny helper so callers stay one-liners)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
